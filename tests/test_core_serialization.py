import numpy as np
import pytest

from repro.core import (
    load_classifier,
    load_screener,
    save_classifier,
    save_screener,
)
from repro.core.serialization import _FORMAT_VERSION


class TestScreenerRoundTrip:
    def test_exact_forward_equivalence(self, small_screener, small_task, tmp_path):
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        features = small_task.sample_features(8)
        assert np.array_equal(
            small_screener.approximate_logits(features),
            loaded.approximate_logits(features),
        )

    def test_loaded_projection_state_matches(self, small_screener, tmp_path):
        # load_screener rebuilds the projection via from_ternary; the
        # cached dense matrix and scale must match the original so the
        # INT4 grid (derived from stored weights) reproduces exactly.
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        assert loaded.projection.scale == small_screener.projection.scale
        assert np.array_equal(
            loaded.projection.matrix, small_screener.projection.matrix
        )

    def test_fields_preserved(self, small_screener, tmp_path):
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        assert loaded.quantization_bits == small_screener.quantization_bits
        assert loaded.projection_dim == small_screener.projection_dim
        assert np.array_equal(
            loaded.projection.ternary, small_screener.projection.ternary
        )

    def test_fp32_screener(self, small_task, tmp_path):
        from repro.core import ScreeningConfig, train_screener

        screener = train_screener(
            small_task.classifier, small_task.sample_features(128),
            config=ScreeningConfig(projection_dim=8, quantization_bits=None),
            solver="lstsq", rng=0,
        )
        path = tmp_path / "fp32.npz"
        save_screener(path, screener)
        assert load_screener(path).quantization_bits is None


class TestClassifierRoundTrip:
    def test_exact_equivalence(self, small_task, tmp_path):
        path = tmp_path / "classifier.npz"
        save_classifier(path, small_task.classifier)
        loaded = load_classifier(path)
        features = small_task.sample_features(4)
        assert np.array_equal(
            small_task.classifier.logits(features), loaded.logits(features)
        )
        assert loaded.normalization == small_task.classifier.normalization


class TestFormatChecks:
    def test_kind_mismatch(self, small_task, small_screener, tmp_path):
        path = tmp_path / "artifact.npz"
        save_classifier(path, small_task.classifier)
        with pytest.raises(ValueError, match="classifier"):
            load_screener(path)

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro-enmc artifact"):
            load_classifier(path)

    def test_future_version_rejected(self, small_task, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.int64(_FORMAT_VERSION + 1),
            kind=np.str_("classifier"),
            weight=small_task.classifier.weight,
            bias=small_task.classifier.bias,
            normalization=np.str_("softmax"),
        )
        with pytest.raises(ValueError, match="format version"):
            load_classifier(path)
