import numpy as np
import pytest

from repro.core import (
    QuantizedExactStore,
    load_classifier,
    load_quantized_store,
    load_screener,
    save_classifier,
    save_quantized_store,
    save_screener,
)
from repro.core.serialization import _FORMAT_VERSION, _LEGACY_COMPUTE_DTYPE


class TestScreenerRoundTrip:
    def test_exact_forward_equivalence(self, small_screener, small_task, tmp_path):
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        features = small_task.sample_features(8)
        assert np.array_equal(
            small_screener.approximate_logits(features),
            loaded.approximate_logits(features),
        )

    def test_loaded_projection_state_matches(self, small_screener, tmp_path):
        # load_screener rebuilds the projection via from_ternary; the
        # cached dense matrix and scale must match the original so the
        # INT4 grid (derived from stored weights) reproduces exactly.
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        assert loaded.projection.scale == small_screener.projection.scale
        assert np.array_equal(
            loaded.projection.matrix, small_screener.projection.matrix
        )

    def test_fields_preserved(self, small_screener, tmp_path):
        path = tmp_path / "screener.npz"
        save_screener(path, small_screener)
        loaded = load_screener(path)
        assert loaded.quantization_bits == small_screener.quantization_bits
        assert loaded.projection_dim == small_screener.projection_dim
        assert np.array_equal(
            loaded.projection.ternary, small_screener.projection.ternary
        )

    def test_fp32_screener(self, small_task, tmp_path):
        from repro.core import ScreeningConfig, train_screener

        screener = train_screener(
            small_task.classifier, small_task.sample_features(128),
            config=ScreeningConfig(projection_dim=8, quantization_bits=None),
            solver="lstsq", rng=0,
        )
        path = tmp_path / "fp32.npz"
        save_screener(path, screener)
        assert load_screener(path).quantization_bits is None

    def test_compute_dtype_round_trips(self, small_task, tmp_path):
        # Regression: save_screener dropped compute_dtype, so a float32
        # screener silently reloaded as float64 — and bit-identity with
        # the original was lost (the float32 pipeline rounds, float64
        # does not).
        from repro.core import ScreeningConfig, train_screener

        screener = train_screener(
            small_task.classifier, small_task.sample_features(128),
            config=ScreeningConfig(projection_dim=8, compute_dtype="float32"),
            solver="lstsq", rng=3,
        )
        path = tmp_path / "fp32-compute.npz"
        save_screener(path, screener)
        loaded = load_screener(path)
        assert loaded.compute_dtype == np.dtype(np.float32)
        features = small_task.sample_features(8)
        assert np.array_equal(
            screener.approximate_logits(features),
            loaded.approximate_logits(features),
        )

    def test_version1_artifact_defaults_to_float64(
        self, small_screener, tmp_path
    ):
        # A hand-crafted version-1 file (no compute_dtype key) must load
        # with the historical float64 behavior, not crash or guess.
        path = tmp_path / "v1.npz"
        np.savez(
            path,
            format_version=np.int64(1),
            kind=np.str_("screener"),
            weight=small_screener.weight,
            bias=small_screener.bias,
            projection_ternary=small_screener.projection.ternary,
            projection_density=np.float64(small_screener.projection.density),
            quantization_bits=np.int64(small_screener.quantization_bits),
        )
        loaded = load_screener(path)
        assert loaded.compute_dtype == np.dtype(_LEGACY_COMPUTE_DTYPE)


class TestClassifierRoundTrip:
    def test_exact_equivalence(self, small_task, tmp_path):
        path = tmp_path / "classifier.npz"
        save_classifier(path, small_task.classifier)
        loaded = load_classifier(path)
        features = small_task.sample_features(4)
        assert np.array_equal(
            small_task.classifier.logits(features), loaded.logits(features)
        )
        assert loaded.normalization == small_task.classifier.normalization


class TestQuantizedStoreRoundTrip:
    @pytest.fixture(scope="class")
    def store(self, small_task):
        return QuantizedExactStore.from_classifier(
            small_task.classifier, kind="int8", tile_rows=256
        )

    def test_resident_round_trip_bit_identical(
        self, store, small_task, tmp_path
    ):
        path = tmp_path / "store"
        save_quantized_store(path, store)
        loaded = load_quantized_store(path)
        assert loaded.kind == store.kind
        assert loaded.tile_rows == store.tile_rows
        assert loaded.normalization == store.normalization
        assert np.array_equal(loaded.codes, store.codes)
        assert np.array_equal(loaded.scales, store.scales)
        assert np.array_equal(loaded.bias, store.bias)
        features = small_task.sample_features(4)
        assert np.array_equal(loaded.logits(features), store.logits(features))

    def test_mmap_round_trip_bit_identical(self, store, small_task, tmp_path):
        path = tmp_path / "store-mmap.npz"
        save_quantized_store(path, store)
        mapped = load_quantized_store(path, mmap=True)
        features = small_task.sample_features(4)
        assert np.array_equal(mapped.logits(features), store.logits(features))
        cols = np.array([0, 255, 256, store.num_categories - 1])
        assert np.array_equal(
            mapped.logits_for(cols, features), store.logits_for(cols, features)
        )

    def test_float16_round_trip(self, small_task, tmp_path):
        store = QuantizedExactStore.from_classifier(
            small_task.classifier, kind="float16"
        )
        path = tmp_path / "fp16-store"
        save_quantized_store(path, store)
        loaded = load_quantized_store(path)
        assert loaded.kind == "float16"
        assert loaded.scales is None
        assert np.array_equal(loaded.codes, store.codes)

    def test_kind_mismatch_rejected(self, store, small_task, tmp_path):
        path = tmp_path / "not-a-store.npz"
        save_classifier(path, small_task.classifier)
        with pytest.raises(ValueError, match="quantized_classifier"):
            load_quantized_store(path)

    def test_corrupt_sidecar_rejected(self, store, tmp_path):
        path = tmp_path / "torn"
        save_quantized_store(path, store)
        np.save(tmp_path / "torn.codes.npy", np.zeros((3, 3), dtype=np.int8))
        with pytest.raises(ValueError, match="sidecar"):
            load_quantized_store(path)

    def test_missing_sidecar_raises(self, store, tmp_path):
        path = tmp_path / "orphan"
        save_quantized_store(path, store)
        (tmp_path / "orphan.codes.npy").unlink()
        with pytest.raises(FileNotFoundError):
            load_quantized_store(path)


class TestFormatChecks:
    def test_kind_mismatch(self, small_task, small_screener, tmp_path):
        path = tmp_path / "artifact.npz"
        save_classifier(path, small_task.classifier)
        with pytest.raises(ValueError, match="classifier"):
            load_screener(path)

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro-enmc artifact"):
            load_classifier(path)

    def test_future_version_rejected(self, small_task, tmp_path):
        path = tmp_path / "future.npz"
        np.savez(
            path,
            format_version=np.int64(_FORMAT_VERSION + 1),
            kind=np.str_("classifier"),
            weight=small_task.classifier.weight,
            bias=small_task.classifier.bias,
            normalization=np.str_("softmax"),
        )
        with pytest.raises(ValueError, match="format version"):
            load_classifier(path)
