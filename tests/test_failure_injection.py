"""Failure injection: malformed programs, overflowing tiles, corrupt
state — the DIMM model must fail loudly, never silently corrupt."""

import numpy as np
import pytest

from repro.enmc.buffers import BufferOverflowError
from repro.enmc.config import DEFAULT_CONFIG
from repro.enmc.controller import ENMCController
from repro.isa import Program, assemble


@pytest.fixture()
def controller():
    return ENMCController(DEFAULT_CONFIG)


class TestMalformedPrograms:
    def test_compute_on_empty_buffers(self, controller):
        program = Program(assemble(
            "MUL_ADD_INT4 feature_int4, weight_int4\nRETURN"
        ))
        with pytest.raises(RuntimeError, match="empty"):
            controller.execute(program)

    def test_filter_before_compute(self, controller):
        program = Program(assemble("FILTER psum_int4\nRETURN"))
        with pytest.raises(RuntimeError, match="empty"):
            controller.execute(program)

    def test_move_from_empty_buffer(self, controller):
        program = Program(assemble("MOVE output, psum_fp32\nRETURN"))
        with pytest.raises(RuntimeError, match="empty"):
            controller.execute(program)

    def test_load_unbound_address(self, controller):
        program = Program(assemble("LDR weight_int4, 0xDEAD\nRETURN"))
        with pytest.raises(KeyError, match="no tile bound"):
            controller.execute(program)

    def test_softmax_on_empty_psum(self, controller):
        program = Program(assemble("SOFTMAX\nRETURN"))
        with pytest.raises(RuntimeError, match="empty"):
            controller.execute(program)


class TestOverflowingTiles:
    def test_oversized_weight_tile(self, controller):
        # 256 B INT4 buffer holds 512 elements; bind 1024.
        controller.memory.bind(0x100, np.ones((64, 16)), 4)
        program = Program(assemble("LDR weight_int4, 0x100\nRETURN"))
        with pytest.raises(BufferOverflowError):
            controller.execute(program)

    def test_oversized_fp32_feature(self, controller):
        controller.memory.bind(0x100, np.ones(65), 32)
        program = Program(assemble("LDR feature_fp32, 0x100\nRETURN"))
        with pytest.raises(BufferOverflowError):
            controller.execute(program)


class TestShapeMismatches:
    def test_feature_weight_width_mismatch(self, controller):
        controller.memory.bind(0x100, np.ones(8), 4)
        controller.memory.bind(0x200, np.ones((16, 9)), 4)  # width 9 != 8
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "RETURN"
        ))
        with pytest.raises(RuntimeError, match="tile width"):
            controller.execute(program)

    def test_1d_weight_tile_rejected(self, controller):
        controller.memory.bind(0x100, np.ones(8), 4)
        controller.memory.bind(0x200, np.ones(8), 4)
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "RETURN"
        ))
        with pytest.raises(RuntimeError, match="2-D"):
            controller.execute(program)

    def test_elementwise_shape_mismatch(self, controller):
        controller.memory.bind(0x100, np.ones(8), 32)
        controller.memory.bind(0x200, np.ones(4), 32)
        program = Program(assemble(
            "LDR psum_fp32, 0x100\n"
            "LDR weight_fp32, 0x200\n"
            "ADD_FP32 psum_fp32, weight_fp32\n"
            "RETURN"
        ))
        with pytest.raises(RuntimeError, match="shape mismatch"):
            controller.execute(program)


class TestPartialFailureState:
    def test_trace_reflects_work_before_failure(self, controller):
        """A failing program leaves an inspectable partial trace via
        the exception — buffers retain pre-failure content."""
        controller.memory.bind(0x100, np.ones(8), 4)
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0xBAD\n"  # fails here
            "RETURN"
        ))
        with pytest.raises(KeyError):
            controller.execute(program)
        from repro.isa.opcodes import BufferId

        assert not controller.buffers[BufferId.FEATURE_INT4].empty
