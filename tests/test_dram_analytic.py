"""Cross-validation of the analytic DRAM model against the cycle model.

The analytic model is what the paper-scale experiments use; these tests
bound its error against the cycle-accurate model on workloads small
enough to simulate.
"""

import numpy as np
import pytest

from repro.dram import AnalyticDRAMModel, DDR4_2400, DRAMSystem


def cycle_stream(num_bytes, channels=1, ranks=8):
    system = DRAMSystem(DDR4_2400, channels=channels, ranks_per_channel=ranks)
    system.stream_read(0, num_bytes)
    return system.drain()


def cycle_gather(accesses, channels=1, ranks=8, seed=0):
    system = DRAMSystem(DDR4_2400, channels=channels, ranks_per_channel=ranks)
    rng = np.random.default_rng(seed)
    addrs = (rng.integers(0, 1 << 28, accesses) // 64 * 64).tolist()
    system.gather_read(addrs)
    return system.drain()


class TestStreamAgreement:
    @pytest.mark.parametrize("kib,band", [(64, 0.10), (256, 0.10), (1024, 0.15)])
    def test_stream_agreement(self, kib, band):
        # Long streams hit all four bank groups' row boundaries
        # simultaneously (same column counter), a stall the closed form
        # smooths over — hence the wider band at 1 MiB.  ENMC's per-rank
        # phase streams are well under that size.
        analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)
        estimate = analytic.stream(kib * 1024)
        measured = cycle_stream(kib * 1024)
        assert estimate.cycles == pytest.approx(measured.cycles, rel=band)

    def test_multi_channel(self):
        analytic = AnalyticDRAMModel(DDR4_2400, channels=4, ranks_per_channel=8)
        estimate = analytic.stream(512 * 1024)
        measured = cycle_stream(512 * 1024, channels=4)
        assert estimate.cycles == pytest.approx(measured.cycles, rel=0.15)

    def test_activation_count(self):
        analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)
        estimate = analytic.stream(256 * 1024)
        measured = cycle_stream(256 * 1024)
        # The cycle model re-activates rows closed by a mid-stream
        # refresh; the analytic count is the floor, and the excess is
        # bounded by the number of banks that can hold open rows.
        banks = DDR4_2400.banks_per_rank * 8
        assert estimate.activations <= measured.activations
        assert measured.activations <= estimate.activations + banks


class TestGatherAgreement:
    def test_within_thirty_percent(self):
        analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)
        estimate = analytic.gather(400, 64)
        measured = cycle_gather(400)
        # Gather involves scheduler serialization the closed form skips;
        # the analytic model may be optimistic but must stay in range.
        assert estimate.cycles == pytest.approx(measured.cycles, rel=0.35)

    def test_analytic_never_exceeds_cycle_model_grossly(self):
        analytic = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)
        estimate = analytic.gather(200, 64)
        measured = cycle_gather(200)
        assert estimate.cycles <= measured.cycles * 1.2


class TestAnalyticProperties:
    def test_stream_linear_in_bytes(self):
        model = AnalyticDRAMModel(DDR4_2400)
        small = model.stream(1 << 20)
        large = model.stream(4 << 20)
        assert large.cycles == pytest.approx(4 * small.cycles, rel=0.05)

    def test_stream_bandwidth_below_peak(self):
        model = AnalyticDRAMModel(DDR4_2400, channels=8)
        estimate = model.stream(64 << 20)
        assert estimate.bandwidth < model.peak_bandwidth()

    def test_gather_rate_limits(self):
        model = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=1)
        # Single rank: FAW limits 4 ACT per 24 cycles → 1 burst each.
        estimate = model.gather(4000, 64)
        faw_bound = 4000 * DDR4_2400.tfaw / 4
        assert estimate.cycles >= faw_bound * 0.95

    def test_gather_large_rows_bus_bound(self):
        model = AnalyticDRAMModel(DDR4_2400, channels=1, ranks_per_channel=8)
        estimate = model.gather(100, 8192)  # full-row gathers
        bus_bound = 100 * 128 * DDR4_2400.burst_cycles
        assert estimate.cycles >= bus_bound

    def test_estimates_addable(self):
        model = AnalyticDRAMModel(DDR4_2400)
        total = model.stream(1 << 20) + model.gather(10, 64)
        assert total.cycles > model.stream(1 << 20).cycles

    def test_add_rejects_mixed_clocks(self):
        from repro.dram.analytic import StreamEstimate

        a = StreamEstimate(1, 1, 1, 1e9)
        b = StreamEstimate(1, 1, 1, 2e9)
        with pytest.raises(ValueError):
            a + b

    def test_refresh_fraction(self):
        model = AnalyticDRAMModel(DDR4_2400)
        assert 0.0 < model.refresh_fraction < 0.1

    def test_single_read_latency(self):
        model = AnalyticDRAMModel(DDR4_2400)
        t = DDR4_2400
        assert model.single_read_latency() == t.trcd + t.cl + t.burst_cycles
