import numpy as np
import pytest

from repro.utils.memory import (
    Workspace,
    configure_serving_allocator,
    reset_default_allocator,
)


def test_configure_and_reset_return_bool():
    # On glibc both succeed; on other platforms both report False and
    # change nothing — either way the calls must be safe no-ops for
    # correctness.
    configured = configure_serving_allocator()
    assert isinstance(configured, bool)
    restored = reset_default_allocator()
    assert isinstance(restored, bool)
    assert configured == restored


def test_allocations_work_after_tuning():
    configure_serving_allocator()
    try:
        plane = np.empty((64, 100_000))
        plane.fill(1.0)
        assert plane[0, 0] == 1.0
    finally:
        reset_default_allocator()


def test_rejects_non_positive_threshold():
    with pytest.raises(ValueError, match="positive"):
        configure_serving_allocator(0)


def test_rejects_threshold_exceeding_c_int():
    with pytest.raises(ValueError, match="C int"):
        configure_serving_allocator(2**31)


class TestWorkspace:
    def test_buffer_shape_and_dtype(self):
        workspace = Workspace()
        view = workspace.buffer("a", (3, 4), np.float32)
        assert view.shape == (3, 4)
        assert view.dtype == np.float32
        assert workspace.allocations == 1
        assert workspace.requests == 1

    def test_same_key_reuses_slab(self):
        workspace = Workspace()
        first = workspace.buffer("a", (8,))
        second = workspace.buffer("a", (8,))
        assert workspace.allocations == 1
        assert workspace.requests == 2
        assert np.shares_memory(first, second)

    def test_smaller_request_reuses_slab(self):
        workspace = Workspace()
        workspace.buffer("a", (100,))
        small = workspace.buffer("a", (10,))
        assert small.shape == (10,)
        assert workspace.allocations == 1

    def test_larger_request_reallocates(self):
        workspace = Workspace()
        workspace.buffer("a", (10,))
        workspace.buffer("a", (100,))
        assert workspace.allocations == 2

    def test_distinct_keys_get_distinct_slabs(self):
        workspace = Workspace()
        a = workspace.buffer("a", (4,))
        b = workspace.buffer("b", (4,))
        assert not np.shares_memory(a, b)
        assert workspace.allocations == 2

    def test_same_key_different_dtype_gets_own_slab(self):
        workspace = Workspace()
        workspace.buffer("a", (4,), np.float64)
        workspace.buffer("a", (4,), np.intp)
        assert workspace.allocations == 2

    def test_buffer_contents_are_uninitialized_scratch(self):
        # buffer() makes no content promise — only shape/dtype/identity.
        workspace = Workspace()
        view = workspace.buffer("a", (4,))
        view[:] = 7.0
        again = workspace.buffer("a", (4,))
        assert np.shares_memory(view, again)

    def test_growable_preserves_contents(self):
        workspace = Workspace()
        buf = workspace.growable("g", 4)
        buf[:4] = [1.0, 2.0, 3.0, 4.0]
        grown = workspace.growable("g", 8)
        assert grown.size >= 8
        assert np.array_equal(grown[:4], [1.0, 2.0, 3.0, 4.0])

    def test_growable_doubles_to_amortize(self):
        workspace = Workspace()
        workspace.growable("g", 100)
        workspace.growable("g", 101)  # grows to >= 200
        assert workspace.allocations == 2
        workspace.growable("g", 200)  # already covered
        assert workspace.allocations == 2

    def test_zero_size_buffer(self):
        workspace = Workspace()
        view = workspace.buffer("a", (0,))
        assert view.shape == (0,)

    def test_nbytes_totals_slabs(self):
        workspace = Workspace()
        workspace.buffer("a", (10,), np.float64)
        workspace.buffer("b", (10,), np.float32)
        assert workspace.nbytes == 10 * 8 + 10 * 4
