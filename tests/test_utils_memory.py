import numpy as np
import pytest

from repro.utils.memory import configure_serving_allocator, reset_default_allocator


def test_configure_and_reset_return_bool():
    # On glibc both succeed; on other platforms both report False and
    # change nothing — either way the calls must be safe no-ops for
    # correctness.
    configured = configure_serving_allocator()
    assert isinstance(configured, bool)
    restored = reset_default_allocator()
    assert isinstance(restored, bool)
    assert configured == restored


def test_allocations_work_after_tuning():
    configure_serving_allocator()
    try:
        plane = np.empty((64, 100_000))
        plane.fill(1.0)
        assert plane[0, 0] == 1.0
    finally:
        reset_default_allocator()


def test_rejects_non_positive_threshold():
    with pytest.raises(ValueError, match="positive"):
        configure_serving_allocator(0)


def test_rejects_threshold_exceeding_c_int():
    with pytest.raises(ValueError, match="C int"):
        configure_serving_allocator(2**31)
