"""Differential suite for the block-quantized exact-weight store.

Contracts under test:

* **selection is untouched** — screening and candidate selection never
  read the exact weights, so a quantized pipeline picks bit-identical
  candidate sets to its FP64 twin, across selectors and store kinds;
* **quality is bounded** — the exact-value perturbation from INT8/FP16
  storage stays within the per-tile half-step bound, and end-task P@1 /
  perplexity deltas vs. the FP64 exact phase stay small;
* **mmap == resident** — a store loaded with ``mmap=True`` serves the
  same bytes as the resident load, bit for bit, across shard counts and
  selectors;
* **zero-copy export** — ``export_arrays``/``from_arrays`` (the
  shared-memory wire format) rebuilds a bit-identical quantized
  pipeline, and the parallel engine serves from the quantized segments
  through kill/respawn.
"""

import numpy as np
import pytest

from repro.core import (
    ApproximateScreeningClassifier,
    QuantizedExactStore,
    ScreeningConfig,
    load_quantized_store,
    save_quantized_store,
    train_screener,
)
from repro.core.candidates import CandidateSelector
from repro.core.weightstore import STORE_KINDS
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.metrics import perplexity_from_proba, precision_at_k

NUM_CATEGORIES = 600
HIDDEN_DIM = 32
PROJECTION_DIM = 8
NUM_CANDIDATES = 12
TILE_ROWS = 128  # several tiles at this scale; production uses 8192

SELECTORS = ("top_m", "threshold")
SHARD_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=21)


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(16, rng=22)


@pytest.fixture(scope="module")
def screener(task):
    return train_screener(
        task.classifier,
        task.sample_features(256, rng=23),
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        rng=24,
    )


def build_pipeline(task, screener, selector_mode, calibration):
    model = ApproximateScreeningClassifier(
        task.classifier, screener, num_candidates=NUM_CANDIDATES
    )
    if selector_mode == "threshold":
        selector = CandidateSelector(
            mode="threshold", num_candidates=NUM_CANDIDATES
        )
        selector.calibrate(screener.approximate_logits(calibration))
        model.selector = selector
    return model


@pytest.fixture(scope="module")
def calibration(task):
    return task.sample_features(128, rng=25)


def quantized_twin(task, screener, selector_mode, calibration, kind):
    model = build_pipeline(task, screener, selector_mode, calibration)
    return model.quantize_exact_weights(kind, tile_rows=TILE_ROWS)


# ----------------------------------------------------------------------
# the store itself
# ----------------------------------------------------------------------
class TestStoreSurface:
    def test_from_classifier_int8_shapes(self, task):
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        assert store.num_categories == NUM_CATEGORIES
        assert store.hidden_dim == HIDDEN_DIM
        assert store.codes.dtype == np.int8
        assert store.scales.shape == (-(-NUM_CATEGORIES // TILE_ROWS),)

    def test_resident_bytes_reduction(self, task):
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        fp64_bytes = task.classifier.weight.nbytes + task.classifier.bias.nbytes
        assert fp64_bytes / store.nbytes > 3.0

    def test_error_bounded_by_tile_half_step(self, task):
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        recon = store._tiles.dequantize()
        for tile, (start, stop) in enumerate(store.tile_bounds()):
            err = np.max(
                np.abs(recon[start:stop] - task.classifier.weight[start:stop])
            )
            assert err <= store.scales[tile] / 2 * (1 + 1e-9)

    def test_logits_match_dequantized_reference(self, task, features):
        # Streamed per-tile logits == one dense matmul over the full
        # dequantized matrix (same values through a different walk).
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        reference = features @ store._tiles.dequantize().T + store.bias
        assert np.allclose(store.logits(features), reference, atol=1e-10)

    def test_gather_paths_consistent(self, task, features):
        # logits_for and candidate_scores agree with the full streamed
        # logits on their selected entries.
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        full = store.logits(features)
        cols = np.array([0, 5, TILE_ROWS, NUM_CATEGORIES - 1])
        gathered = store.logits_for(cols, features)
        assert np.allclose(gathered, full[:, cols], atol=1e-10)
        rows = np.arange(4)
        flat = store.candidate_scores(rows, cols, features)
        assert np.allclose(flat, full[rows, cols], atol=1e-10)

    def test_float16_kind(self, task, features):
        store = QuantizedExactStore.from_classifier(task.classifier, kind="float16")
        assert store.codes.dtype == np.float16
        assert store.scales is None
        delta = np.max(np.abs(store.logits(features) - task.classifier.logits(features)))
        assert delta < 0.05

    def test_bad_kind_rejected(self, task):
        with pytest.raises(ValueError, match="kind"):
            QuantizedExactStore.from_classifier(task.classifier, kind="int4")

    def test_scale_shape_mismatch_rejected(self, task):
        store = QuantizedExactStore.from_classifier(
            task.classifier, kind="int8", tile_rows=TILE_ROWS
        )
        with pytest.raises(ValueError, match="tile scales"):
            QuantizedExactStore(
                store.codes, store.scales[:-1], store.bias, tile_rows=TILE_ROWS
            )


# ----------------------------------------------------------------------
# pipeline differential: quantized vs FP64 exact phase
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", STORE_KINDS)
@pytest.mark.parametrize("selector_mode", SELECTORS)
class TestQuantizedPipelineDifferential:
    def test_candidates_identical_values_bounded(
        self, task, screener, features, calibration, selector_mode, kind
    ):
        reference = build_pipeline(task, screener, selector_mode, calibration)
        quantized = quantized_twin(task, screener, selector_mode, calibration, kind)
        ref = reference.forward_streaming(features)
        out = quantized.forward_streaming(features)
        # Screening/selection never touch the exact weights.
        assert np.array_equal(ref.candidates.flat()[1], out.candidates.flat()[1])
        assert np.array_equal(ref.approximate_values, out.approximate_values)
        # Exact values shift by at most the worst-tile half-step times
        # the feature l1 mass (|Δz| = |Δw · h| ≤ ||Δw||∞ ||h||1).
        store = quantized.classifier
        half_step = (
            float(store.scales.max()) / 2
            if kind == "int8"
            else float(np.max(np.abs(task.classifier.weight))) * 2 ** -11
        )
        bound = half_step * np.abs(features).sum(axis=1).max() * (1 + 1e-9)
        assert np.max(np.abs(ref.exact_values - out.exact_values)) <= bound

    def test_streaming_matches_dense_bitwise(
        self, task, screener, features, calibration, selector_mode, kind
    ):
        quantized = quantized_twin(task, screener, selector_mode, calibration, kind)
        dense = quantized.forward(features)
        streamed = quantized.forward_streaming(features)
        rows, cols = dense.candidates.flat()
        assert np.array_equal(streamed.candidates.flat()[1], cols)
        assert np.array_equal(streamed.exact_values, dense.logits[rows, cols])

    def test_p_at_1_delta_bounded(
        self, task, screener, calibration, selector_mode, kind
    ):
        batch = task.sample_features(64, rng=26)
        labels = task.classifier.predict(batch)
        reference = build_pipeline(task, screener, selector_mode, calibration)
        quantized = quantized_twin(task, screener, selector_mode, calibration, kind)
        p_ref = precision_at_k(
            reference.forward(batch).logits, labels[:, None], k=1
        )
        p_q = precision_at_k(
            quantized.forward(batch).logits, labels[:, None], k=1
        )
        assert abs(p_ref - p_q) <= 0.05

    def test_perplexity_delta_bounded(
        self, task, screener, calibration, selector_mode, kind
    ):
        batch = task.sample_features(64, rng=27)
        labels = task.classifier.predict(batch)
        reference = build_pipeline(task, screener, selector_mode, calibration)
        quantized = quantized_twin(task, screener, selector_mode, calibration, kind)
        ppl_ref = perplexity_from_proba(reference.predict_proba(batch), labels)
        ppl_q = perplexity_from_proba(quantized.predict_proba(batch), labels)
        assert abs(ppl_q - ppl_ref) / ppl_ref <= 0.05

    def test_export_rebuild_bit_identical(
        self, task, screener, features, calibration, selector_mode, kind
    ):
        quantized = quantized_twin(task, screener, selector_mode, calibration, kind)
        arrays, meta = quantized.export_arrays()
        assert meta["exact_store"] == kind
        assert "weight" not in arrays
        rebuilt = ApproximateScreeningClassifier.from_arrays(arrays, meta)
        assert isinstance(rebuilt.classifier, QuantizedExactStore)
        ref = quantized.forward_streaming(features)
        out = rebuilt.forward_streaming(features)
        assert np.array_equal(ref.candidates.flat()[1], out.candidates.flat()[1])
        assert np.array_equal(ref.exact_values, out.exact_values)


class TestWorkspaceDiscipline:
    def test_streaming_allocation_flat_after_warmup(
        self, task, screener, features, calibration
    ):
        quantized = quantized_twin(task, screener, "top_m", calibration, "int8")
        quantized.forward_streaming(features)
        quantized.forward_streaming(features)  # growable slabs settle
        allocations = quantized.workspace.allocations
        for _ in range(5):
            quantized.forward_streaming(features)
        assert quantized.workspace.allocations == allocations

    def test_dense_exact_phase_uses_workspace(
        self, task, screener, features, calibration
    ):
        quantized = quantized_twin(task, screener, "top_m", calibration, "int8")
        quantized.forward(features)
        assert quantized.workspace.requests > 0

    def test_requantization_rejected(self, task, screener, calibration):
        quantized = quantized_twin(task, screener, "top_m", calibration, "int8")
        with pytest.raises(ValueError, match="already quantized"):
            quantized.quantize_exact_weights("float16")
        # Same kind is an idempotent no-op.
        assert quantized.quantize_exact_weights("int8") is quantized


# ----------------------------------------------------------------------
# mmap vs resident bit-identity, across shard counts and selectors
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
@pytest.mark.parametrize("selector_mode", SELECTORS)
class TestMmapBitIdentity:
    def test_mmap_equals_resident(
        self, task, calibration, tmp_path, num_shards, selector_mode
    ):
        sharded = ShardedClassifier(
            task.classifier,
            num_shards=num_shards,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        sharded.train(task.sample_features(128, rng=28), rng=29)
        sharded.quantize_exact_weights("int8")
        for shard in sharded.shards:
            if selector_mode == "threshold":
                selector = CandidateSelector(
                    mode="threshold", num_candidates=NUM_CANDIDATES
                )
                selector.calibrate(
                    shard.screener.approximate_logits(calibration)
                )
                shard.selector = selector
        batch = task.sample_features(16, rng=30)
        resident = sharded.forward_streaming(batch)

        # Round-trip every shard's store through disk, once resident
        # and once memory-mapped; both must serve identical bits.
        for mmap in (False, True):
            for shard_id, shard in enumerate(sharded.shards):
                path = tmp_path / f"shard{shard_id}-{selector_mode}"
                save_quantized_store(path, shard.classifier)
                loaded = load_quantized_store(path, mmap=mmap)
                assert loaded.kind == "int8"
                if mmap:
                    # The codes must actually be a mapping of the
                    # sidecar, not an in-memory copy.
                    base = loaded.codes
                    while base.base is not None:
                        if isinstance(base, np.memmap):
                            break
                        base = base.base
                    assert isinstance(base, np.memmap)
                shard.classifier = loaded
            reloaded = sharded.forward_streaming(batch)
            assert np.array_equal(
                resident.candidates.flat()[1], reloaded.candidates.flat()[1]
            )
            assert np.array_equal(resident.exact_values, reloaded.exact_values)
            assert np.array_equal(
                resident.approximate_values, reloaded.approximate_values
            )


# ----------------------------------------------------------------------
# quantized shared segments through the parallel engine
# ----------------------------------------------------------------------
@pytest.mark.timeout(300)
class TestQuantizedParallelServing:
    def test_parallel_serves_quantized_segments_through_respawn(self, task):
        sharded = ShardedClassifier(
            task.classifier,
            num_shards=2,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        sharded.train(task.sample_features(128, rng=31), rng=32)
        sharded.quantize_exact_weights("int8")
        batch = task.sample_features(12, rng=33)
        sequential = sharded.forward_streaming(batch)

        fp64_bytes = task.classifier.weight.nbytes + task.classifier.bias.nbytes
        with sharded.parallel(
            max_restarts=2, restart_backoff=0.01, restart_backoff_cap=0.05
        ) as engine:
            # The shared segments carry codes, not FP64 weights.
            exact_bytes = sum(
                pack.arrays["weight_codes"].nbytes
                + pack.arrays["weight_scales"].nbytes
                + pack.arrays["bias"].nbytes
                for pack in engine._param_packs
            )
            assert fp64_bytes / exact_bytes > 3.0

            parallel = engine.forward_streaming(batch)
            assert np.array_equal(
                sequential.exact_values, parallel.exact_values
            )
            # Kill a worker; the respawn re-attaches the same quantized
            # bytes and keeps serving bit-identically.
            engine.workers[0].process.kill()
            engine.workers[0].process.join()
            after = engine.forward_streaming(batch)
            assert engine.restarts[0] >= 1
            assert np.array_equal(sequential.exact_values, after.exact_values)
            assert np.array_equal(
                sequential.candidates.flat()[1], after.candidates.flat()[1]
            )
