import numpy as np
import pytest

from repro.compiler import compile_screened_classification, plan_screening_tiles
from repro.compiler.tiling import TilePlan, tile_addresses
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.isa.opcodes import Opcode


class TestTilePlan:
    def test_rows_per_tile_from_buffers(self):
        # 256 B at INT4 = 512 elements; k=16 → 32 rows, capped by PSUM
        # (256 B / 4 B = 64 rows).
        plan = plan_screening_tiles(1000, 16, DEFAULT_CONFIG)
        assert plan.rows_per_tile == 32

    def test_psum_caps_rows(self):
        config = ENMCConfig(psum_buffer_bytes=64)  # only 16 accumulators
        plan = plan_screening_tiles(1000, 4, config)
        assert plan.rows_per_tile == 16

    def test_num_tiles_ceiling(self):
        plan = TilePlan(num_categories=100, projection_dim=16, rows_per_tile=32)
        assert plan.num_tiles == 4

    def test_tile_rows_ranges(self):
        plan = TilePlan(num_categories=70, projection_dim=16, rows_per_tile=32)
        ranges = list(plan)
        assert ranges[0] == range(0, 32)
        assert ranges[-1] == range(64, 70)

    def test_tile_index_out_of_range(self):
        plan = TilePlan(num_categories=70, projection_dim=16, rows_per_tile=32)
        with pytest.raises(IndexError):
            plan.tile_rows(5)

    def test_projection_dim_exceeding_buffer_rejected(self):
        with pytest.raises(ValueError, match="feature buffer"):
            plan_screening_tiles(100, 4096, DEFAULT_CONFIG)

    def test_tile_addresses_aligned(self):
        plan = TilePlan(num_categories=100, projection_dim=16, rows_per_tile=32)
        addrs = tile_addresses(0x1000, plan, bytes_per_tile_row=8)
        assert len(addrs) == plan.num_tiles
        assert all(a % 64 == 0 for a in addrs)
        assert addrs == sorted(set(addrs))


class TestLowering:
    @pytest.fixture(scope="class")
    def kernel(self, small_task=None):
        from repro.core import ScreeningConfig, train_screener
        from repro.data import make_task

        task = make_task(num_categories=300, hidden_dim=32, rng=2)
        screener = train_screener(
            task.classifier, task.sample_features(128),
            config=ScreeningConfig(projection_dim=8), solver="lstsq", rng=1,
        )
        feature = task.sample_features(1)[0]
        return compile_screened_classification(
            task.classifier, screener, feature, threshold=0.0
        ), task, screener

    def test_program_validates(self, kernel):
        compiled, _, _ = kernel
        compiled.program.validate()

    def test_tile_structure(self, kernel):
        compiled, _, _ = kernel
        tiles = compiled.plan.num_tiles
        # Per tile: LDR + MUL_ADD + MOVE + RETURN + FILTER.
        assert compiled.program.count(Opcode.MUL_ADD_INT4) == tiles
        assert compiled.program.count(Opcode.FILTER) == tiles
        assert compiled.program.count(Opcode.RETURN) == tiles + 1

    def test_memory_image_binds_all_tiles(self, kernel):
        compiled, task, _ = kernel
        loads = compiled.program.dram_loads
        for load in loads:
            array, bits = compiled.memory.fetch(load.address)
            assert array.size > 0

    def test_feature_dim_checked(self, kernel):
        _, task, screener = kernel
        with pytest.raises(ValueError, match="feature dim"):
            compile_screened_classification(
                task.classifier, screener, np.zeros(16), threshold=0.0
            )

    def test_registers_initialized(self, kernel):
        compiled, task, screener = kernel
        from repro.isa.instruction import Init
        from repro.isa.opcodes import RegisterId

        inits = {
            i.register: i.value
            for i in compiled.program
            if isinstance(i, Init)
        }
        assert inits[RegisterId.VOCAB_SIZE] == 300
        assert inits[RegisterId.HIDDEN_DIM] == 33  # d+1, bias-augmented
        assert RegisterId.THRESHOLD in inits
