import pytest

from repro.utils.tables import render_table


def test_basic_alignment():
    out = render_table(["a", "bb"], [(1, 2), (33, 4)])
    lines = out.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    assert lines[0].startswith("a ")
    # all rows same width
    assert len({len(line) for line in lines}) <= 2


def test_title_prepended():
    out = render_table(["x"], [(1,)], title="My table")
    assert out.splitlines()[0] == "My table"


def test_float_formatting_precision():
    out = render_table(["v"], [(1.23456,)], precision=2)
    assert "1.23" in out
    assert "1.235" not in out


def test_scientific_for_extremes():
    out = render_table(["v"], [(1.5e-7,), (2.5e9,)])
    assert "e-07" in out
    assert "e+09" in out


def test_zero_renders_plainly():
    out = render_table(["v"], [(0.0,)])
    assert "0" in out.splitlines()[-1]


def test_bool_not_treated_as_float():
    out = render_table(["v"], [(True,)])
    assert "True" in out


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [(1,)])


def test_empty_rows_ok():
    out = render_table(["a"], [])
    assert "a" in out
