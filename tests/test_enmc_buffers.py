import numpy as np
import pytest

from repro.enmc.buffers import Buffer, BufferOverflowError, BufferSet
from repro.isa.opcodes import BufferId


class TestBuffer:
    def test_capacity_elements_int4(self):
        buffer = Buffer(BufferId.FEATURE_INT4, 256)
        assert buffer.capacity_elements == 512  # 256 B at 4 bits

    def test_capacity_elements_fp32(self):
        buffer = Buffer(BufferId.FEATURE_FP32, 256)
        assert buffer.capacity_elements == 64

    def test_write_and_read(self):
        buffer = Buffer(BufferId.PSUM_FP32, 256)
        data = np.arange(8.0)
        buffer.write(data)
        assert np.array_equal(buffer.data, data)

    def test_write_copies(self):
        buffer = Buffer(BufferId.PSUM_FP32, 256)
        data = np.arange(4.0)
        buffer.write(data)
        data[0] = 99
        assert buffer.data[0] == 0.0

    def test_overflow_rejected(self):
        buffer = Buffer(BufferId.FEATURE_FP32, 256)
        with pytest.raises(BufferOverflowError):
            buffer.write(np.zeros(65))

    def test_int4_fits_more(self):
        buffer = Buffer(BufferId.FEATURE_INT4, 256)
        buffer.write(np.zeros(512))  # exactly full
        assert buffer.occupancy_bytes == 256

    def test_empty_read_raises(self):
        buffer = Buffer(BufferId.OUTPUT, 256)
        with pytest.raises(RuntimeError, match="empty"):
            buffer.data

    def test_clear(self):
        buffer = Buffer(BufferId.OUTPUT, 256)
        buffer.write(np.zeros(4))
        buffer.clear()
        assert buffer.empty
        assert buffer.occupancy_bytes == 0


class TestBufferSet:
    def test_all_ids_present(self):
        buffers = BufferSet(256)
        for buffer_id in BufferId:
            assert buffers[buffer_id].buffer_id is buffer_id

    def test_clear_all(self):
        buffers = BufferSet(256)
        buffers[BufferId.OUTPUT].write(np.zeros(4))
        buffers.clear_all()
        assert buffers[BufferId.OUTPUT].empty

    def test_total_occupancy(self):
        buffers = BufferSet(256)
        buffers[BufferId.PSUM_FP32].write(np.zeros(8))
        assert buffers.total_occupancy_bytes == 32
