import numpy as np
import pytest

from repro.core import ApproximateScreeningClassifier
from repro.core.metrics import (
    ClassificationCost,
    approximation_error,
    candidate_recall,
    cost_of_full_classification,
    cost_of_screened_classification,
    cost_of_screened_output,
    top1_agreement,
)


class TestClassificationCost:
    def test_totals(self):
        cost = ClassificationCost(
            fp_flops=10, int_flops=5, fp_bytes=100, int_bytes=50
        )
        assert cost.flops == 15
        assert cost.bytes == 150

    def test_operational_intensity(self):
        cost = ClassificationCost(100, 0, 50, 0)
        assert cost.operational_intensity == 2.0

    def test_zero_bytes_infinite_intensity(self):
        cost = ClassificationCost(100, 0, 0, 0)
        assert cost.operational_intensity == float("inf")

    def test_add(self):
        a = ClassificationCost(1, 2, 3, 4)
        b = ClassificationCost(10, 20, 30, 40)
        total = a + b
        assert total.fp_flops == 11
        assert total.int_bytes == 44

    def test_scaled(self):
        assert ClassificationCost(1, 1, 1, 1).scaled(25).fp_flops == 25


class TestFullCost:
    def test_flops_formula(self):
        cost = cost_of_full_classification(1000, 128, batch_size=2)
        assert cost.fp_flops == 2 * 1000 * 128 * 2
        assert cost.fp_bytes == 4 * 1000 * 128  # streamed once per batch

    def test_no_integer_component(self):
        cost = cost_of_full_classification(10, 10)
        assert cost.int_flops == 0
        assert cost.int_bytes == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            cost_of_full_classification(0, 128)


class TestScreenedCost:
    def test_reduces_traffic(self):
        full = cost_of_full_classification(100_000, 512)
        screened = cost_of_screened_classification(
            100_000, 512, 128, candidates_per_row=100
        )
        assert screened.bytes < full.bytes / 4

    def test_gather_capped_at_vocab(self):
        cost = cost_of_screened_classification(
            1000, 64, 16, candidates_per_row=1000, batch_size=100
        )
        assert cost.fp_bytes <= 4.0 * 1000 * 64

    def test_unique_fraction_reduces_fp_bytes(self):
        dense = cost_of_screened_classification(
            10_000, 64, 16, 100, batch_size=8, unique_candidate_fraction=1.0
        )
        shared = cost_of_screened_classification(
            10_000, 64, 16, 100, batch_size=8, unique_candidate_fraction=0.5
        )
        assert shared.fp_bytes == dense.fp_bytes / 2

    def test_zero_candidates_allowed(self):
        cost = cost_of_screened_classification(1000, 64, 16, 0)
        assert cost.fp_flops == 0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            cost_of_screened_classification(
                1000, 64, 16, 10, unique_candidate_fraction=2.0
            )

    def test_quantization_bits_scale_traffic(self):
        int4 = cost_of_screened_classification(1000, 64, 16, 0, quantization_bits=4)
        int8 = cost_of_screened_classification(1000, 64, 16, 0, quantization_bits=8)
        # Only the screener-weight term doubles; projection bytes fixed.
        weight4 = 1000 * 16 * 4 / 8
        weight8 = 1000 * 16 * 8 / 8
        assert int8.int_bytes - int4.int_bytes == pytest.approx(weight8 - weight4)


class TestMeasuredCost:
    def test_uses_actual_candidates(self, small_task, small_screener):
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, num_candidates=32
        )
        out = model(small_task.sample_features(4))
        cost = cost_of_screened_output(small_task.classifier, small_screener, out)
        assert cost.fp_flops == pytest.approx(2.0 * 4 * 32 * 64)
        # fp traffic reflects the row union, not batch × m.
        union = out.candidates.union().size
        assert cost.fp_bytes == pytest.approx(4.0 * union * 64, rel=0.01)


class TestQualityMetrics:
    def test_recall_perfect(self):
        from repro.core.candidates import CandidateSet
        from repro.core.pipeline import ScreenedOutput

        exact = np.array([[0.0, 5.0, 1.0]])
        out = ScreenedOutput(
            logits=exact.copy(),
            approximate_logits=exact.copy(),
            candidates=CandidateSet(indices=[np.array([1])]),
        )
        assert candidate_recall(exact, out, k=1) == 1.0

    def test_recall_miss(self):
        from repro.core.candidates import CandidateSet
        from repro.core.pipeline import ScreenedOutput

        exact = np.array([[0.0, 5.0, 1.0]])
        out = ScreenedOutput(
            logits=exact.copy(),
            approximate_logits=exact.copy(),
            candidates=CandidateSet(indices=[np.array([0])]),
        )
        assert candidate_recall(exact, out, k=1) == 0.0

    def test_recall_shape_mismatch_rejected(self, small_task, small_screener):
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener
        )
        out = model(small_task.sample_features(2))
        with pytest.raises(ValueError):
            candidate_recall(np.zeros((3, 2000)), out, k=1)

    def test_approximation_error_zero_for_identical(self):
        data = np.random.default_rng(0).standard_normal((4, 10))
        assert approximation_error(data, data) == 0.0

    def test_approximation_error_relative(self):
        exact = np.ones((2, 4))
        approx = np.ones((2, 4)) * 1.1
        assert approximation_error(exact, approx) == pytest.approx(0.1)

    def test_top1_agreement(self, small_task, small_screener):
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, num_candidates=48
        )
        features = small_task.sample_features(16)
        out = model(features)
        exact = small_task.classifier.logits(features)
        assert top1_agreement(exact, out) >= 0.9
