import math

import pytest

from repro.data.registry import get_workload
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator, PhaseBreakdown


@pytest.fixture(scope="module")
def simulator():
    return ENMCSimulator(DEFAULT_CONFIG)


@pytest.fixture(scope="module")
def workload():
    return get_workload("Transformer-W268K")


class TestPhaseBreakdown:
    def test_streaming_overlap_takes_max(self):
        phase = PhaseBreakdown(memory_seconds=3.0, compute_seconds=1.0)
        assert phase.seconds == 3.0
        assert phase.bound == "memory"

    def test_compute_bound(self):
        phase = PhaseBreakdown(memory_seconds=1.0, compute_seconds=3.0)
        assert phase.bound == "compute"


class TestSimulate:
    def test_screening_is_memory_bound(self, simulator, workload):
        """With 128 INT4 MACs the screening phase should be limited by
        rank bandwidth — the design point the paper argues for."""
        result = simulator.simulate(workload, candidates_per_row=1000)
        assert result.screen.bound == "memory"

    def test_dual_module_beats_serialized(self, simulator, workload):
        result = simulator.simulate(workload, candidates_per_row=5000)
        assert result.seconds < result.serialized_seconds

    def test_pipelined_close_to_max_phase(self, simulator, workload):
        result = simulator.simulate(workload, candidates_per_row=5000)
        longer = max(result.screen.seconds, result.execute.seconds)
        assert result.seconds < 1.2 * longer + result.sfu_seconds + 1e-9

    def test_batch_scales_compute_not_weights(self, simulator, workload):
        one = simulator.simulate(workload, candidates_per_row=100, batch_size=1)
        four = simulator.simulate(workload, candidates_per_row=100, batch_size=4)
        assert four.int_bytes_per_rank == one.int_bytes_per_rank
        assert four.int_macs_per_rank == pytest.approx(4 * one.int_macs_per_rank)

    def test_default_projection_quarter(self, simulator, workload):
        explicit = simulator.simulate(
            workload, projection_dim=workload.hidden_dim // 4,
            candidates_per_row=100,
        )
        default = simulator.simulate(workload, candidates_per_row=100)
        assert default.seconds == explicit.seconds

    def test_more_candidates_longer_execute(self, simulator, workload):
        small = simulator.simulate(workload, candidates_per_row=100)
        large = simulator.simulate(workload, candidates_per_row=10_000)
        assert large.execute.seconds > small.execute.seconds

    def test_more_ranks_faster(self, workload):
        few = ENMCSimulator(ENMCConfig(channels=2, ranks_per_channel=2))
        many = ENMCSimulator(ENMCConfig(channels=8, ranks_per_channel=8))
        t_few = few.simulate(workload, candidates_per_row=1000).seconds
        t_many = many.simulate(workload, candidates_per_row=1000).seconds
        assert t_many < t_few / 4

    def test_rejects_bad_batch(self, simulator, workload):
        with pytest.raises(ValueError):
            simulator.simulate(workload, batch_size=0)

    def test_traffic_accounting(self, simulator, workload):
        k = workload.hidden_dim // 4
        result = simulator.simulate(workload, candidates_per_row=100)
        shards = DEFAULT_CONFIG.total_ranks
        l_shard = math.ceil(workload.num_categories / shards)
        expected = l_shard * k * 4 / 8  # W̃ shard at INT4; Ph ships from host
        assert result.int_bytes_per_rank == pytest.approx(expected)


class TestCostFor:
    def test_matches_cost_model(self, simulator, workload):
        cost = simulator.cost_for(workload, candidates_per_row=100)
        from repro.core.metrics import cost_of_screened_classification

        expected = cost_of_screened_classification(
            workload.num_categories, workload.hidden_dim,
            workload.hidden_dim // 4, 100, 1, quantization_bits=4,
        )
        assert cost.int_bytes == expected.int_bytes
        assert cost.fp_flops == expected.fp_flops


class TestFullClassificationBaseline:
    def test_full_slower_than_screened(self, simulator, workload):
        screened = simulator.simulate(
            workload, candidates_per_row=workload.default_candidates
        )
        full = simulator.simulate_full_classification(workload)
        assert full.serialized_seconds > 3 * screened.seconds

    def test_full_is_fp_only(self, simulator, workload):
        full = simulator.simulate_full_classification(workload)
        assert full.int_macs_per_rank == 0
        assert full.int_bytes_per_rank == 0


class TestHeterogeneousAdvantage:
    def test_int4_units_essential(self, workload):
        """Ablation (DESIGN.md §5): replacing the 128-lane INT4 array
        with 16 FP32-rate lanes makes screening compute-bound and
        slower — the homogeneous-NMP failure mode."""
        hetero = ENMCSimulator(DEFAULT_CONFIG)
        homo = ENMCSimulator(ENMCConfig(int4_macs=16))
        t_het = hetero.simulate(workload, candidates_per_row=1000)
        t_hom = homo.simulate(workload, candidates_per_row=1000)
        assert t_hom.screen.bound == "compute"
        assert t_hom.seconds > t_het.seconds
