"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a refactor that breaks one
must fail CI.  The two heavier sequence examples are exercised with a
reduced-scope environment knob? No — they finish in tens of seconds and
run here unmodified, keeping the check honest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_discovered():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "language_modeling.py", "recommendation.py",
            "translation.py", "hardware_offload.py",
            "distributed_scaleout.py"} <= names
