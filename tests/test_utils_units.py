import pytest

from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    bytes_to_gib,
    bytes_to_mib,
    cycles_to_seconds,
    gbps,
    ns_to_cycles,
    seconds_to_cycles,
)


def test_binary_prefixes():
    assert KIB == 1024
    assert MIB == 1024 * 1024
    assert GIB == 1024**3


def test_bytes_to_mib():
    assert bytes_to_mib(MIB) == 1.0
    assert bytes_to_mib(512 * KIB) == 0.5


def test_bytes_to_gib():
    assert bytes_to_gib(2 * GIB) == 2.0


def test_cycles_to_seconds():
    assert cycles_to_seconds(1_000_000, 1e6) == 1.0


def test_cycles_to_seconds_rejects_zero_freq():
    with pytest.raises(ValueError):
        cycles_to_seconds(100, 0)


def test_seconds_to_cycles_ceils():
    assert seconds_to_cycles(1.5e-9, 1e9) == 2


def test_seconds_to_cycles_exact():
    assert seconds_to_cycles(5e-9, 1e9) == 5


def test_ns_to_cycles():
    # 7.5 ns at 400 MHz = 3 cycles exactly.
    assert ns_to_cycles(7.5, 400e6) == 3


def test_gbps_decimal():
    assert gbps(19.2e9) == pytest.approx(19.2)
