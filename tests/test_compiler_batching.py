import numpy as np
import pytest

from repro.compiler import ENMCOffload, compile_batched_screening
from repro.core import ScreeningConfig, train_screener
from repro.data import make_task
from repro.isa.opcodes import BufferId, Opcode


@pytest.fixture(scope="module")
def setup():
    task = make_task(num_categories=1200, hidden_dim=48, rng=2)
    screener = train_screener(
        task.classifier, task.sample_features(384),
        config=ScreeningConfig(projection_dim=12), solver="lstsq", rng=3,
    )
    offload = ENMCOffload(task.classifier, screener, threshold=2.0)
    return task, screener, offload


class TestBatchedEquivalence:
    def test_logits_match_per_row_path(self, setup):
        task, _, offload = setup
        batch = task.sample_features(4, rng=5)
        per_row = offload.forward(batch)
        batched = offload.forward_batched(batch)
        assert np.allclose(
            per_row.output.logits, batched.output.logits, atol=1e-12
        )

    def test_candidates_match(self, setup):
        task, _, offload = setup
        batch = task.sample_features(5, rng=6)
        per_row = offload.forward(batch)
        batched = offload.forward_batched(batch)
        for a, b in zip(per_row.output.candidates, batched.output.candidates):
            assert np.array_equal(a, b)

    def test_single_row_batch(self, setup):
        task, _, offload = setup
        feature = task.sample_features(1, rng=7)
        batched = offload.forward_batched(feature)
        assert batched.output.logits.shape == (1, 1200)

    def test_batch_id_tagging(self, setup):
        task, _, offload = setup
        batch = task.sample_features(3, rng=8)
        result = offload.forward_batched(batch)
        trace = result.traces[0]
        batch_ids = {b for b, _ in trace.tagged_candidates}
        assert batch_ids <= {0, 1, 2}
        # Tagged results align with tagged candidates.
        assert len(trace.tagged_results) == len(trace.tagged_candidates)


class TestWeightReuse:
    def test_one_weight_load_per_tile(self, setup):
        task, screener, _ = setup
        batch = task.sample_features(4, rng=9)
        kernel = compile_batched_screening(
            task.classifier, screener, batch, threshold=2.0
        )
        weight_loads = sum(
            1 for i in kernel.program.dram_loads
            if i.buffer is BufferId.WEIGHT_INT4
        )
        assert weight_loads == kernel.plan.num_tiles
        feature_loads = sum(
            1 for i in kernel.program.dram_loads
            if i.buffer is BufferId.FEATURE_INT4
        )
        assert feature_loads == kernel.plan.num_tiles * 4

    def test_screening_traffic_scales_sublinearly(self, setup):
        """Batched screening weight traffic is ~independent of batch
        size, unlike the per-row path."""
        task, screener, offload = setup
        # Use a high threshold so candidate gathers are negligible and
        # traffic isolates the screening stream.
        tight = ENMCOffload(task.classifier, screener, threshold=1e6)
        one = tight.forward_batched(task.sample_features(1, rng=10))
        four = tight.forward_batched(task.sample_features(4, rng=10))
        ratio = four.total_dram_bytes / one.total_dram_bytes
        assert ratio < 1.5  # per-row path would be ~4×

        per_row_four = tight.forward(task.sample_features(4, rng=10))
        assert per_row_four.total_dram_bytes > 2.5 * four.total_dram_bytes

    def test_filter_count(self, setup):
        task, screener, _ = setup
        batch = task.sample_features(3, rng=11)
        kernel = compile_batched_screening(
            task.classifier, screener, batch, threshold=2.0
        )
        assert kernel.program.count(Opcode.FILTER) == kernel.plan.num_tiles * 3


class TestValidation:
    def test_rejects_wrong_dim(self, setup):
        task, screener, _ = setup
        with pytest.raises(ValueError, match="features"):
            compile_batched_screening(
                task.classifier, screener, np.zeros((2, 7)), threshold=0.0
            )
