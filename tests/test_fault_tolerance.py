"""Fault-injection matrix for the supervised parallel serving fleet.

Every injected fault kind (kill, delay-past-deadline, wedge, raise) is
driven through both serving backends (dense ``forward`` and
``forward_streaming``) and must end in one of exactly two states:

* **bit-identical recovery** — the respawned/retried fleet answers the
  same bits as the sequential ``ShardedClassifier``, or
* **a well-formed degraded result** — a ``DegradedOutput`` whose
  missing-range report is accurate and whose surviving entries equal
  the sequential backend's.

Faults come from :mod:`repro.utils.faults` and trigger on exact request
counts, so every scenario here is deterministic (no real OOM kills, no
races on "did the signal land in time").
"""

import numpy as np
import pytest

from repro.core import ScreeningConfig
from repro.core.pipeline import DegradedOutput
from repro.data import make_task
from repro.distributed import (
    ShardedClassifier,
    WorkerDied,
    WorkerError,
    merge_partial_shard_outputs,
    merge_partial_streamed_outputs,
)
from repro.obs import Recorder
from repro.utils.faults import FaultSpec

pytestmark = pytest.mark.timeout(300)

NUM_CATEGORIES = 300
HIDDEN_DIM = 32
BATCH = 8
BACKENDS = ("forward", "forward_streaming")

#: Supervision knobs tuned for test speed: near-instant backoff, and a
#: deadline/delay pair with wide margins on both sides (the late reply
#: must overshoot the first deadline and land inside the retry's).
FAST = dict(restart_backoff=0.01, restart_backoff_cap=0.05)
DEADLINE = 0.5
# Past the first deadline but safely inside the retry's window.  The
# delayed reply lands at ~LATE; the retry waits over [DEADLINE,
# 2*DEADLINE], so LATE sits 0.2s clear of both edges — recv_tagged now
# honors deadlines exactly (no poll_interval overshoot to hide in).
LATE = 0.8


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=40)


@pytest.fixture(scope="module")
def model(task):
    sharded = ShardedClassifier(
        task.classifier, num_shards=2, config=ScreeningConfig(projection_dim=8)
    )
    sharded.train(task.sample_features(128, rng=41), candidates_per_shard=8, rng=42)
    return sharded


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(BATCH, rng=43)


@pytest.fixture(scope="module")
def expected(model, features):
    return {
        "forward": model.forward(features),
        "forward_streaming": model.forward_streaming(features),
    }


def run_backend(engine_or_model, backend, features):
    return getattr(engine_or_model, backend)(features)


def assert_backend_identical(backend, actual, reference):
    """Bitwise equality of a full (non-degraded) backend result."""
    assert not isinstance(actual, DegradedOutput)
    if backend == "forward":
        assert np.array_equal(actual.logits, reference.logits)
        assert np.array_equal(
            actual.approximate_logits, reference.approximate_logits
        )
    else:
        assert np.array_equal(actual.exact_values, reference.exact_values)
        assert np.array_equal(
            actual.approximate_values, reference.approximate_values
        )
    for mine, theirs in zip(actual.candidates, reference.candidates):
        assert np.array_equal(mine, theirs)


def expected_degraded(model, features, backend, failed_shard):
    """What the degraded merge must equal: the sequential shards'
    outputs with the failed shard replaced by its placeholder."""
    dtypes = [shard.screener.compute_dtype for shard in model.shards]
    outputs = [
        None
        if shard_id == failed_shard
        else run_backend(shard, backend, features)
        for shard_id, shard in enumerate(model.shards)
    ]
    merge = (
        merge_partial_shard_outputs
        if backend == "forward"
        else merge_partial_streamed_outputs
    )
    return merge(outputs, model.ranges, features.shape[0], dtypes)


def assert_degraded_result(model, backend, actual, reference, failed_shard):
    """The degraded contract: accurate missing-range report + surviving
    entries identical to the sequential backend."""
    assert isinstance(actual, DegradedOutput)
    assert actual.missing_ranges == (model.ranges[failed_shard],)
    assert actual.missing_categories == len(model.ranges[failed_shard])
    assert 0.0 < actual.available_fraction < 1.0
    assert {f.shard_id for f in actual.failures} == {failed_shard}
    if backend == "forward":
        assert np.array_equal(
            actual.result.logits, reference.logits, equal_nan=True
        )
        missing = model.ranges[failed_shard]
        assert np.all(
            np.isnan(actual.result.logits[:, missing.start : missing.stop])
        )
    else:
        assert np.array_equal(actual.result.exact_values, reference.exact_values)
        missing = model.ranges[failed_shard]
        flat_cols = actual.result.candidates.flat()[1]
        assert not np.any(
            (flat_cols >= missing.start) & (flat_cols < missing.stop)
        )
    for mine, theirs in zip(actual.result.candidates, reference.candidates):
        assert np.array_equal(mine, theirs)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFaultMatrix:
    def test_kill_respawns_bit_identical(self, model, features, expected, backend):
        """Kill on the 2nd request: the supervisor respawns the worker
        from the shared segments and the request completes with the
        sequential backend's exact bits."""
        faults = {1: [FaultSpec(kind="kill", at_request=2)]}
        with model.parallel(faults=faults, **FAST) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            # The fault fires here; recovery is invisible to the caller.
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.restarts[1] == 1
            assert not engine.closed
            # Bit-identity reasserted on the respawned fleet.
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )

    def test_delay_past_deadline_recovers_via_retry(
        self, model, features, expected, backend
    ):
        """Delay beyond the request deadline: the first wait times out,
        the re-issued request is answered, and the late reply to the
        abandoned id is discarded instead of poisoning the pipe."""
        faults = {0: [FaultSpec(kind="delay", at_request=1, seconds=LATE)]}
        with model.parallel(
            request_timeout=DEADLINE, request_retries=1, faults=faults, **FAST
        ) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.workers[0].stale_replies == 1
            assert engine.restarts[0] == 0  # retry sufficed; no respawn
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )

    def test_wedge_recovers_when_budget_allows(
        self, model, features, expected, backend
    ):
        """A one-off wedge: every retry times out, the worker is killed
        and replaced, and the request still completes bit-identically
        on the replacement."""
        faults = {1: [FaultSpec(kind="wedge", at_request=1)]}
        with model.parallel(
            request_timeout=DEADLINE, request_retries=0, faults=faults, **FAST
        ) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.restarts[1] == 1

    def test_wedge_exhausting_budget_degrades(self, model, features, backend):
        """A persistent wedge burns the restart budget; in degraded mode
        the fleet answers from the surviving shard with an accurate
        missing-range report — and keeps doing so on later requests."""
        faults = {1: [FaultSpec(kind="wedge", at_request=1, persistent=True)]}
        reference = expected_degraded(model, features, backend, failed_shard=1)
        with model.parallel(
            request_timeout=DEADLINE,
            request_retries=0,
            max_restarts=1,
            degraded=True,
            faults=faults,
            **FAST,
        ) as engine:
            actual = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, actual, reference, failed_shard=1)
            assert engine.dead_shards == [1]
            # Subsequent requests skip the dead shard immediately.
            again = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, again, reference, failed_shard=1)
            assert not engine.closed

    def test_raise_failfast_then_serves(self, model, features, expected, backend):
        """A request-scoped exception raises WorkerError (fail-fast
        mode); the worker survives and the next request is exact."""
        faults = {0: [FaultSpec(kind="raise", at_request=1)]}
        with model.parallel(faults=faults, **FAST) as engine:
            with pytest.raises(WorkerError, match="InjectedFault"):
                run_backend(engine, backend, features)
            assert not engine.closed
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )

    def test_raise_degrades_with_error_report(self, model, features, backend):
        faults = {0: [FaultSpec(kind="raise", at_request=1)]}
        reference = expected_degraded(model, features, backend, failed_shard=0)
        with model.parallel(degraded=True, faults=faults, **FAST) as engine:
            actual = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, actual, reference, failed_shard=0)
            assert actual.failures[0].kind == "error"
            assert "InjectedFault" in actual.failures[0].detail

    def test_kill_degrades_when_budget_exhausted(self, model, features, backend):
        """A worker that dies on every incarnation's first request:
        bounded restarts stop the crash loop, degraded mode reports the
        missing range instead of raising."""
        faults = {0: [FaultSpec(kind="kill", at_request=1, persistent=True)]}
        reference = expected_degraded(model, features, backend, failed_shard=0)
        with model.parallel(
            max_restarts=1, degraded=True, faults=faults, **FAST
        ) as engine:
            actual = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, actual, reference, failed_shard=0)
            assert actual.failures[0].kind == "died"
            assert engine.restarts[0] == 1


class TestSupervisionPolicy:
    def test_crash_loop_exhausts_budget_and_raises_failfast(self, model, features):
        """Fail-fast mode preserves the original contract once the
        restart budget is spent: close everything, raise WorkerDied."""
        faults = {0: [FaultSpec(kind="kill", at_request=1, persistent=True)]}
        engine = model.parallel(max_restarts=2, faults=faults, **FAST)
        try:
            with pytest.raises(WorkerDied):
                engine.forward(features)
            assert engine.restarts[0] == 2
            assert engine.closed
        finally:
            engine.close()

    def test_zero_restarts_is_failfast(self, model, features):
        faults = {0: [FaultSpec(kind="kill", at_request=1)]}
        engine = model.parallel(max_restarts=0, faults=faults)
        try:
            with pytest.raises(WorkerDied):
                engine.forward(features)
            assert engine.closed
        finally:
            engine.close()

    def test_top_k_degrades_over_survivors(self, model, features):
        faults = {0: [FaultSpec(kind="kill", at_request=1, persistent=True)]}
        with model.parallel(
            max_restarts=0, degraded=True, faults=faults, **FAST
        ) as engine:
            result = engine.top_k(features, k=5)
            assert isinstance(result, DegradedOutput)
            indices, scores = result.result
            assert indices.shape == (BATCH, 5)
            surviving = model.ranges[1]
            assert np.all((indices >= surviving.start) & (indices < surviving.stop))
            # Survivor scores are the sequential shard's exact bits.
            shard_out = model.shards[1].forward(features)
            rows = np.arange(BATCH)[:, None]
            assert np.array_equal(
                scores, np.sort(shard_out.logits, axis=1)[:, ::-1][:, :5]
            )

    def test_predict_marks_unscored_rows(self, model, features):
        """With every shard down, predict returns -1 (no surviving
        scores) instead of crashing on an all-NaN argmax."""
        faults = {
            0: [FaultSpec(kind="kill", at_request=1, persistent=True)],
            1: [FaultSpec(kind="kill", at_request=1, persistent=True)],
        }
        with model.parallel(
            max_restarts=0, degraded=True, faults=faults, **FAST
        ) as engine:
            assert np.array_equal(
                engine.predict(features), np.full(BATCH, -1, dtype=np.intp)
            )

    def test_respawn_preserves_io_regrowth(self, model, task):
        """A respawned worker attaches the *current* I/O layout lazily,
        including planes regrown after its predecessor died."""
        small = task.sample_features(3, rng=44)
        large = task.sample_features(20, rng=45)
        with model.parallel(max_batch=4, **FAST) as engine:
            engine.forward(small)
            engine.workers[0].process.kill()
            actual = engine.forward(large)  # respawn + regrow in one request
            assert engine.restarts[0] == 1
            assert np.array_equal(actual.logits, model.forward(large).logits)

    def test_fault_spec_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="explode", at_request=1)
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(kind="kill", at_request=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultSpec(kind="delay", at_request=1, seconds=-1.0)


@pytest.mark.parametrize("backend", BACKENDS)
class TestReplicaGroupFaults:
    """The replica extension of the matrix: a shard with a sibling
    replica must keep serving *full* (non-degraded) output through any
    single-replica fault, and only degrade when the whole group dies."""

    def test_replica_kill_fails_over_to_sibling(
        self, model, features, expected, backend
    ):
        """Kill replica 0 of shard 1 with no restart budget: dispatch
        fails over to replica 1 inside the same request and the output
        is the sequential backend's exact bits."""
        faults = {(1, 0): [FaultSpec(kind="kill", at_request=1)]}
        with model.parallel(
            replicas={1: 2}, max_restarts=0, faults=faults, **FAST
        ) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.failovers == 1
            assert engine.dead_shards == []
            assert engine.restarts[1] == 0
            stats = engine.stats()
            assert stats["failovers"] == 1
            shard_stats = stats["shards"][1]
            assert shard_stats["replicas"] == 2
            assert [w["dead"] for w in shard_stats["replica_workers"]] == [
                True,
                False,
            ]
            # The survivor keeps answering without further recovery.
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.failovers == 1

    def test_replica_wedge_fails_over_to_sibling(
        self, model, features, expected, backend
    ):
        """A wedged replica times out, burns its (zero) budget share
        and the request completes on the sibling — full output, no
        degradation, no caller-visible latency cliff beyond the one
        deadline."""
        faults = {(1, 0): [FaultSpec(kind="wedge", at_request=1)]}
        with model.parallel(
            replicas={1: 2},
            request_timeout=DEADLINE,
            request_retries=0,
            max_restarts=0,
            faults=faults,
            **FAST,
        ) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.failovers == 1
            assert engine.dead_shards == []

    def test_replica_kill_respawns_within_budget(
        self, model, features, expected, backend
    ):
        """With budget left the killed replica is respawned in place
        (no failover) and the group returns to full strength."""
        faults = {(1, 0): [FaultSpec(kind="kill", at_request=1)]}
        with model.parallel(replicas={1: 2}, faults=faults, **FAST) as engine:
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )
            assert engine.restarts[1] == 1
            assert engine.failovers == 0
            group = engine.replica_groups[1]
            assert group.dead == [False, False]
            assert_backend_identical(
                backend, run_backend(engine, backend, features), expected[backend]
            )

    def test_whole_group_dead_degrades_with_accurate_report(
        self, model, features, backend
    ):
        """Persistent kills on every replica of shard 0: the group dies
        shard-wide and the degraded report names exactly shard 0's
        category range."""
        faults = {
            (0, 0): [FaultSpec(kind="kill", at_request=1, persistent=True)],
            (0, 1): [FaultSpec(kind="kill", at_request=1, persistent=True)],
        }
        reference = expected_degraded(model, features, backend, failed_shard=0)
        with model.parallel(
            replicas={0: 2}, max_restarts=1, degraded=True, faults=faults, **FAST
        ) as engine:
            actual = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, actual, reference, failed_shard=0)
            assert engine.dead_shards == [0]
            # Later requests skip the dead group immediately.
            again = run_backend(engine, backend, features)
            assert_degraded_result(model, backend, again, reference, failed_shard=0)
            assert not engine.closed


class TestReplicaConfiguration:
    def test_replica_fault_key_validation(self, model):
        with pytest.raises(ValueError, match="unknown shard 9"):
            model.parallel(faults={9: [FaultSpec(kind="kill", at_request=1)]})
        with pytest.raises(ValueError, match="replica 1 but shard 0 runs 1"):
            model.parallel(faults={(0, 1): [FaultSpec(kind="kill", at_request=1)]})
        with pytest.raises(ValueError, match="unknown shards"):
            model.parallel(replicas={7: 2})
        with pytest.raises(ValueError, match=">= 1 replica"):
            model.parallel(replicas={0: 0})

    def test_answered_counts_reconcile(self, model, features):
        """Sum of per-replica answered counts equals the engine's
        request count for every healthy shard — the stats() invariant
        the benchmark's reconciliation check relies on."""
        with model.parallel(replicas=2, **FAST) as engine:
            for _ in range(4):
                engine.forward(features)
            stats = engine.stats()
            assert stats["requests"] == 4
            assert stats["replica_counts"] == [2, 2]
            for shard_stats in stats["shards"]:
                assert shard_stats["answered"] == 4
                served = [w["served"] for w in shard_stats["replica_workers"]]
                assert sum(served) == 4
                assert sorted(served) == [2, 2]  # least-loaded spread


class TestElasticSupervision:
    """Supervision fixes that ride with elastic scaling: per-incident
    respawn backoff, dispatch-count replica picking, and the
    reconciliation invariant across a scale-up → failover → scale-down
    lifecycle."""

    def test_respawn_backoff_resets_per_incident(self, model, features, expected):
        """Two separate crash incidents each start at the *base*
        backoff.  The old policy used the shard-lifetime restart count
        as the exponent, so a crash after a long healthy stretch
        inherited an escalated delay from incidents long resolved."""
        recorder = Recorder()
        faults = {0: [FaultSpec(kind="kill", at_request=1)]}
        with model.parallel(faults=faults, recorder=recorder, **FAST) as engine:
            # Incident 1: the injected kill; the respawned worker
            # serves the retried request bit-identically.
            assert_backend_identical(
                "forward", engine.forward(features), expected["forward"]
            )
            assert engine.restarts[0] == 1
            # Incident 2, much later in worker-lifetime terms: kill the
            # *respawned* process by hand.
            engine.workers[0].process.kill()
            assert_backend_identical(
                "forward", engine.forward(features), expected["forward"]
            )
            assert engine.restarts[0] == 2
        backoffs = recorder.snapshot()["histograms"]["parallel.respawn_backoff_s"]
        assert backoffs["count"] == 2
        # Both first attempts sleep the base backoff.  The lifetime-
        # exponent bug made the second incident sleep 2x the base
        # (sum == 3 * base instead of 2 * base).
        assert backoffs["sum"] == pytest.approx(2 * FAST["restart_backoff"])

    def test_pick_charges_dispatches_not_answers(self, model, features, expected):
        """A replica sitting on a timing-out request must not stay
        "least loaded".  Picking by answered count did exactly that —
        the delayed replica never answered, so it attracted every new
        request.  Dispatch-count picking charges the work when it is
        handed out."""
        faults = {
            (0, 0): [
                FaultSpec(kind="delay", at_request=1, seconds=LATE),
                FaultSpec(kind="delay", at_request=3, seconds=LATE),
            ]
        }
        with model.parallel(
            replicas={0: 2},
            request_timeout=DEADLINE,
            request_retries=1,
            max_restarts=0,
            faults=faults,
            **FAST,
        ) as engine:
            for _ in range(6):
                assert_backend_identical(
                    "forward", engine.forward(features), expected["forward"]
                )
            assert engine.dead_shards == []
            group = engine.replica_groups[0]
            # Dispatch-count picking routes around the delayed replica:
            # the healthy sibling ends up answering most requests.
            # Answer-count picking converges to an even [3, 3] split
            # because the delayed replica always looks least loaded.
            assert group.served == [2, 4]

    def test_scale_up_failover_scale_down_reconciles(
        self, model, features, expected
    ):
        """The satellite lifecycle: grow a shard at runtime, lose a
        replica to a crash with no restart budget, retire the tombstone
        — ``answered == requests`` holds at every step and the retired
        replica's answers survive in ``retired_served``."""
        with model.parallel(max_restarts=0, **FAST) as engine:
            assert engine.scale_up(0) == 1
            assert engine.replica_counts == [2, 1]

            # F1 lands on replica 0, F2 on replica 1 (dispatch spread).
            for _ in range(2):
                assert_backend_identical(
                    "forward", engine.forward(features), expected["forward"]
                )
            group = engine.replica_groups[0]
            assert group.served == [1, 1]

            # Kill replica 0: the next request fails over to the
            # sibling (no budget to respawn), leaving a tombstone.
            group.handles[0].process.kill()
            assert_backend_identical(
                "forward", engine.forward(features), expected["forward"]
            )
            assert engine.failovers == 1
            assert engine.dead_shards == []
            assert group.dead == [True, False]
            assert group.answered() == 3

            # Scale-down reclaims the tombstone slot, not a live one,
            # and folds its answer count into retired_served.
            assert engine.scale_down(0)
            assert engine.replica_counts == [1, 1]
            assert group.dead == [False]
            assert group.retired_served == 1

            assert_backend_identical(
                "forward", engine.forward(features), expected["forward"]
            )
            stats = engine.stats()
            assert stats["requests"] == 4
            assert stats["scale_ups"] == 1
            assert stats["scale_downs"] == 1
            for shard_stats in stats["shards"]:
                assert shard_stats["answered"] == 4
