"""Tests for the serving load generator.

The load generator is measurement equipment — these tests pin its
accounting (every offered request lands in exactly one outcome bucket),
its Zipfian request mix, and its two arrival models against a cheap
stub backend so the suite stays fast.
"""

import numpy as np
import pytest

from repro.core.candidates import CandidateSet
from repro.core.pipeline import ScreenedOutput
from repro.serving import (
    FrontDoor,
    LoadReport,
    ZipfianMix,
    run_closed_loop,
    run_open_loop,
)

pytestmark = pytest.mark.timeout(300)

HIDDEN_DIM = 6


class _StubBackend:
    """Instant answers; counts rows served for accounting checks."""

    num_categories = 8
    hidden_dim = HIDDEN_DIM

    def __init__(self):
        self.rows_served = 0

    def forward(self, features):
        self.rows_served += features.shape[0]
        logits = np.zeros((features.shape[0], self.num_categories))
        candidates = CandidateSet(
            indices=[np.arange(2, dtype=np.intp) for _ in range(features.shape[0])]
        )
        return ScreenedOutput(
            logits, approximate_logits=logits.copy(), candidates=candidates
        )

    def forward_streaming(self, features, block_categories=None):
        return self.forward(features)

    def top_k(self, features, k):
        self.rows_served += features.shape[0]
        return np.zeros((features.shape[0], k), dtype=np.intp)

    def predict(self, features):
        self.rows_served += features.shape[0]
        return np.zeros(features.shape[0], dtype=np.intp)

    def close(self):
        pass


class TestZipfianMix:
    def test_samples_come_from_the_pool(self):
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=8, seed=3)
        for _ in range(16):
            row = mix.sample()
            assert any(np.array_equal(row, pooled) for pooled in mix.pool)

    def test_head_ranks_dominate(self):
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=32, s=1.2, seed=3)
        assert mix.probabilities[0] == mix.probabilities.max()
        assert np.all(np.diff(mix.probabilities) < 0)  # strictly rank-ordered
        assert mix.probabilities.sum() == pytest.approx(1.0)

    def test_zero_exponent_is_uniform(self):
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=5, s=0.0, seed=3)
        assert np.allclose(mix.probabilities, 0.2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=0)
        with pytest.raises(ValueError):
            ZipfianMix(hidden_dim=HIDDEN_DIM, s=-1.0)


class TestClosedLoop:
    def test_accounting_adds_up_with_no_loss(self):
        backend = _StubBackend()
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=8, seed=1)
        with FrontDoor(backend, max_batch=4, flush_window_s=0.001) as door:
            report = run_closed_loop(
                door, mix, concurrency=3, requests_per_worker=10
            )
        assert report.offered == 30
        assert report.served == 30
        assert report.shed_queue_full == 0
        assert report.shed_deadline == 0
        assert report.errors == 0
        assert backend.rows_served == 30
        assert len(report.latencies_s) == 30
        assert report.throughput_rps > 0

    def test_every_offer_lands_in_exactly_one_bucket_under_pressure(self):
        backend = _StubBackend()
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=8, seed=1)
        with FrontDoor(
            backend, max_batch=2, flush_window_s=0.0, queue_limit=2
        ) as door:
            report = run_closed_loop(
                door, mix, concurrency=6, requests_per_worker=20
            )
        total = (
            report.served
            + report.shed_queue_full
            + report.shed_deadline
            + report.errors
        )
        assert report.offered == 120
        assert total == 120
        assert backend.rows_served == report.served


class TestOpenLoop:
    def test_poisson_arrivals_and_accounting(self):
        backend = _StubBackend()
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=8, seed=1)
        with FrontDoor(backend, max_batch=8, flush_window_s=0.002) as door:
            report = run_open_loop(
                door, mix, rate_rps=400.0, duration_s=0.25, seed=7
            )
        assert report.offered > 0
        total = (
            report.served
            + report.shed_queue_full
            + report.shed_deadline
            + report.errors
        )
        assert total == report.offered
        assert report.duration_s > 0.2  # ends at the last arrival, not the window edge
        # Poisson(rate * duration) = 100 expected offers; 5 sigma slack.
        assert 50 <= report.offered <= 150

    def test_slo_sheds_are_counted_separately(self):
        backend = _StubBackend()
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=8, seed=1)
        with FrontDoor(backend, max_batch=8, flush_window_s=0.01) as door:
            report = run_open_loop(
                door, mix, rate_rps=200.0, duration_s=0.1, slo_s=0.0, seed=7
            )
        assert report.served == 0
        assert report.shed_deadline == report.offered
        assert report.errors == 0

    def test_rejects_nonpositive_rate(self):
        backend = _StubBackend()
        mix = ZipfianMix(hidden_dim=HIDDEN_DIM, pool_size=4, seed=1)
        with FrontDoor(backend) as door:
            with pytest.raises(ValueError):
                run_open_loop(door, mix, rate_rps=0.0, duration_s=0.1)


class TestLoadReport:
    def test_empty_report_percentiles_are_nan(self):
        report = LoadReport()
        assert np.isnan(report.latency_percentile(99))
        assert np.isnan(report.mean_batch_size)
        assert report.throughput_rps == 0.0

    def test_summary_is_json_shaped(self):
        report = LoadReport(
            offered=2,
            served=2,
            duration_s=1.0,
            latencies_s=[0.001, 0.003],
            batch_sizes=[1, 2],
        )
        summary = report.summary()
        assert summary["throughput_rps"] == 2.0
        assert summary["mean_batch_size"] == 1.5
        assert summary["p50_ms"] == pytest.approx(2.0)
        for key in ("offered", "served", "p99_ms", "shed_queue_full"):
            assert key in summary
