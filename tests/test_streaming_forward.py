"""Differential harness for the blocked streaming forward pass.

The contract under test: ``forward_streaming`` is the *same function*
as the dense ``forward`` — identical candidate sets for every block
partition, bit-identical approximate and exact candidate values, and
(in ``dense=True`` mode) bit-identical output planes — across
selectors, screening compute dtypes, block sizes and shard counts.
The memory win comes from never materializing the ``batch × l`` plane,
not from changing a single output bit.
"""

import numpy as np
import pytest

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.core.candidates import CandidateSelector
from repro.core.pipeline import ScreenedOutput, StreamedOutput
from repro.core.screener import TILE_CATEGORIES
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.utils.memory import Workspace

NUM_CATEGORIES = 600
HIDDEN_DIM = 32
PROJECTION_DIM = 8
NUM_CANDIDATES = 12

SELECTORS = ("top_m", "threshold")
DTYPES = ("float64", "float32")
# Per-issue matrix: a degenerate 1-wide block, a ragged prime, exactly
# one block, and a block larger than the category space.
BLOCKS = (1, 7, NUM_CATEGORIES, 3 * NUM_CATEGORIES)
SHARD_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(16, rng=6)


@pytest.fixture(scope="module")
def calibration(task):
    return task.sample_features(128, rng=9)


@pytest.fixture(scope="module")
def train_features(task):
    return task.sample_features(256, rng=7)


def build_pipeline(task, train_features, calibration, dtype, selector_mode):
    screener = train_screener(
        task.classifier,
        train_features,
        config=ScreeningConfig(projection_dim=PROJECTION_DIM, compute_dtype=dtype),
        rng=5,
    )
    model = ApproximateScreeningClassifier(
        task.classifier, screener, num_candidates=NUM_CANDIDATES
    )
    if selector_mode == "threshold":
        selector = CandidateSelector(
            mode="threshold", num_candidates=NUM_CANDIDATES
        )
        selector.calibrate(screener.approximate_logits(calibration))
        model.selector = selector
    return model


@pytest.fixture(scope="module")
def pipeline_zoo(task, train_features, calibration):
    return {
        (dtype, selector_mode): build_pipeline(
            task, train_features, calibration, dtype, selector_mode
        )
        for dtype in DTYPES
        for selector_mode in SELECTORS
    }


def assert_candidates_equal(actual, expected):
    assert actual.batch_size == expected.batch_size
    for mine, theirs in zip(actual, expected):
        assert np.array_equal(mine, theirs)


def assert_dense_outputs_identical(actual, expected):
    """Bitwise equality of everything a ScreenedOutput exposes."""
    assert actual.logits.dtype == expected.logits.dtype
    assert np.array_equal(actual.logits, expected.logits)
    assert np.array_equal(actual.approximate_logits, expected.approximate_logits)
    assert_candidates_equal(actual.candidates, expected.candidates)
    assert actual.exact_count == expected.exact_count


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("selector_mode", SELECTORS)
class TestStreamingMatchesDense:
    @pytest.mark.parametrize("block", BLOCKS)
    def test_candidates_and_values_bitwise(
        self, pipeline_zoo, features, selector_mode, dtype, block
    ):
        """Candidate entries are the dense entries, bit for bit — for
        both dtypes: the streaming exact values go through the same
        kernel and the same final cast as the dense mix."""
        model = pipeline_zoo[(dtype, selector_mode)]
        dense = model.forward(features)
        streamed = model.forward_streaming(features, block_categories=block)
        assert isinstance(streamed, StreamedOutput)
        assert_candidates_equal(streamed.candidates, dense.candidates)
        rows, cols = dense.candidates.flat()
        assert streamed.approximate_values.dtype == dense.logits.dtype
        assert np.array_equal(
            streamed.approximate_values, dense.approximate_logits[rows, cols]
        )
        assert streamed.exact_values.dtype == dense.logits.dtype
        assert np.array_equal(streamed.exact_values, dense.logits[rows, cols])
        assert streamed.exact_count == dense.exact_count
        assert streamed.num_categories == dense.num_categories

    @pytest.mark.parametrize("block", BLOCKS)
    def test_dense_mode_bit_identical(
        self, pipeline_zoo, features, selector_mode, dtype, block
    ):
        """dense=True materializes the plane: the full ScreenedOutput
        must be indistinguishable from forward()."""
        model = pipeline_zoo[(dtype, selector_mode)]
        expected = model.forward(features)
        actual = model.forward_streaming(
            features, block_categories=block, dense=True
        )
        assert isinstance(actual, ScreenedOutput)
        assert_dense_outputs_identical(actual, expected)

    def test_block_size_is_irrelevant(
        self, pipeline_zoo, features, selector_mode, dtype
    ):
        """Any two partitions of the category stream select identically."""
        model = pipeline_zoo[(dtype, selector_mode)]
        reference = model.forward_streaming(features, block_categories=1)
        for block in (7, 64, NUM_CATEGORIES):
            other = model.forward_streaming(features, block_categories=block)
            assert_candidates_equal(other.candidates, reference.candidates)
            assert np.array_equal(other.exact_values, reference.exact_values)
            assert np.array_equal(
                other.approximate_values, reference.approximate_values
            )

    def test_faithful_cross_check(
        self, pipeline_zoo, features, selector_mode, dtype
    ):
        """The per-row reference dataflow agrees with the streamed
        candidate values (same tolerance the dense engines grant each
        other)."""
        model = pipeline_zoo[(dtype, selector_mode)]
        faithful = model.forward(features, faithful=True)
        streamed = model.forward_streaming(features)
        assert_candidates_equal(streamed.candidates, faithful.candidates)
        rows, cols = faithful.candidates.flat()
        assert np.allclose(
            streamed.exact_values,
            faithful.logits[rows, cols],
            rtol=0,
            atol=1e-12,
        )
        assert np.array_equal(
            streamed.approximate_values, faithful.approximate_logits[rows, cols]
        )

    def test_predict_matches_dense_argmax_on_candidates(
        self, pipeline_zoo, features, selector_mode, dtype
    ):
        """Streamed predict() equals the dense argmax whenever the
        winner sits inside the candidate set (it does for top-m on a
        trained screener here; assert via the candidate-masked dense
        argmax to stay exact)."""
        model = pipeline_zoo[(dtype, selector_mode)]
        dense = model.forward(features)
        streamed = model.forward_streaming(features)
        masked = np.full(dense.logits.shape, -np.inf)
        rows, cols = dense.candidates.flat()
        masked[rows, cols] = dense.logits[rows, cols]
        expected = np.where(
            dense.candidates.counts > 0, np.argmax(masked, axis=1), -1
        )
        assert np.array_equal(streamed.predict(), expected)


class TestEdgeCases:
    def test_empty_candidate_rows(self, pipeline_zoo, features):
        """A threshold above every score: no candidates anywhere, no
        exact work, predict() reports -1."""
        base = pipeline_zoo[("float64", "top_m")]
        model = ApproximateScreeningClassifier(
            base.classifier,
            base.screener,
            selector=CandidateSelector(mode="threshold", threshold=1e18),
        )
        streamed = model.forward_streaming(features)
        assert streamed.exact_count == 0
        assert streamed.exact_values.size == 0
        assert streamed.approximate_values.size == 0
        assert np.array_equal(
            streamed.predict(), np.full(features.shape[0], -1)
        )
        dense = model.forward(features)
        assert np.array_equal(dense.logits, dense.approximate_logits)
        identical = model.forward_streaming(features, dense=True)
        assert_dense_outputs_identical(identical, dense)

    def test_invalid_block_rejected(self, pipeline_zoo, features):
        model = pipeline_zoo[("float64", "top_m")]
        with pytest.raises(ValueError):
            model.forward_streaming(features, block_categories=0)

    def test_single_row_batch(self, pipeline_zoo, task):
        model = pipeline_zoo[("float64", "threshold")]
        features = task.sample_features(1, rng=13)
        dense = model.forward(features)
        streamed = model.forward_streaming(features, block_categories=7)
        assert_candidates_equal(streamed.candidates, dense.candidates)
        rows, cols = dense.candidates.flat()
        assert np.array_equal(streamed.exact_values, dense.logits[rows, cols])

    def test_category_space_wider_than_one_tile(self):
        """l > TILE_CATEGORIES exercises the multi-tile enumeration the
        canonical-tile bit-identity argument rests on (ragged tail
        included)."""
        l = TILE_CATEGORIES + 173
        task = make_task(num_categories=l, hidden_dim=16, rng=21)
        screener = train_screener(
            task.classifier,
            task.sample_features(64, rng=22),
            config=ScreeningConfig(projection_dim=8),
            rng=23,
        )
        model = ApproximateScreeningClassifier(
            task.classifier, screener, num_candidates=8
        )
        features = task.sample_features(4, rng=24)
        dense = model.forward(features)
        actual = model.forward_streaming(features, dense=True)
        assert_dense_outputs_identical(actual, dense)
        streamed = model.forward_streaming(features, block_categories=1000)
        assert_candidates_equal(streamed.candidates, dense.candidates)
        rows, cols = dense.candidates.flat()
        assert np.array_equal(streamed.exact_values, dense.logits[rows, cols])


class TestWorkspaceSteadyState:
    @pytest.mark.parametrize("selector_mode", SELECTORS)
    def test_zero_allocations_after_warmup(
        self, pipeline_zoo, features, selector_mode
    ):
        """The acceptance criterion: after one warm-up call at a given
        batch shape, repeated streaming calls perform zero new
        workspace allocations."""
        model = pipeline_zoo[("float64", selector_mode)]
        workspace = Workspace()
        model.forward_streaming(features, workspace=workspace)
        settled = workspace.allocations
        for _ in range(3):
            model.forward_streaming(features, workspace=workspace)
        assert workspace.allocations == settled
        assert workspace.requests > 0

    def test_smaller_batch_reuses_slabs(self, pipeline_zoo, features):
        model = pipeline_zoo[("float64", "top_m")]
        workspace = Workspace()
        model.forward_streaming(features, workspace=workspace)
        settled = workspace.allocations
        model.forward_streaming(features[:4], workspace=workspace)
        assert workspace.allocations == settled

    def test_pipeline_owned_workspace_is_lazy_and_reused(
        self, task, train_features, calibration
    ):
        model = build_pipeline(
            task, train_features, calibration, "float64", "top_m"
        )
        assert model._workspace is None
        batch = task.sample_features(8, rng=30)
        model.forward_streaming(batch)
        workspace = model._workspace
        assert workspace is not None
        settled = workspace.allocations
        model.forward_streaming(batch)
        assert model._workspace is workspace
        assert workspace.allocations == settled


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("selector_mode", SELECTORS)
@pytest.mark.parametrize("dtype", DTYPES)
class TestShardedStreaming:
    @pytest.fixture(scope="class")
    def sharded_zoo(self, task, train_features, calibration):
        zoo = {}
        for shards in SHARD_COUNTS:
            for dtype in DTYPES:
                for selector_mode in SELECTORS:
                    model = ShardedClassifier(
                        task.classifier,
                        num_shards=shards,
                        config=ScreeningConfig(
                            projection_dim=PROJECTION_DIM, compute_dtype=dtype
                        ),
                    )
                    model.train(
                        train_features, candidates_per_shard=8, rng=5
                    )
                    if selector_mode == "threshold":
                        for shard in model.shards:
                            selector = CandidateSelector(
                                mode="threshold", num_candidates=8
                            )
                            selector.calibrate(
                                shard.screener.approximate_logits(calibration)
                            )
                            shard.selector = selector
                    zoo[(shards, dtype, selector_mode)] = model
        return zoo

    def test_streamed_matches_dense_forward(
        self, sharded_zoo, features, shards, dtype, selector_mode
    ):
        model = sharded_zoo[(shards, dtype, selector_mode)]
        dense = model.forward(features)
        streamed = model.forward_streaming(features, block_categories=64)
        assert_candidates_equal(streamed.candidates, dense.candidates)
        rows, cols = dense.candidates.flat()
        assert np.array_equal(streamed.exact_values, dense.logits[rows, cols])
        assert np.array_equal(
            streamed.approximate_values, dense.approximate_logits[rows, cols]
        )
        assert streamed.num_categories == NUM_CATEGORIES

    def test_parallel_engine_matches_sequential(
        self, sharded_zoo, features, shards, dtype, selector_mode
    ):
        if dtype == "float32" and selector_mode == "threshold":
            pytest.skip("engine matrix covered by the other three cells")
        model = sharded_zoo[(shards, dtype, selector_mode)]
        sequential = model.forward_streaming(features, block_categories=32)
        with model.parallel() as engine:
            parallel = engine.forward_streaming(features, block_categories=32)
            assert_candidates_equal(
                parallel.candidates, sequential.candidates
            )
            assert np.array_equal(
                parallel.exact_values, sequential.exact_values
            )
            assert np.array_equal(
                parallel.approximate_values, sequential.approximate_values
            )
            # Streaming never allocates the dense output planes.
            assert engine._io_output is None
