import numpy as np
import pytest

from repro.dram import (
    AnalyticDRAMModel,
    DDR4_2400,
    DRAMSystem,
    Request,
    RequestType,
)


def make_system(channels=1, ranks=8):
    return DRAMSystem(DDR4_2400, channels=channels, ranks_per_channel=ranks)


class TestSingleRequest:
    def test_idle_read_latency(self):
        system = make_system()
        request = system.submit(RequestType.READ, 0)
        stats = system.drain()
        t = DDR4_2400
        # ACT at 0 is impossible (cmd bus at cycle 0 OK): ACT, RD at
        # +tRCD, data at +CL+burst.
        assert request.completed_at == t.trcd + t.cl + t.burst_cycles
        assert stats.reads == 1
        assert stats.activations == 1

    def test_write_completes(self):
        system = make_system()
        request = system.submit(RequestType.WRITE, 0)
        system.drain()
        assert request.done
        assert request.latency > 0

    def test_row_hit_second_read(self):
        system = make_system()
        first = system.submit(RequestType.READ, 0)
        second = system.submit(RequestType.READ, 64 * 1)  # same row? no: next channel
        # For channels=1, address 64 is the next column in the same row.
        system.drain()
        assert second.completed_at - first.completed_at <= DDR4_2400.tccd + \
            DDR4_2400.burst_cycles


class TestStreams:
    def test_stream_row_hit_rate_high(self):
        system = make_system()
        system.stream_read(0, 64 * 1024)
        stats = system.drain()
        assert stats.row_hit_rate > 0.95

    def test_stream_bandwidth_near_peak(self):
        system = make_system()
        system.stream_read(0, 256 * 1024)
        stats = system.drain()
        assert stats.bandwidth > 0.85 * DDR4_2400.peak_bandwidth

    def test_multi_channel_scales(self):
        single = make_system(channels=1)
        single.stream_read(0, 128 * 1024)
        bw1 = single.drain().bandwidth
        quad = make_system(channels=4)
        quad.stream_read(0, 128 * 1024)
        bw4 = quad.drain().bandwidth
        assert bw4 > 3.0 * bw1

    def test_bytes_accounted(self):
        system = make_system()
        system.stream_read(0, 64 * 100)
        stats = system.drain()
        assert stats.bytes_transferred == 64 * 100

    def test_write_stream(self):
        system = make_system()
        system.stream_write(0, 64 * 64)
        stats = system.drain()
        assert stats.writes == 64
        assert stats.reads == 0


class TestGather:
    def test_gather_sustains_parallelism(self):
        system = make_system()
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 28, 256) // 64 * 64
        system.gather_read(addrs.tolist())
        stats = system.drain()
        # Random single-burst reads limited by bus: ≥ 60% of peak with
        # 128 banks available.
        assert stats.bandwidth > 0.5 * DDR4_2400.peak_bandwidth

    def test_gather_mostly_misses(self):
        system = make_system()
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 1 << 28, 200) // 64 * 64
        system.gather_read(addrs.tolist())
        stats = system.drain()
        assert stats.row_hit_rate < 0.2 or stats.activations > 150


class TestRefreshInStream:
    def test_long_stream_refreshes(self):
        system = make_system()
        # ~34k bursts per channel: > tREFI at 4 cycles per burst.
        system.stream_read(0, 64 * 40_000)
        stats = system.drain()
        assert stats.refreshes >= 1


class TestValidation:
    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            DRAMSystem(DDR4_2400, channels=0)

    def test_request_latency_before_completion_raises(self):
        request = Request(
            type=RequestType.READ,
            address=make_system().mapping.decode(0),
        )
        with pytest.raises(ValueError):
            request.latency
