import numpy as np
import pytest

from repro.data.registry import get_workload
from repro.distributed import ClusterModel, ShardedClassifier, shard_ranges
from repro.distributed.cluster import NetworkModel


class TestShardRanges:
    def test_covers_everything_once(self):
        ranges = shard_ranges(100, 7)
        covered = [i for r in ranges for i in r]
        assert covered == list(range(100))

    def test_balanced(self):
        sizes = [len(r) for r in shard_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_exact_division(self):
        assert [len(r) for r in shard_ranges(100, 4)] == [25, 25, 25, 25]

    def test_more_shards_than_categories_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(3, 5)


class TestShardedClassifier:
    @pytest.fixture(scope="class")
    def sharded(self):
        from repro.core import ScreeningConfig
        from repro.data import make_task

        task = make_task(num_categories=1200, hidden_dim=64, rng=4)
        model = ShardedClassifier(
            task.classifier, num_shards=4,
            config=ScreeningConfig(projection_dim=16),
        )
        model.train(task.sample_features(512), candidates_per_shard=16, rng=5)
        return task, model

    def test_untrained_forward_rejected(self, small_task):
        model = ShardedClassifier(small_task.classifier, num_shards=2)
        with pytest.raises(RuntimeError, match="train"):
            model.forward(np.zeros(64))

    def test_output_shape_global(self, sharded):
        task, model = sharded
        out = model(task.sample_features(3))
        assert out.logits.shape == (3, 1200)

    def test_candidates_in_global_order(self, sharded):
        task, model = sharded
        out = model(task.sample_features(2))
        for indices in out.candidates:
            assert indices.min() >= 0
            assert indices.max() < 1200
            # 16 candidates from each of 4 shards.
            assert indices.size == 64

    def test_candidate_entries_exact(self, sharded):
        task, model = sharded
        features = task.sample_features(2)
        out = model(features)
        exact = task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_predictions_match_exact(self, sharded):
        task, model = sharded
        features = task.sample_features(24)
        agreement = np.mean(
            model.predict(features) == task.classifier.predict(features)
        )
        assert agreement >= 0.9

    def test_top_k_reduce(self, sharded):
        task, model = sharded
        features = task.sample_features(4)
        indices, scores = model.top_k(features, k=5)
        assert indices.shape == (4, 5)
        # Scores sorted descending; indices valid and match scores.
        assert np.all(np.diff(scores, axis=1) <= 1e-12)
        out = model(features)
        rows = np.arange(4)[:, None]
        assert np.allclose(out.logits[rows, indices], scores)


class TestClusterModel:
    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("S10M")

    def test_node_time_shrinks_with_nodes(self, workload):
        cluster = ClusterModel()
        one = cluster.simulate(workload, nodes=1)
        eight = cluster.simulate(workload, nodes=8)
        assert eight.node_seconds < one.node_seconds / 4

    def test_reduce_grows_with_nodes(self, workload):
        cluster = ClusterModel()
        results = cluster.sweep(workload, (1, 4, 16))
        reduce_times = [r.reduce_seconds for r in results]
        assert reduce_times == sorted(reduce_times)

    def test_scaling_has_diminishing_returns(self, workload):
        """The reduce term eventually limits scale-out."""
        cluster = ClusterModel(
            network=NetworkModel(latency_s=1e-3)  # slow fabric
        )
        results = cluster.sweep(workload, (1, 256))
        assert results[1].reduce_fraction > results[0].reduce_fraction

    def test_total_is_sum(self, workload):
        result = ClusterModel().simulate(workload, nodes=4)
        assert result.seconds == pytest.approx(
            result.node_seconds + result.reduce_seconds
        )

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            ClusterModel().simulate(workload, nodes=0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)
