import numpy as np
import pytest

from repro.core.candidates import CandidateSet
from repro.data.registry import get_workload
from repro.distributed import (
    ClusterModel,
    ShardedClassifier,
    merge_candidates,
    merge_candidates_per_row,
    shard_ranges,
)
from repro.distributed.cluster import NetworkModel


class TestShardRanges:
    def test_covers_everything_once(self):
        ranges = shard_ranges(100, 7)
        covered = [i for r in ranges for i in r]
        assert covered == list(range(100))

    def test_balanced(self):
        sizes = [len(r) for r in shard_ranges(100, 7)]
        assert max(sizes) - min(sizes) <= 1

    def test_exact_division(self):
        assert [len(r) for r in shard_ranges(100, 4)] == [25, 25, 25, 25]

    def test_more_shards_than_categories_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(3, 5)

    def test_properties_hold_for_random_inputs(self):
        """Property test: for any valid (l, shards), the plan is a
        contiguous, disjoint, balanced cover of [0, l)."""
        rng = np.random.default_rng(1234)
        cases = [
            (int(l), int(rng.integers(1, l + 1)))
            for l in rng.integers(1, 5000, size=200)
        ]
        cases += [(1, 1), (2, 2), (5000, 5000), (17, 16)]  # shards == l edges
        for num_categories, num_shards in cases:
            ranges = shard_ranges(num_categories, num_shards)
            assert len(ranges) == num_shards
            # Contiguous and disjoint: each range starts where the
            # previous one stopped, starting from zero.
            assert ranges[0].start == 0
            for prev, cur in zip(ranges, ranges[1:]):
                assert cur.start == prev.stop
            # Full cover of [0, l).
            assert ranges[-1].stop == num_categories
            # Balanced within one, and never empty.
            sizes = [len(r) for r in ranges]
            assert min(sizes) >= 1
            assert max(sizes) - min(sizes) <= 1


class TestMergeCandidates:
    """The vectorized merge is the per-row reference merge (satellite
    guard for the flat-scatter rewrite of the reduce path)."""

    @staticmethod
    def random_shard_sets(rng, batch_size, ranges, max_per_row):
        """Ragged per-shard candidate sets, including empty rows."""
        sets = []
        for shard_range in ranges:
            rows = []
            for _ in range(batch_size):
                count = int(rng.integers(0, max_per_row + 1))
                rows.append(
                    rng.choice(len(shard_range), size=count, replace=False)
                    .astype(np.intp)
                )
            sets.append(CandidateSet(indices=rows))
        return sets

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_matches_per_row_reference(self, seed):
        rng = np.random.default_rng(seed)
        batch_size = int(rng.integers(1, 12))
        ranges = shard_ranges(60, int(rng.integers(1, 5)))
        sets = self.random_shard_sets(rng, batch_size, ranges, max_per_row=7)
        fast = merge_candidates(sets, ranges, batch_size)
        reference = merge_candidates_per_row(sets, ranges, batch_size)
        assert fast.batch_size == reference.batch_size
        for fast_row, ref_row in zip(fast, reference):
            assert fast_row.dtype == ref_row.dtype
            assert np.array_equal(fast_row, ref_row)

    def test_all_rows_empty(self):
        ranges = shard_ranges(10, 2)
        sets = [
            CandidateSet(indices=[np.array([], dtype=np.intp)] * 3)
            for _ in ranges
        ]
        merged = merge_candidates(sets, ranges, 3)
        reference = merge_candidates_per_row(sets, ranges, 3)
        assert merged.batch_size == 3
        for merged_row, ref_row in zip(merged, reference):
            assert merged_row.size == 0
            assert np.array_equal(merged_row, ref_row)

    def test_preserves_shard_order_within_row(self):
        """Within a row, shard 0's candidates come before shard 1's —
        the order the sequential backend produces."""
        ranges = shard_ranges(8, 2)
        sets = [
            CandidateSet(indices=[np.array([3, 1], dtype=np.intp)]),
            CandidateSet(indices=[np.array([2, 0], dtype=np.intp)]),
        ]
        merged = merge_candidates(sets, ranges, 1)
        assert np.array_equal(merged.indices[0], [3, 1, 6, 4])


class TestShardedClassifier:
    @pytest.fixture(scope="class")
    def sharded(self):
        from repro.core import ScreeningConfig
        from repro.data import make_task

        task = make_task(num_categories=1200, hidden_dim=64, rng=4)
        model = ShardedClassifier(
            task.classifier, num_shards=4,
            config=ScreeningConfig(projection_dim=16),
        )
        model.train(task.sample_features(512), candidates_per_shard=16, rng=5)
        return task, model

    def test_untrained_forward_rejected(self, small_task):
        model = ShardedClassifier(small_task.classifier, num_shards=2)
        with pytest.raises(RuntimeError, match="train"):
            model.forward(np.zeros(64))

    def test_output_shape_global(self, sharded):
        task, model = sharded
        out = model(task.sample_features(3))
        assert out.logits.shape == (3, 1200)

    def test_candidates_in_global_order(self, sharded):
        task, model = sharded
        out = model(task.sample_features(2))
        for indices in out.candidates:
            assert indices.min() >= 0
            assert indices.max() < 1200
            # 16 candidates from each of 4 shards.
            assert indices.size == 64

    def test_candidate_entries_exact(self, sharded):
        task, model = sharded
        features = task.sample_features(2)
        out = model(features)
        exact = task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_predictions_match_exact(self, sharded):
        task, model = sharded
        features = task.sample_features(24)
        agreement = np.mean(
            model.predict(features) == task.classifier.predict(features)
        )
        assert agreement >= 0.9

    def test_top_k_reduce(self, sharded):
        task, model = sharded
        features = task.sample_features(4)
        indices, scores = model.top_k(features, k=5)
        assert indices.shape == (4, 5)
        # Scores sorted descending; indices valid and match scores.
        assert np.all(np.diff(scores, axis=1) <= 1e-12)
        out = model(features)
        rows = np.arange(4)[:, None]
        assert np.allclose(out.logits[rows, indices], scores)


class TestClusterModel:
    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("S10M")

    def test_node_time_shrinks_with_nodes(self, workload):
        cluster = ClusterModel()
        one = cluster.simulate(workload, nodes=1)
        eight = cluster.simulate(workload, nodes=8)
        assert eight.node_seconds < one.node_seconds / 4

    def test_reduce_grows_with_nodes(self, workload):
        cluster = ClusterModel()
        results = cluster.sweep(workload, (1, 4, 16))
        reduce_times = [r.reduce_seconds for r in results]
        assert reduce_times == sorted(reduce_times)

    def test_scaling_has_diminishing_returns(self, workload):
        """The reduce term eventually limits scale-out."""
        cluster = ClusterModel(
            network=NetworkModel(latency_s=1e-3)  # slow fabric
        )
        results = cluster.sweep(workload, (1, 256))
        assert results[1].reduce_fraction > results[0].reduce_fraction

    def test_total_is_sum(self, workload):
        result = ClusterModel().simulate(workload, nodes=4)
        assert result.seconds == pytest.approx(
            result.node_seconds + result.reduce_seconds
        )

    def test_validation(self, workload):
        with pytest.raises(ValueError):
            ClusterModel().simulate(workload, nodes=0)
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)
