import pytest

from repro.utils.charts import bar_chart, scatter, sparkline


class TestSparkline:
    def test_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line, key=lambda c: "▁▂▃▄▅▆▇█".find(c))

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])


class TestBarChart:
    def test_peak_fills_width(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert "█" * 10 in lines[1]
        assert "█" * 5 in lines[0]

    def test_labels_aligned(self):
        chart = bar_chart(["x", "long-label"], [1, 1], width=5)
        positions = [line.index("|") for line in chart.splitlines()]
        assert len(set(positions)) == 1

    def test_unit_suffix(self):
        chart = bar_chart(["a"], [3.5], unit="x")
        assert "3.5x" in chart

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])

    def test_zero_peak_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [0.0])


class TestScatter:
    def test_markers_present(self):
        chart = scatter([(1, 1), (2, 2), (3, 1.5)], markers=["A", "B", "C"])
        assert "A" in chart
        assert "B" in chart
        assert "C" in chart

    def test_extremes_at_corners(self):
        chart = scatter([(0, 0), (10, 10)], width=20, height=6)
        lines = chart.splitlines()
        assert "*" in lines[0]  # max y on top row
        assert "*" in lines[-3]  # min y on bottom data row

    def test_log_x(self):
        chart = scatter([(1, 1), (1000, 2)], log_x=True)
        assert "*" in chart

    def test_log_x_rejects_non_positive(self):
        with pytest.raises(ValueError):
            scatter([(0, 1)], log_x=True)

    def test_marker_count_mismatch(self):
        with pytest.raises(ValueError):
            scatter([(1, 1)], markers=["a", "b"])
