"""Candidate-cache identity: cached FR-FCFS == recompute-everything.

The cached scheduler must issue the *same command stream* as the
O(queue²) reference — not merely reach similar statistics — so these
tests drain identical request streams through both configurations and
compare every per-request completion cycle plus every counter.
"""

import numpy as np
import pytest

from repro.dram import DDR4_2400, DRAMSystem
from repro.dram.request import Request, RequestType
from repro.dram.scheduler import ChannelScheduler


def paired_systems(**kwargs):
    cached = DRAMSystem(DDR4_2400, use_candidate_cache=True, **kwargs)
    reference = DRAMSystem(DDR4_2400, use_candidate_cache=False, **kwargs)
    return cached, reference


def drain_fingerprint(system, requests):
    stats = system.drain()
    return (
        [r.completed_at for r in requests],
        stats.cycles,
        stats.reads,
        stats.writes,
        stats.activations,
        stats.row_hits,
        stats.refreshes,
    )


def assert_identical_drains(submit):
    """Run ``submit(system) -> requests`` through both schedulers."""
    cached, reference = paired_systems(channels=1, ranks_per_channel=2,
                                       queue_depth=16)
    fingerprints = [
        drain_fingerprint(system, submit(system))
        for system in (cached, reference)
    ]
    assert fingerprints[0] == fingerprints[1]


class TestDrainIdentity:
    def test_sequential_stream(self):
        assert_identical_drains(
            lambda system: system.stream_read(0, 64 * 512)
        )

    def test_sequential_write_stream(self):
        assert_identical_drains(
            lambda system: system.stream_write(0, 64 * 512)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_gather(self, seed):
        rng = np.random.default_rng(seed)
        addrs = (rng.integers(0, 1 << 26, 300) // 64 * 64).tolist()
        assert_identical_drains(lambda system: system.gather_read(addrs))

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_read_write_with_arrivals(self, seed):
        rng = np.random.default_rng(100 + seed)
        addrs = (rng.integers(0, 1 << 24, 200) // 64 * 64).tolist()
        kinds = rng.integers(0, 2, len(addrs))

        def submit(system):
            return [
                system.submit(
                    RequestType.WRITE if kind else RequestType.READ,
                    addr,
                    arrival=i,
                )
                for i, (addr, kind) in enumerate(zip(addrs, kinds))
            ]

        assert_identical_drains(submit)

    def test_bank_conflict_heavy(self):
        """Same bank, alternating rows — maximal PRE/ACT churn."""
        rng = np.random.default_rng(7)
        # Small address span keeps requests in few banks, forcing row
        # conflicts and the PRE->ACT->COL state-machine transitions the
        # invalidation logic must track.
        addrs = (rng.integers(0, 1 << 16, 300) // 64 * 64).tolist()
        assert_identical_drains(lambda system: system.gather_read(addrs))

    def test_long_drain_crosses_refreshes(self):
        """Enough traffic that tREFI elapses and refresh invalidation runs."""
        cached, reference = paired_systems(channels=1, ranks_per_channel=2,
                                           queue_depth=8)
        rng = np.random.default_rng(11)
        addrs = (rng.integers(0, 1 << 26, 4000) // 64 * 64).tolist()
        results = []
        for system in (cached, reference):
            requests = system.gather_read(addrs)
            results.append(drain_fingerprint(system, requests))
        assert results[0][-1] > 0  # refreshes actually occurred
        assert results[0] == results[1]

    def test_incremental_stepping_matches(self):
        """Step-by-step interleaving of enqueue and issue, not one drain."""
        schedulers = [
            ChannelScheduler(DDR4_2400, ranks=2, queue_depth=8,
                             use_candidate_cache=flag)
            for flag in (True, False)
        ]
        host = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2)
        rng = np.random.default_rng(3)
        addrs = (rng.integers(0, 1 << 22, 120) // 64 * 64).tolist()
        logs = []
        for scheduler in schedulers:
            log = []
            pending = list(addrs)
            while pending or scheduler.pending:
                # Trickle two requests in between issued commands.
                for _ in range(2):
                    if pending:
                        decoded = host.mapping.decode(pending.pop(0))
                        scheduler.enqueue(
                            Request(type=RequestType.READ, address=decoded)
                        )
                scheduler._refill()
                finished = scheduler.step()
                log.append(
                    (scheduler.cycle, finished.completed_at if finished else None)
                )
            logs.append(log)
        # request_ids differ between the two runs, but cycles must not.
        assert logs[0] == logs[1]


class TestCacheHygiene:
    def test_cache_empties_after_drain(self):
        system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2)
        system.stream_read(0, 64 * 64)
        system.drain()
        for channel in system.channels:
            for members in channel._bank_members.values():
                assert not members
            for members in channel._rank_members.values():
                assert not members
            # Entries may only remain for requests still in the queue.
            assert not channel._cache

    def test_cache_flag_defaults_on(self):
        assert ChannelScheduler(DDR4_2400, ranks=1).use_candidate_cache
