import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.functional import (
    gelu,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
    taylor_exp,
    taylor_softmax,
)

logit_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(2, 16)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestSoftmax:
    def test_sums_to_one(self):
        out = softmax(np.array([[1.0, 2.0, 3.0]]))
        assert out.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([1.0, 5.0, -2.0])
        assert np.allclose(softmax(logits), softmax(logits + 100))

    def test_large_values_stable(self):
        out = softmax(np.array([1e4, 1e4 - 1]))
        assert np.all(np.isfinite(out))

    def test_axis(self):
        data = np.random.default_rng(0).standard_normal((3, 5))
        assert np.allclose(softmax(data, axis=0).sum(axis=0), 1.0)

    @given(logit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_always_distribution(self, logits):
        out = softmax(logits)
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @given(logit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_consistent(self, logits):
        assert np.allclose(np.exp(log_softmax(logits)), softmax(logits))


class TestSigmoid:
    def test_symmetry(self):
        x = np.linspace(-10, 10, 21)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)

    def test_extreme_values_finite(self):
        out = sigmoid(np.array([-1e4, 1e4]))
        assert np.all(np.isfinite(out))
        assert out[0] == pytest.approx(0.0, abs=1e-12)
        assert out[1] == pytest.approx(1.0, abs=1e-12)

    def test_at_zero(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)


class TestTaylorExp:
    def test_matches_exp_near_zero(self):
        x = np.linspace(-1, 0, 50)
        assert np.allclose(taylor_exp(x, order=4), np.exp(x), atol=1e-2)

    def test_higher_order_more_accurate(self):
        x = np.linspace(-3, 0, 50)
        err4 = np.max(np.abs(taylor_exp(x, 4) - np.exp(x)))
        err8 = np.max(np.abs(taylor_exp(x, 8) - np.exp(x)))
        assert err8 < err4

    def test_never_negative(self):
        x = np.linspace(-20, 0, 200)
        assert np.all(taylor_exp(x, order=4) >= 0)

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            taylor_exp(np.array([0.0]), order=0)

    def test_exact_at_zero(self):
        assert taylor_exp(np.array([0.0]))[0] == 1.0


class TestTaylorSoftmax:
    def test_is_distribution(self):
        out = taylor_softmax(np.array([[0.5, 1.0, -3.0]]))
        assert np.all(out >= 0)
        assert out.sum() == pytest.approx(1.0)

    def test_close_to_exact_softmax_for_peaked_logits(self):
        logits = np.array([5.0, 1.0, 0.0])
        exact = softmax(logits)
        approx = taylor_softmax(logits, order=4)
        assert np.argmax(exact) == np.argmax(approx)
        assert abs(exact[0] - approx[0]) < 0.1

    @given(logit_arrays)
    @settings(max_examples=40, deadline=None)
    def test_argmax_preserved_with_margin(self, logits):
        # The SFU approximation must never flip a *decisive* top-1
        # choice (near-exact ties may legitimately resolve either way).
        sorted_logits = np.sort(logits, axis=-1)
        margin = sorted_logits[:, -1] - sorted_logits[:, -2]
        assume(np.all(margin > 1e-3))
        exact = np.argmax(logits, axis=-1)
        approx = np.argmax(taylor_softmax(logits, order=4), axis=-1)
        assert np.array_equal(exact, approx)


def test_relu():
    assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])


def test_tanh_range():
    out = tanh(np.array([-100.0, 0.0, 100.0]))
    assert out[0] == pytest.approx(-1.0)
    assert out[2] == pytest.approx(1.0)


def test_gelu_limits():
    out = gelu(np.array([-10.0, 0.0, 10.0]))
    assert out[0] == pytest.approx(0.0, abs=1e-6)
    assert out[1] == 0.0
    assert out[2] == pytest.approx(10.0, rel=1e-6)
