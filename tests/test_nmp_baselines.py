import pytest

from repro.data.registry import get_workload
from repro.enmc.simulator import ENMCSimulator
from repro.nmp import (
    CHAMELEON_MODEL,
    NDA_MODEL,
    NMPBaselineModel,
    TENSORDIMM_LARGE_MODEL,
    TENSORDIMM_MODEL,
)

ALL_BASELINES = [NDA_MODEL, CHAMELEON_MODEL, TENSORDIMM_MODEL]


@pytest.fixture(scope="module")
def workload():
    return get_workload("Transformer-W268K")


class TestBaselineConfigs:
    def test_names(self):
        assert {m.name for m in ALL_BASELINES} == {
            "NDA", "Chameleon", "TensorDIMM",
        }

    def test_all_homogeneous_fp32(self, workload):
        for model in ALL_BASELINES:
            result = model.simulate(workload, candidates_per_row=100)
            assert result.int_macs_per_rank == 0
            assert result.fp_macs_per_rank > 0

    def test_tensordimm_large_bigger(self):
        assert TENSORDIMM_LARGE_MODEL.fp32_lanes == 4 * TENSORDIMM_MODEL.fp32_lanes
        assert TENSORDIMM_LARGE_MODEL.buffer_bytes > TENSORDIMM_MODEL.buffer_bytes

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            NMPBaselineModel(name="x", fp32_lanes=0, frequency_hz=1e9,
                             buffer_bytes=1024)


class TestScreenedSimulation:
    def test_screening_compute_bound(self, workload):
        """Homogeneous FP32 units cannot keep up with the INT4 stream —
        the paper's core argument for heterogeneity."""
        for model in ALL_BASELINES:
            result = model.simulate(workload, candidates_per_row=1000)
            assert result.screen.bound == "compute", model.name

    def test_enmc_faster_than_all(self, workload):
        m = workload.default_candidates
        enmc = ENMCSimulator().simulate(workload, candidates_per_row=m).seconds
        for model in ALL_BASELINES:
            assert model.seconds(workload, candidates_per_row=m) > enmc

    def test_paper_ordering(self, workload):
        """Fig. 13: TensorDIMM > NDA > Chameleon in speedup order."""
        m = workload.default_candidates
        times = {
            model.name: model.seconds(workload, candidates_per_row=m)
            for model in ALL_BASELINES
        }
        assert times["TensorDIMM"] < times["NDA"] < times["Chameleon"]

    def test_no_pipeline_overlap(self, workload):
        result = NDA_MODEL.simulate(workload, candidates_per_row=100)
        assert result.pipeline_tiles == 1
        assert result.seconds == pytest.approx(
            result.serialized_seconds, rel=0.01
        )

    def test_spill_traffic_present(self, workload):
        """Tiny staging buffers force partial-sum spills beyond the
        screening weight bytes themselves."""
        result = TENSORDIMM_MODEL.simulate(workload, candidates_per_row=100)
        k = workload.hidden_dim // 4
        shards = TENSORDIMM_MODEL.total_ranks
        raw_bytes = -(-workload.num_categories // shards) * k * 4 / 8
        assert result.int_bytes_per_rank > raw_bytes

    def test_larger_buffers_less_spill(self, workload):
        small = TENSORDIMM_MODEL.simulate(workload, candidates_per_row=100)
        large = TENSORDIMM_LARGE_MODEL.simulate(workload, candidates_per_row=100)
        assert large.int_bytes_per_rank < small.int_bytes_per_rank


class TestFullClassification:
    def test_full_heavier_than_screened(self, workload):
        screened = TENSORDIMM_MODEL.simulate(workload, candidates_per_row=100)
        full = TENSORDIMM_MODEL.simulate_full(workload)
        assert full.fp_bytes_per_rank > 10 * (
            screened.int_bytes_per_rank + screened.fp_bytes_per_rank
        )

    def test_large_faster_on_full(self, workload):
        slow = TENSORDIMM_MODEL.simulate_full(workload).serialized_seconds
        fast = TENSORDIMM_LARGE_MODEL.simulate_full(workload).serialized_seconds
        assert fast <= slow

    def test_batch_validation(self, workload):
        with pytest.raises(ValueError):
            TENSORDIMM_MODEL.simulate_full(workload, batch_size=0)
