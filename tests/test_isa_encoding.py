import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import (
    Barrier,
    Clear,
    Compute,
    EncodedCommand,
    Filter,
    Init,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
    decode,
    encode,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId

INT_BUFFERS = [BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4, BufferId.PSUM_INT4]
FP_BUFFERS = [BufferId.FEATURE_FP32, BufferId.WEIGHT_FP32, BufferId.PSUM_FP32]


def all_instructions():
    return [
        Init(RegisterId.VOCAB_SIZE, 33278),
        Query(RegisterId.STATUS),
        Load(BufferId.WEIGHT_INT4, 0x1234),
        Store(BufferId.PSUM_FP32, 0xFF00),
        Move(BufferId.OUTPUT, BufferId.PSUM_INT4),
        Compute(Opcode.MUL_ADD_INT4, BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4),
        Compute(Opcode.MUL_ADD_FP32, BufferId.FEATURE_FP32, BufferId.WEIGHT_FP32),
        Compute(Opcode.ADD_INT4, BufferId.PSUM_INT4, BufferId.WEIGHT_INT4),
        Compute(Opcode.MUL_FP32, BufferId.PSUM_FP32, BufferId.WEIGHT_FP32),
        Filter(BufferId.PSUM_INT4),
        SpecialFunction(Opcode.SOFTMAX),
        SpecialFunction(Opcode.SIGMOID),
        Barrier(),
        Nop(),
        Return(),
        Clear(),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("instruction", all_instructions(),
                             ids=lambda i: type(i).__name__ + getattr(i, "opcode", Opcode.NOP).name)
    def test_encode_decode_identity(self, instruction):
        assert decode(encode(instruction)) == instruction

    @given(
        register=st.sampled_from(list(RegisterId)),
        value=st.integers(0, (1 << 64) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_init_roundtrip_any_value(self, register, value):
        instruction = Init(register, value)
        assert decode(encode(instruction)) == instruction

    @given(
        buffer=st.sampled_from(list(BufferId)),
        address=st.integers(0, (1 << 64) - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_load_roundtrip_any_address(self, buffer, address):
        instruction = Load(buffer, address)
        assert decode(encode(instruction)) == instruction


class TestWireFormat:
    def test_command_fits_13_bits(self):
        for instruction in all_instructions():
            assert 0 < encode(instruction).command < (1 << 13)

    def test_never_encodes_to_normal_precharge(self):
        """All-zero row bits means a normal PRECHARGE; instructions
        must be distinguishable (non-zero)."""
        for instruction in all_instructions():
            assert encode(instruction).command != 0

    def test_mul_add_fp32_is_opcode_2(self):
        # Fig. 8(a) pins MUL_ADD_FP32 to opcode 2.
        encoded = encode(
            Compute(Opcode.MUL_ADD_FP32, BufferId.FEATURE_FP32, BufferId.WEIGHT_FP32)
        )
        assert encoded.command & 0b11111 == 2

    def test_query_init_share_opcode_9(self):
        # Fig. 8(b/c): QUERY and INIT share opcode 9 with an R/W bit.
        q = encode(Query(RegisterId.STATUS))
        i = encode(Init(RegisterId.STATUS, 0))
        assert q.command & 0b11111 == 9
        assert i.command & 0b11111 == 9
        assert (q.command >> 5) & 1 == 0  # read
        assert (i.command >> 5) & 1 == 1  # write

    def test_data_carried_only_when_needed(self):
        assert encode(Load(BufferId.WEIGHT_INT4, 5)).data == 5
        assert encode(Barrier()).data is None
        assert encode(Query(RegisterId.STATUS)).data is None

    def test_row_address_bits_string(self):
        encoded = encode(Nop())
        assert len(encoded.row_address_bits) == 13
        assert set(encoded.row_address_bits) <= {"0", "1"}

    def test_decode_load_without_data_raises(self):
        encoded = encode(Load(BufferId.WEIGHT_INT4, 5))
        with pytest.raises(ValueError, match="LDR"):
            decode(EncodedCommand(command=encoded.command, data=None))

    def test_invalid_command_word_rejected(self):
        with pytest.raises(ValueError):
            EncodedCommand(command=0)
        with pytest.raises(ValueError):
            EncodedCommand(command=1 << 13)


class TestInstructionValidation:
    def test_compute_rejects_precision_mismatch(self):
        with pytest.raises(ValueError, match="precision"):
            Compute(Opcode.MUL_ADD_INT4, BufferId.FEATURE_FP32, BufferId.WEIGHT_INT4)

    def test_compute_rejects_index_buffer(self):
        with pytest.raises(ValueError):
            Compute(Opcode.ADD_FP32, BufferId.INDEX, BufferId.PSUM_FP32)

    def test_compute_rejects_non_compute_opcode(self):
        with pytest.raises(ValueError):
            Compute(Opcode.LDR, BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4)

    def test_filter_requires_psum(self):
        with pytest.raises(ValueError):
            Filter(BufferId.OUTPUT)

    def test_special_function_opcode_checked(self):
        with pytest.raises(ValueError):
            SpecialFunction(Opcode.ADD_FP32)

    def test_init_value_range_checked(self):
        with pytest.raises(ValueError):
            Init(RegisterId.STATUS, 1 << 64)
        with pytest.raises(ValueError):
            Init(RegisterId.STATUS, -1)

    def test_load_address_range_checked(self):
        with pytest.raises(ValueError):
            Load(BufferId.WEIGHT_INT4, -5)
