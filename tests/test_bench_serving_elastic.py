"""CI smoke for the elastic-serving benchmark (``--elastic --smoke``).

The benchmark is the acceptance artifact for elastic replica scaling:
it must merge an ``elastic`` block into the serving report whose
headline records at least one scale-up and one drift re-plan, with the
per-shard ``answered == requests`` reconciliation intact on both the
static and elastic fleets.  A refactor that silently stops the
autoscaler from ever firing must fail here, not in a nightly bench run.
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

pytestmark = pytest.mark.timeout(600)

REPO = pathlib.Path(__file__).parent.parent
BENCH = REPO / "benchmarks" / "bench_serving.py"


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    output = tmp_path_factory.mktemp("bench") / "BENCH_serving.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, str(BENCH), "--elastic", "--smoke", str(output)],
        capture_output=True,
        text=True,
        timeout=540,
        env=env,
        cwd=str(REPO),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    with open(output) as handle:
        return json.load(handle)


def config_block(report, name):
    blocks = {block["name"]: block for block in report["elastic"]["configs"]}
    return blocks[name]


class TestElasticBenchSmoke:
    def test_schema(self, report):
        block = report["elastic"]
        assert block["config"]["smoke"] is True
        assert {b["name"] for b in block["configs"]} == {"static", "elastic"}
        for name in ("static", "elastic"):
            config = config_block(report, name)
            assert config["closed_loop"]["served"] > 0
            assert config["closed_loop"]["errors"] == 0
            assert len(config["replica_counts_initial"]) == len(
                config["replica_counts_final"]
            )
            assert set(config["engine"]) >= {
                "requests",
                "scale_ups",
                "scale_downs",
                "replans",
                "answered_reconciles",
            }
            assert config["mix"]["shifts_applied"] >= 1  # the head moved
        headline = block["headline"]
        assert set(headline) >= {
            "static_p99_ms",
            "elastic_p99_ms",
            "p99_no_worse",
            "scale_ups",
            "scale_downs",
            "replans",
            "answered_reconciles",
            "core_bound",
        }

    def test_autoscaler_actually_fired(self, report):
        headline = report["elastic"]["headline"]
        assert headline["scale_ups"] >= 1
        assert headline["replans"] >= 1
        elastic = config_block(report, "elastic")
        assert elastic["frontdoor"]["autoscale_ticks"] >= 1
        assert elastic["frontdoor"]["autoscale_errors"] == 0

    def test_accounting_reconciles_on_both_fleets(self, report):
        assert report["elastic"]["headline"]["answered_reconciles"] is True

    def test_static_fleet_never_scales(self, report):
        static = config_block(report, "static")
        assert static["engine"]["scale_ups"] == 0
        assert static["engine"]["replans"] == 0
        assert (
            static["replica_counts_initial"] == static["replica_counts_final"]
        )

    def test_elastic_fleet_respects_budget(self, report):
        block = report["elastic"]
        budget = block["config"]["worker_budget"]
        elastic = config_block(report, "elastic")
        assert sum(elastic["replica_counts_final"]) <= budget
