"""Shared fixtures: a small structured task with a trained screener.

Session-scoped so the distillation cost is paid once; tests must not
mutate fixture state (make copies before editing arrays).
"""

import numpy as np
import pytest

from repro.core import ScreeningConfig, train_screener
from repro.data import make_task


@pytest.fixture(scope="session")
def small_task():
    """A 2000-category, 64-dim structured task."""
    return make_task(num_categories=2000, hidden_dim=64, rng=1)


@pytest.fixture(scope="session")
def small_screener(small_task):
    """A screener distilled against the small task (k=16, INT4)."""
    features = small_task.sample_features(512)
    return train_screener(
        small_task.classifier,
        features,
        config=ScreeningConfig(projection_dim=16),
        solver="lstsq",
        rng=2,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
