import numpy as np
import pytest

from repro.enmc.config import DEFAULT_CONFIG
from repro.enmc.controller import ENMCController, MemoryImage
from repro.isa import Program, assemble
from repro.isa.instruction import Filter, Init, Load, Move, Return
from repro.isa.opcodes import BufferId, Opcode, RegisterId


@pytest.fixture()
def controller():
    return ENMCController(DEFAULT_CONFIG)


def bind_tile(controller, address, array, bits=4):
    controller.memory.bind(address, np.asarray(array, dtype=np.float64), bits)


class TestMemoryImage:
    def test_bind_fetch(self):
        image = MemoryImage()
        image.bind(0x100, np.arange(4), 32)
        array, bits = image.fetch(0x100)
        assert bits == 32
        assert np.array_equal(array, np.arange(4))

    def test_double_bind_rejected(self):
        image = MemoryImage()
        image.bind(0x100, np.arange(4), 32)
        with pytest.raises(ValueError):
            image.bind(0x100, np.arange(4), 32)

    def test_missing_fetch_raises(self):
        with pytest.raises(KeyError):
            MemoryImage().fetch(0x42)

    def test_store_overwrites(self):
        image = MemoryImage()
        image.store(0x0, np.zeros(2))
        image.store(0x0, np.ones(2))
        assert np.array_equal(image.fetch(0x0)[0], np.ones(2))


class TestRegisters:
    def test_init_writes_register(self, controller):
        trace = controller.execute(Program([
            Init(RegisterId.VOCAB_SIZE, 1234), Return(),
        ]))
        assert controller.registers[RegisterId.VOCAB_SIZE] == 1234
        assert trace.count(Opcode.REG) == 1

    def test_query_records_read(self, controller):
        program = Program(assemble("INIT status, 7\nQUERY status\nRETURN"))
        trace = controller.execute(program)
        assert ("STATUS", 7) in trace.register_reads

    def test_threshold_fixed_point_roundtrip(self):
        for value in (0.0, 1.5, -3.25, 1000.0625, -0.0001):
            encoded = ENMCController.encode_threshold(value)
            controller = ENMCController(DEFAULT_CONFIG)
            controller.registers[RegisterId.THRESHOLD] = encoded
            assert controller._threshold() == pytest.approx(value, abs=1e-4)


class TestDataPath:
    def test_load_charges_traffic(self, controller):
        bind_tile(controller, 0x1000, np.ones(128), bits=4)
        trace = controller.execute(Program([
            Load(BufferId.WEIGHT_INT4, 0x1000), Return(),
        ]))
        assert trace.dram_bytes == 128 * 4 / 8
        assert trace.dram_cycles > 0

    def test_screening_tile_computes(self, controller):
        rng = np.random.default_rng(0)
        feature = rng.standard_normal(8)
        weight = rng.standard_normal((16, 8))
        bind_tile(controller, 0x100, feature)
        bind_tile(controller, 0x200, weight)
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "MOVE output, psum_int4\n"
            "RETURN"
        ))
        trace = controller.execute(program)
        assert len(trace.outputs) == 1
        assert np.allclose(trace.outputs[0], weight @ feature)
        assert trace.screener_cycles > 0

    def test_psum_accumulates_across_tiles(self, controller):
        feature = np.ones(4)
        bind_tile(controller, 0x100, feature)
        bind_tile(controller, 0x200, np.ones((8, 4)))
        bind_tile(controller, 0x300, 2 * np.ones((8, 4)))
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "LDR weight_int4, 0x300\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "MOVE output, psum_int4\n"
            "RETURN"
        ))
        trace = controller.execute(program)
        assert np.allclose(trace.outputs[0], 4.0 + 8.0)

    def test_store_spills_buffer(self, controller):
        bind_tile(controller, 0x100, np.arange(4.0), bits=32)
        program = Program(assemble(
            "LDR psum_fp32, 0x100\nSTR psum_fp32, 0x900\nRETURN"
        ))
        controller.execute(program)
        stored, _ = controller.memory.fetch(0x900)
        assert np.array_equal(stored, np.arange(4.0))

    def test_clear_resets(self, controller):
        bind_tile(controller, 0x100, np.ones(4))
        program = Program(assemble(
            "INIT vocab_size, 5\nLDR feature_int4, 0x100\nCLR\nRETURN"
        ))
        controller.execute(program)
        assert controller.registers[RegisterId.VOCAB_SIZE] == 0
        assert controller.buffers[BufferId.FEATURE_INT4].empty


class TestFilterAndGeneration:
    def test_filter_without_generator(self, controller):
        bind_tile(controller, 0x100, np.array([1.0]))
        bind_tile(controller, 0x200, np.array([[5.0], [-5.0], [2.0]]))
        controller.registers[RegisterId.THRESHOLD] = \
            ENMCController.encode_threshold(1.0)
        program = Program([
            Load(BufferId.FEATURE_INT4, 0x100),
            Load(BufferId.WEIGHT_INT4, 0x200),
            __import__("repro.isa.instruction", fromlist=["Compute"]).Compute(
                Opcode.MUL_ADD_INT4, BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4
            ),
            Filter(BufferId.PSUM_INT4),
            Return(),
        ])
        trace = controller.execute(program)
        assert trace.candidate_indices == [0, 2]
        assert controller.registers[RegisterId.CANDIDATE_COUNT] == 2

    def test_filter_advances_base_across_tiles(self, controller):
        bind_tile(controller, 0x100, np.array([1.0]))
        bind_tile(controller, 0x200, np.array([[5.0], [-5.0]]))
        bind_tile(controller, 0x300, np.array([[7.0], [-7.0]]))
        controller.registers[RegisterId.THRESHOLD] = \
            ENMCController.encode_threshold(0.0)
        program = Program(assemble(
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "FILTER psum_int4\n"
            "LDR weight_int4, 0x300\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "FILTER psum_int4\n"
            "RETURN"
        ))
        trace = controller.execute(program)
        assert trace.candidate_indices == [0, 2]

    def test_generator_produces_exact_results(self, controller):
        rng = np.random.default_rng(1)
        d = 6
        full_rows = rng.standard_normal((4, d + 1))
        feature_fp = np.append(rng.standard_normal(d), 1.0)
        bind_tile(controller, 0x50, feature_fp, bits=32)
        for i in range(4):
            bind_tile(controller, 0x4000 + i * (d + 1) * 4, full_rows[i], bits=32)
        # Screening tile that selects rows 1 and 3.
        bind_tile(controller, 0x100, np.array([1.0]))
        bind_tile(controller, 0x200, np.array([[-1.0], [2.0], [-1.0], [2.0]]))
        program = Program(assemble(
            "INIT feature_base, 0x50\n"
            "INIT weight_base, 0x4000\n"
            f"INIT hidden_dim, {d + 1}\n"
            "INIT threshold, 0x10000\n"  # 1.0 in 16.16
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "FILTER psum_int4\n"
            "RETURN"
        ))
        trace = controller.execute(program)
        assert [idx for idx, _ in trace.exact_results] == [1, 3]
        for idx, value in trace.exact_results:
            assert value == pytest.approx(float(full_rows[idx] @ feature_fp))
        assert trace.generated_instructions > 0
        assert trace.executor_cycles > 0

    def test_generator_requires_hidden_dim(self, controller):
        bind_tile(controller, 0x100, np.array([1.0]))
        bind_tile(controller, 0x200, np.array([[5.0]]))
        bind_tile(controller, 0x50, np.array([1.0, 1.0]), bits=32)
        program = Program(assemble(
            "INIT feature_base, 0x50\n"
            "INIT weight_base, 0x4000\n"
            "INIT threshold, 0\n"
            "LDR feature_int4, 0x100\n"
            "LDR weight_int4, 0x200\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "FILTER psum_int4\n"
            "RETURN"
        ))
        with pytest.raises(RuntimeError, match="HIDDEN_DIM"):
            controller.execute(program)


class TestSpecialFunctions:
    def test_softmax_on_psum(self, controller):
        bind_tile(controller, 0x100, np.array([2.0, 1.0, 0.0]), bits=32)
        program = Program(assemble(
            "LDR psum_fp32, 0x100\nSOFTMAX\nMOVE output, psum_fp32\nRETURN"
        ))
        trace = controller.execute(program)
        assert trace.outputs[0].sum() == pytest.approx(1.0)
        assert trace.sfu_cycles > 0

    def test_sigmoid_on_psum(self, controller):
        bind_tile(controller, 0x100, np.array([0.0]), bits=32)
        program = Program(assemble(
            "LDR psum_fp32, 0x100\nSIGMOID\nMOVE output, psum_fp32\nRETURN"
        ))
        trace = controller.execute(program)
        assert trace.outputs[0][0] == pytest.approx(0.5, abs=0.01)


class TestTraceAccounting:
    def test_instruction_count(self, controller):
        program = Program(assemble("NOP\nNOP\nBARRIER\nRETURN"))
        trace = controller.execute(program)
        assert trace.instructions_executed == 4
        assert trace.controller_cycles == 4

    def test_total_cycles_positive(self, controller):
        bind_tile(controller, 0x100, np.ones(4))
        program = Program(assemble("LDR feature_int4, 0x100\nRETURN"))
        trace = controller.execute(program)
        assert trace.total_cycles > 2
