import numpy as np
import pytest

from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import MemoryImage
from repro.enmc.dimm import ENMCDimm
from repro.isa import Program, assemble


@pytest.fixture()
def dimm():
    memory = MemoryImage()
    memory.bind(0x100, np.ones(8), 4)
    memory.bind(0x200, np.ones((4, 8)), 4)
    return ENMCDimm(DEFAULT_CONFIG, memory=memory)


SCREEN_PROGRAM = (
    "LDR feature_int4, 0x100\n"
    "LDR weight_int4, 0x200\n"
    "MUL_ADD_INT4 feature_int4, weight_int4\n"
    "MOVE output, psum_int4\n"
    "RETURN"
)


class TestENMCDimm:
    def test_one_controller_per_rank(self, dimm):
        assert len(dimm.ranks) == DEFAULT_CONFIG.ranks_per_channel

    def test_execute_on_specific_rank(self, dimm):
        program = Program(assemble(SCREEN_PROGRAM))
        trace = dimm.execute(program, rank=3)
        assert np.allclose(trace.outputs[0], 8.0)

    def test_ranks_are_independent(self, dimm):
        program = Program(assemble(SCREEN_PROGRAM))
        dimm.execute(program, rank=0)
        # Rank 1's buffers untouched.
        from repro.isa.opcodes import BufferId

        assert dimm.ranks[1].buffers[BufferId.PSUM_INT4].empty
        assert not dimm.ranks[0].buffers[BufferId.PSUM_INT4].empty

    def test_rank_out_of_range(self, dimm):
        program = Program(assemble(SCREEN_PROGRAM))
        with pytest.raises(ValueError, match="rank"):
            dimm.execute(program, rank=99)

    def test_wire_execution_equals_direct(self, dimm):
        program = Program(assemble(SCREEN_PROGRAM))
        direct = dimm.execute(program, rank=0)
        wired = dimm.execute_wire(program.encoded(), rank=1)
        assert np.allclose(direct.outputs[0], wired.outputs[0])

    def test_regular_memory_capability(self, dimm):
        assert dimm.regular_memory_capable

    def test_shared_memory_image(self):
        """All ranks see the same DIMM-resident data (the weight shard
        layout is the compiler's business)."""
        memory = MemoryImage()
        memory.bind(0x0, np.arange(4.0), 32)
        dimm = ENMCDimm(ENMCConfig(ranks_per_channel=2), memory=memory)
        assert dimm.ranks[0].memory is dimm.ranks[1].memory
