"""Regression tests for the tagged worker-pipe protocol.

The bug under test (pre-fix): ``WorkerHandle.recv`` raising
``WorkerTimeout`` left the worker's late reply queued in the pipe, so
the *next* request on the same handle received the **previous**
request's answer — a silent desync that poisoned every reply after it.
The fix tags every message with a monotonically increasing request id
and discards stale replies on receipt; these tests demonstrate the
desync deterministically on the raw pipe and prove the tagged protocol
is immune to it.

Also covered: the stop/recv interaction contract — any operation on a
handle closed by ``stop()`` (including a ``recv`` poll loop already in
flight on another thread) surfaces as ``WorkerDied``, never ``OSError``.
"""

import os
import signal
import threading
import time

import pytest

from repro.utils.workers import (
    HANDSHAKE_ID,
    ProtocolError,
    WorkerDied,
    WorkerHandle,
    WorkerTimeout,
    default_context,
)

pytestmark = pytest.mark.timeout(120)

#: Long enough that the host's short deadline always expires first,
#: short enough that the late reply lands inside the next wait.
LATE = 0.5
#: Host-side deadline that the LATE reply always overshoots.
DEADLINE = 0.1


def _echo_main(connection):
    """Echo worker: replies with the request's tag, after optional sleep."""
    while True:
        try:
            request_id, op, payload = connection.recv()
        except (EOFError, OSError):
            break
        if op == "shutdown":
            break
        if payload and payload.get("sleep"):
            time.sleep(payload["sleep"])
        connection.send((request_id, "ok", payload.get("tag")))
    connection.close()


def _sink_main(connection):
    """Worker that accepts requests but never answers (wedged forever)."""
    while True:
        try:
            connection.recv()
        except (EOFError, OSError):
            break


def _future_reply_then_exit_main(connection):
    """Worker that answers a request the host never issued, then dies.

    Models a host/worker code mismatch (desynced id counters) racing a
    worker death — the reply from the future must surface as
    ``ProtocolError`` even when it is only seen by the post-mortem
    drain.
    """
    connection.send((HANDSHAKE_ID, "ready", None))
    connection.send((99, "ok", "from-the-future"))
    connection.close()


def _future_reply_main(connection):
    """Worker that answers a request the host never issued, but lives on
    (the pure host/worker mismatch, no death in the picture)."""
    connection.send((HANDSHAKE_ID, "ready", None))
    connection.send((99, "ok", "from-the-future"))
    while True:
        try:
            connection.recv()
        except (EOFError, OSError):
            break


def _immortal_main(connection):
    """Worker that ignores SIGTERM and never exits on its own."""
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    connection.send((HANDSHAKE_ID, "ready", None))
    while True:
        time.sleep(0.05)


def _flood_main(connection):
    """Worker that floods stale replies (id 0 predates every request).

    Models a desynced/misbehaving worker streaming late answers faster
    than the host's poll interval — the starvation scenario: each stale
    frame makes ``poll()`` return immediately, so a receive loop that
    short-circuits back to the poll after draining a stale reply never
    reaches its deadline (or liveness) check.
    """
    while True:
        try:
            connection.send((0, "ok", "stale"))
        except (BrokenPipeError, OSError):
            break


@pytest.fixture()
def echo():
    handle = WorkerHandle(default_context(), _echo_main, args=(), name="echo")
    yield handle
    handle.stop(goodbye="shutdown")


@pytest.fixture()
def sink():
    handle = WorkerHandle(default_context(), _sink_main, args=(), name="sink")
    yield handle
    handle.stop()


class TestReplyDesync:
    def test_pre_fix_desync_is_real(self, echo):
        """The raw pipe really does hold the *previous* request's answer
        after a timeout — exactly what the untagged protocol would have
        handed to the next caller."""
        rid_a = echo.post("echo", {"sleep": LATE, "tag": "A"})
        with pytest.raises(WorkerTimeout):
            echo.recv_tagged(rid_a, timeout=DEADLINE)
        rid_b = echo.post("echo", {"tag": "B"})
        # Old protocol simulation: take the next frame off the pipe,
        # id-blind.  It is A's late reply — request B's caller would
        # have been given request A's answer.
        stale_id, kind, payload = echo.connection.recv()
        assert (stale_id, kind, payload) == (rid_a, "ok", "A")
        # The tagged receive still pairs B with B.
        kind, payload = echo.recv_tagged(rid_b, timeout=5.0)
        assert (kind, payload) == ("ok", "B")

    def test_timeout_then_next_request_gets_its_own_reply(self, echo):
        """The fixed protocol end to end: after a timeout, the late
        reply is discarded by id and the next request's answer is its
        own."""
        rid_a = echo.post("echo", {"sleep": LATE, "tag": "A"})
        with pytest.raises(WorkerTimeout):
            echo.recv_tagged(rid_a, timeout=DEADLINE)
        kind, payload = echo.request("echo", {"tag": "B"}, timeout=5.0)
        assert (kind, payload) == ("ok", "B")
        # Observable proof the stale reply arrived and was dropped
        # rather than misdelivered.
        assert echo.stale_replies == 1

    def test_repeated_timeouts_stay_aligned(self, echo):
        """Several abandoned requests in a row must all be discarded."""
        for _ in range(3):
            rid = echo.post("echo", {"sleep": LATE, "tag": "late"})
            with pytest.raises(WorkerTimeout):
                echo.recv_tagged(rid, timeout=DEADLINE)
            # Space the attempts out so each late reply is queued before
            # the final request, making the discard count deterministic.
            time.sleep(LATE)
        kind, payload = echo.request("echo", {"tag": "fresh"}, timeout=5.0)
        assert payload == "fresh"
        assert echo.stale_replies == 3

    def test_request_ids_are_monotonic(self, echo):
        first = echo.post("echo", {"tag": "x"})
        second = echo.post("echo", {"tag": "y"})
        assert second == first + 1
        assert echo.recv_tagged(first, timeout=5.0) == ("ok", "x")
        assert echo.recv_tagged(second, timeout=5.0) == ("ok", "y")


class TestStaleFloodStarvation:
    """Regression: a stale reply used to ``continue`` straight back to
    the poll, skipping the liveness and deadline checks — a worker
    streaming stale replies faster than ``poll_interval`` starved the
    timeout indefinitely."""

    @pytest.fixture()
    def flood(self):
        handle = WorkerHandle(
            default_context(), _flood_main, args=(), name="flood"
        )
        yield handle
        handle.stop()

    def test_deadline_fires_through_stale_flood(self, flood):
        """WorkerTimeout must fire on schedule even when every poll
        yields another stale reply (fails by hanging on the old loop)."""
        rid = flood.post("noop")
        start = time.monotonic()
        with pytest.raises(WorkerTimeout):
            flood.recv_tagged(rid, timeout=0.5)
        elapsed = time.monotonic() - start
        # The deadline, not the flood, ended the wait — and promptly.
        assert 0.4 <= elapsed < 10.0
        # The flood really was arriving faster than the poll interval
        # the whole time (i.e. the old code would never have slept).
        assert flood.stale_replies > 3

    def test_death_detected_through_stale_backlog(self, flood):
        """A worker that dies behind a backlog of stale replies must
        surface as WorkerDied/WorkerTimeout, not hang: liveness is
        checked every iteration regardless of the poll branch."""
        rid = flood.post("noop")
        time.sleep(0.1)  # let a backlog accumulate
        flood.process.terminate()
        with pytest.raises((WorkerDied, WorkerTimeout)):
            flood.recv_tagged(rid, timeout=2.0)


class TestStopRecvInteraction:
    def test_recv_after_stop_raises_worker_died(self, echo):
        echo.stop(goodbye="shutdown")
        with pytest.raises(WorkerDied):
            echo.recv_tagged(1, timeout=1.0)

    def test_send_after_stop_raises_worker_died(self, echo):
        echo.stop(goodbye="shutdown")
        with pytest.raises(WorkerDied):
            echo.post("echo", {"tag": "late"})

    def test_stop_during_inflight_recv_raises_worker_died(self, sink):
        """A recv poll loop racing ``stop()`` on another thread must
        observe the closed-handle state as WorkerDied, never an OSError
        from the concurrently closed pipe."""
        rid = sink.post("noop")
        outcomes = []

        def waiter():
            try:
                sink.recv_tagged(rid, timeout=30.0)
                outcomes.append("replied")
            except WorkerDied:
                outcomes.append("died")
            except BaseException as error:  # noqa: BLE001 - recording for assert
                outcomes.append(repr(error))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.15)  # let the waiter enter its poll loop
        sink.stop()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert outcomes == ["died"]

    def test_stop_is_idempotent(self, echo):
        echo.stop(goodbye="shutdown")
        echo.stop(goodbye="shutdown")
        assert echo.closed
        assert not echo.alive


class _FirstPollMiss:
    """Connection proxy whose first ``poll`` misses (returns ``False``).

    Reproduces the race the dead-worker drain exists for: the reply
    lands in the pipe *after* the main-loop poll gave up but before the
    liveness check, so only the drain ever sees it.
    """

    def __init__(self, connection):
        self._connection = connection
        self._missed = False

    def poll(self, timeout=0.0):
        if not self._missed:
            self._missed = True
            return False
        return self._connection.poll(timeout)

    def __getattr__(self, name):
        return getattr(self._connection, name)


class TestDeadWorkerDrainProtocol:
    """Regression: the post-mortem drain silently swallowed replies
    with ``reply_id > expect_id`` while the live loop raised
    ``ProtocolError`` for the same condition — a host/worker code
    mismatch could be masked by a concurrent worker death."""

    def test_drain_raises_protocol_error_for_future_reply(self):
        handle = WorkerHandle(
            default_context(),
            _future_reply_then_exit_main,
            args=(),
            name="future",
        )
        try:
            assert handle.handshake(timeout=10.0) == ("ready", None)
            # The worker may already be gone, so the post's pipe write
            # can fail — but the request id was still issued, which is
            # all the receive side needs.
            try:
                rid = handle.post("noop")
            except WorkerDied:
                rid = 1
            handle.process.join(timeout=10.0)
            assert not handle.process.is_alive()
            # Force the main-loop poll to miss so only the drain sees
            # the queued future reply.
            handle.connection = _FirstPollMiss(handle.connection)
            with pytest.raises(ProtocolError):
                handle.recv_tagged(rid, timeout=5.0)
        finally:
            handle.stop()

    def test_live_loop_raises_protocol_error_for_future_reply(self):
        """The condition the drain must now mirror."""
        handle = WorkerHandle(
            default_context(), _future_reply_main, args=(), name="future-live"
        )
        try:
            assert handle.handshake(timeout=10.0) == ("ready", None)
            rid = handle.post("noop")
            with pytest.raises(ProtocolError):
                handle.recv_tagged(rid, timeout=5.0)
        finally:
            handle.stop()


class TestZeroBudgetDeadline:
    """Regression: an expired or zero ``timeout`` used to pay a full
    ``poll_interval`` before the (strict ``>``) deadline check ran, so
    deadline-propagated requests with tiny remaining budgets over-waited
    by up to ``poll_interval`` per hop."""

    @pytest.fixture()
    def slowpoll(self):
        """Echo worker behind a deliberately huge poll interval, so any
        over-wait is unmistakable against timer noise."""
        handle = WorkerHandle(
            default_context(),
            _echo_main,
            args=(),
            name="echo-slowpoll",
            poll_interval=0.5,
        )
        yield handle
        handle.stop(goodbye="shutdown")

    def test_timeout_zero_raises_immediately(self, slowpoll):
        rid = slowpoll.post("echo", {"sleep": 5.0, "tag": "never"})
        start = time.monotonic()
        with pytest.raises(WorkerTimeout):
            slowpoll.recv_tagged(rid, timeout=0)
        elapsed = time.monotonic() - start
        # Pre-fix this waited >= poll_interval (0.5 s).
        assert elapsed < 0.2

    def test_timeout_zero_sheds_even_when_reply_is_queued(self, slowpoll):
        """A spent budget is shed without serving — the reply stays
        queued for a caller that still has budget (pinned semantics the
        front door's expired-SLO shed relies on)."""
        rid = slowpoll.post("echo", {"tag": "queued"})
        time.sleep(0.3)  # let the reply land in the pipe
        with pytest.raises(WorkerTimeout):
            slowpoll.recv_tagged(rid, timeout=0)
        assert slowpoll.recv_tagged(rid, timeout=5.0) == ("ok", "queued")

    def test_small_budget_is_not_rounded_up_to_poll_interval(self, slowpoll):
        rid = slowpoll.post("echo", {"sleep": 5.0, "tag": "never"})
        start = time.monotonic()
        with pytest.raises(WorkerTimeout):
            slowpoll.recv_tagged(rid, timeout=0.1)
        elapsed = time.monotonic() - start
        # The poll wait is clamped to the remaining budget: ~0.1 s, not
        # the 0.5 s poll interval the pre-fix loop slept.
        assert 0.08 <= elapsed < 0.4

    def test_positive_timeout_still_returns_replies(self, slowpoll):
        kind, payload = slowpoll.request("echo", {"tag": "fine"}, timeout=5.0)
        assert (kind, payload) == ("ok", "fine")


class TestStopKillEscalation:
    """Regression: ``stop()`` stopped escalating at SIGTERM, so a
    worker ignoring it (or stuck uninterruptible) leaked past
    shutdown."""

    def test_sigterm_ignoring_worker_is_killed(self):
        handle = WorkerHandle(
            default_context(), _immortal_main, args=(), name="immortal"
        )
        # Wait for the handshake so SIG_IGN is definitely installed.
        assert handle.handshake(timeout=10.0) == ("ready", None)
        pid = handle.process.pid
        handle.stop(timeout=0.2)
        assert handle.closed
        # The process must actually be gone (SIGKILL escalation), not
        # merely abandoned while still running.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break
            time.sleep(0.02)
        else:
            os.kill(pid, signal.SIGKILL)  # clean up the leak, then fail
            pytest.fail("SIGTERM-ignoring worker survived stop()")
