"""Integration: beam search over a real GNMT front-end with a screened
output layer — the paper's NMT deployment shape."""

import numpy as np
import pytest

from repro.core import (
    ApproximateScreeningClassifier,
    ScreeningConfig,
    beam_search_decode,
    greedy_decode,
    train_screener,
)
from repro.data import make_task
from repro.models import GNMTModel


@pytest.fixture(scope="module")
def nmt_stack():
    hidden = 32
    task = make_task(num_categories=800, hidden_dim=hidden, rng=31)
    gnmt = GNMTModel(vocab_size=800, hidden_dim=hidden,
                     encoder_layers=1, decoder_layers=1, rng=32)
    screener = train_screener(
        task.classifier, task.sample_features(384, rng=33),
        config=ScreeningConfig.from_scale(hidden, 0.25),
        solver="lstsq", rng=34,
    )
    screened = ApproximateScreeningClassifier(
        task.classifier, screener, num_candidates=64
    )
    return task, gnmt, screened


def _make_step_fn(gnmt, memory):
    state_box = {"decoder": None}

    def step(tokens, state):
        # `state` carries the decoder LSTM state; memory is broadcast
        # to the token batch (beams) on each call.
        tokens = np.asarray(tokens).reshape(-1)
        mem = np.broadcast_to(
            memory, (tokens.shape[0],) + memory.shape[1:]
        )
        features, new_state = gnmt.decode_step(tokens, mem, state)
        return features, new_state

    return step


class TestGNMTDecoding:
    def test_greedy_exact_vs_screened(self, nmt_stack):
        task, gnmt, screened = nmt_stack
        memory = gnmt.encode(np.array([[3, 5, 7, 2]]))
        step = _make_step_fn(gnmt, memory)
        exact = greedy_decode(step, task.classifier, np.array([1]), steps=6)
        approx = greedy_decode(step, screened, np.array([1]), steps=6)
        # A 64-candidate budget on a structured task: decodes agree.
        assert np.mean(exact.tokens == approx.tokens) >= 0.8

    def test_beam_search_runs_with_screened_layer(self, nmt_stack):
        task, gnmt, screened = nmt_stack
        memory = gnmt.encode(np.array([[4, 9, 6]]))
        step = _make_step_fn(gnmt, memory)
        result = beam_search_decode(
            step, screened, start_token=1, steps=5, beam_width=4
        )
        assert result.tokens.shape == (1, 4, 5)
        assert np.all(result.tokens >= 0)
        assert np.all(result.tokens < 800)

    def test_beam_top_hypothesis_matches_exact_layer(self, nmt_stack):
        task, gnmt, screened = nmt_stack
        memory = gnmt.encode(np.array([[2, 8, 5, 3]]))
        step = _make_step_fn(gnmt, memory)
        exact = beam_search_decode(
            step, task.classifier, start_token=1, steps=4, beam_width=3
        )
        approx = beam_search_decode(
            step, screened, start_token=1, steps=4, beam_width=3
        )
        agree = np.mean(exact.tokens[0, 0] == approx.tokens[0, 0])
        assert agree >= 0.75

    def test_decoder_state_reordering_through_beams(self, nmt_stack):
        """Beam search reorders the GNMT LSTM state tuples across beam
        re-rankings without shape corruption."""
        task, gnmt, screened = nmt_stack
        memory = gnmt.encode(np.array([[7, 7, 1]]))
        step = _make_step_fn(gnmt, memory)
        result = beam_search_decode(
            step, screened, start_token=2, steps=6, beam_width=5
        )
        # All beams decoded full length, scores finite & sorted.
        assert np.all(np.isfinite(result.scores))
        assert np.all(np.diff(result.scores[0]) <= 1e-12)
