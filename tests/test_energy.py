import pytest

from repro.data.registry import get_workload
from repro.energy import (
    DEFAULT_ENERGY_PARAMS,
    EnergyBreakdown,
    EnergyModel,
    enmc_totals,
    render_table4,
    render_table5,
)
from repro.energy.area import (
    ENMC_AREA_POWER_BREAKDOWN,
    NMP_BUDGET_TABLE,
    component_fractions,
)
from repro.enmc.simulator import ENMCSimulator
from repro.nmp import TENSORDIMM_MODEL


class TestAreaTables:
    def test_table5_totals_match_paper(self):
        totals = enmc_totals()
        assert totals.area_mm2 == pytest.approx(0.442, abs=1e-3)
        assert totals.power_mw == pytest.approx(285.4, abs=0.1)

    def test_table4_budget_matched(self):
        """All four designs within ~15% area of each other."""
        areas = [ap.area_mm2 for _, ap in NMP_BUDGET_TABLE.values()]
        assert max(areas) / min(areas) < 1.2

    def test_table4_enmc_entry(self):
        config, ap = NMP_BUDGET_TABLE["ENMC"]
        assert "INT4" in config
        assert ap.power_mw == 285.4

    def test_component_fractions_sum_to_one(self):
        fractions = component_fractions()
        assert sum(f[0] for f in fractions.values()) == pytest.approx(1.0)
        assert sum(f[1] for f in fractions.values()) == pytest.approx(1.0)

    def test_int4_array_cheap(self):
        """128 INT4 MACs cost less area than 16 FP32 MACs — the
        asymmetry that makes heterogeneity affordable."""
        assert (
            ENMC_AREA_POWER_BREAKDOWN["INT4 MAC"].area_mm2
            < ENMC_AREA_POWER_BREAKDOWN["FP32 MAC"].area_mm2
        )

    def test_render_tables(self):
        assert "0.442" in render_table5()
        assert "TensorDIMM" in render_table4()


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0)
        assert e.total == 6.0

    def test_normalization(self):
        e = EnergyBreakdown(1.0, 2.0, 3.0)
        n = e.normalized_to(EnergyBreakdown(2.0, 2.0, 2.0))
        assert n.total == pytest.approx(1.0)

    def test_normalize_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1, 1, 1).normalized_to(EnergyBreakdown(0, 0, 0))

    def test_add(self):
        total = EnergyBreakdown(1, 1, 1) + EnergyBreakdown(2, 2, 2)
        assert total.total == 9


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("Transformer-W268K")

    def test_positive_pools(self, workload):
        result = ENMCSimulator().simulate(workload, candidates_per_row=1000)
        energy = EnergyModel().energy_of(result)
        assert energy.dram_static > 0
        assert energy.dram_access > 0
        assert energy.compute_and_control > 0

    def test_static_scales_with_time(self, workload):
        result = ENMCSimulator().simulate(workload, candidates_per_row=1000)
        model = EnergyModel()
        fast = model.energy_of(result, seconds=1e-5)
        slow = model.energy_of(result, seconds=1e-3)
        assert slow.dram_static == pytest.approx(100 * fast.dram_static)
        assert slow.dram_access == fast.dram_access  # traffic unchanged

    def test_enmc_beats_tensordimm_full(self, workload):
        """The Fig. 14 headline: ENMC ~5-10× less energy than
        TensorDIMM running full classification."""
        m = workload.default_candidates
        enmc_result = ENMCSimulator().simulate(workload, candidates_per_row=m)
        enmc_energy = EnergyModel().energy_of(enmc_result)
        td_result = TENSORDIMM_MODEL.simulate_full(workload)
        td_energy = EnergyModel(logic_watts=0.3035).energy_of(
            td_result, seconds=td_result.serialized_seconds
        )
        ratio = td_energy.total / enmc_energy.total
        assert 3.0 < ratio < 20.0

    def test_int4_compute_energy_small(self, workload):
        """Screening's INT4 MACs contribute little energy despite doing
        the bulk of operations."""
        result = ENMCSimulator().simulate(workload, candidates_per_row=1000)
        params = DEFAULT_ENERGY_PARAMS
        int_energy = result.int_macs_per_rank * params.int4_mac_pj
        fp_energy = result.fp_macs_per_rank * params.fp32_mac_pj
        assert result.int_macs_per_rank > result.fp_macs_per_rank
        assert int_energy < 2 * fp_energy

    def test_rejects_negative_seconds(self, workload):
        result = ENMCSimulator().simulate(workload, candidates_per_row=10)
        with pytest.raises(ValueError):
            EnergyModel().energy_of(result, seconds=-1.0)
