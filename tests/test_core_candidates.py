import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.candidates import CandidateSelector, CandidateSet, merge_candidates

score_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 4), st.integers(4, 64)),
    elements=st.floats(-100, 100, allow_nan=False),
)


class TestCandidateSet:
    def test_counts_and_total(self):
        cs = CandidateSet(indices=[np.array([1, 2]), np.array([5])])
        assert cs.counts.tolist() == [2, 1]
        assert cs.total == 3
        assert cs.batch_size == 2

    def test_union_sorted_unique(self):
        cs = CandidateSet(indices=[np.array([3, 1]), np.array([1, 7])])
        assert cs.union().tolist() == [1, 3, 7]

    def test_union_empty(self):
        assert CandidateSet(indices=[]).union().size == 0

    def test_iter(self):
        arrays_ = [np.array([0]), np.array([1])]
        cs = CandidateSet(indices=arrays_)
        assert [a.tolist() for a in cs] == [[0], [1]]

    def test_flat_scatter_layout(self):
        cs = CandidateSet(indices=[np.array([3, 7]), np.array([]), np.array([2])])
        rows, cols = cs.flat()
        assert rows.tolist() == [0, 0, 2]
        assert cols.tolist() == [3, 7, 2]

    def test_flat_empty(self):
        rows, cols = CandidateSet(indices=[]).flat()
        assert rows.size == 0 and cols.size == 0

    def test_derived_views_cached(self):
        cs = CandidateSet(indices=[np.array([1, 2])])
        assert cs.union() is cs.union()
        assert cs.flat() is cs.flat()
        assert cs.counts is cs.counts


class TestTopMSelector:
    def test_selects_m_per_row(self):
        selector = CandidateSelector(mode="top_m", num_candidates=3)
        scores = np.random.default_rng(0).standard_normal((4, 20))
        out = selector.select(scores)
        assert all(idx.size == 3 for idx in out)

    def test_selects_largest(self):
        selector = CandidateSelector(mode="top_m", num_candidates=2)
        out = selector.select(np.array([[0.0, 5.0, 1.0, 4.0]]))
        assert sorted(out.indices[0].tolist()) == [1, 3]

    def test_indices_sorted_ascending(self):
        selector = CandidateSelector(mode="top_m", num_candidates=4)
        scores = np.random.default_rng(1).standard_normal((1, 30))
        idx = selector.select(scores).indices[0]
        assert np.all(np.diff(idx) > 0)

    def test_m_clamped_to_dim(self):
        selector = CandidateSelector(mode="top_m", num_candidates=100)
        out = selector.select(np.zeros((1, 5)))
        assert out.indices[0].size == 5

    def test_1d_promoted(self):
        selector = CandidateSelector(mode="top_m", num_candidates=2)
        out = selector.select(np.array([1.0, 2.0, 3.0]))
        assert out.batch_size == 1

    @given(score_arrays, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_top_m_contains_max_value(self, scores, m):
        # Value-based (ties may resolve to any index holding the max).
        selector = CandidateSelector(mode="top_m", num_candidates=m)
        out = selector.select(scores)
        for row in range(scores.shape[0]):
            assert scores[row].max() in scores[row, out.indices[row]]


class TestThresholdSelector:
    def test_requires_calibration(self):
        selector = CandidateSelector(mode="threshold", num_candidates=5)
        with pytest.raises(ValueError, match="calibrate"):
            selector.select(np.zeros((1, 10)))

    def test_calibrate_then_select(self):
        selector = CandidateSelector(mode="threshold", num_candidates=10)
        rng = np.random.default_rng(0)
        validation = rng.standard_normal((32, 100))
        threshold = selector.calibrate(validation)
        assert selector.threshold == threshold
        out = selector.select(rng.standard_normal((16, 100)))
        assert 4 < np.mean(out.counts) < 20

    def test_explicit_threshold(self):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=0.5
        )
        out = selector.select(np.array([[0.0, 1.0, 0.4]]))
        assert out.indices[0].tolist() == [1]

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            CandidateSelector(mode="random")

    def test_rejects_3d_scores(self):
        selector = CandidateSelector(mode="top_m", num_candidates=1)
        with pytest.raises(ValueError):
            selector.select(np.zeros((2, 2, 2)))


def test_merge_candidates():
    a = CandidateSet(indices=[np.array([1])])
    b = CandidateSet(indices=[np.array([2]), np.array([3])])
    merged = merge_candidates([a, b])
    assert merged.batch_size == 3
    assert merged.total == 3
