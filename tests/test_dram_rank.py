import pytest

from repro.dram.rank import Rank
from repro.dram.timing import DDR4Timing, DDR4_2400


@pytest.fixture()
def rank():
    return Rank(DDR4_2400)


class TestActivateConstraints:
    def test_trrd_between_banks(self, rank):
        rank.activate(0, 0, row=0)
        assert rank.earliest_activate(1) == DDR4_2400.trrd

    def test_trrd_violation_raises(self, rank):
        rank.activate(0, 0, row=0)
        with pytest.raises(RuntimeError, match="tRRD"):
            rank.activate(1, 1, row=0)

    def test_four_activate_window(self, rank):
        t = DDR4_2400
        cycles = [0, t.trrd, 2 * t.trrd, 3 * t.trrd]
        for bank, cycle in enumerate(cycles):
            rank.activate(cycle, bank, row=0)
        # Fifth ACT must wait until the first leaves the tFAW window.
        assert rank.earliest_activate(4) >= cycles[0] + t.tfaw

    def test_faw_window_slides(self, rank):
        t = DDR4_2400
        for i in range(4):
            rank.activate(i * t.trrd, i, row=0)
        fifth_cycle = t.tfaw
        rank.activate(fifth_cycle, 4, row=0)
        # Sixth gated by the second ACT + tFAW.
        assert rank.earliest_activate(5) >= t.trrd + t.tfaw

    def test_same_bank_gated_by_trc(self, rank):
        rank.activate(0, 0, row=0)
        assert rank.earliest_activate(0) >= DDR4_2400.trc


class TestRefresh:
    def test_no_refresh_before_trefi(self, rank):
        assert rank.maybe_refresh(0) == 0
        assert rank.refreshes == 0

    def test_refresh_blocks_trfc(self, rank):
        t = DDR4_2400
        done = rank.maybe_refresh(t.trefi)
        assert done == t.trefi + t.trfc
        assert rank.refreshes == 1

    def test_refresh_closes_rows(self, rank):
        t = DDR4_2400
        rank.activate(0, 0, row=7)
        rank.maybe_refresh(t.trefi)
        assert rank.banks[0].open_row is None

    def test_refresh_interval_advances(self, rank):
        t = DDR4_2400
        rank.maybe_refresh(t.trefi)
        assert rank.maybe_refresh(t.trefi + t.trfc + 1) == t.trefi + t.trfc + 1
        assert rank.maybe_refresh(2 * t.trefi) == 2 * t.trefi + t.trfc


class TestBankGroupColumnTiming:
    def test_same_group_pays_tccd_l(self, rank):
        rank.record_column(100, bank_group=2)
        assert rank.earliest_column_for_group(2) == 100 + DDR4_2400.tccd_l

    def test_cross_group_pays_tccd_s(self, rank):
        rank.record_column(100, bank_group=2)
        assert rank.earliest_column_for_group(1) == 100 + DDR4_2400.tccd

    def test_tccd_l_slower_than_tccd_s(self):
        assert DDR4_2400.tccd_l > DDR4_2400.tccd


def test_stats_aggregate(rank):
    t = DDR4_2400
    rank.activate(0, 0, row=0)
    rank.activate(t.trrd, 1, row=0)
    assert rank.total_activations == 2
