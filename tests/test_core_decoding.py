import numpy as np
import pytest

from repro.core import beam_search_decode, greedy_decode
from repro.core.decoding import _reorder_state


class _ToyDecoder:
    """A deterministic step function over a tiny Markov-ish model:
    features are one-hot-ish encodings of the previous token."""

    def __init__(self, vocab, hidden_dim, rng):
        self.table = rng.standard_normal((vocab, hidden_dim))

    def __call__(self, tokens, state):
        step = 0 if state is None else state
        features = self.table[np.asarray(tokens)] + 0.01 * step
        return features, step + 1


@pytest.fixture()
def toy(small_task):
    rng = np.random.default_rng(3)
    decoder = _ToyDecoder(2000, small_task.hidden_dim, rng)
    return decoder, small_task.classifier


class TestGreedyDecode:
    def test_shapes(self, toy):
        decoder, classifier = toy
        result = greedy_decode(decoder, classifier, np.array([1, 2]), steps=5)
        assert result.tokens.shape == (2, 5)
        assert result.scores.shape == (2,)
        assert result.steps == 5

    def test_deterministic(self, toy):
        decoder, classifier = toy
        a = greedy_decode(decoder, classifier, np.array([7]), steps=4)
        b = greedy_decode(decoder, classifier, np.array([7]), steps=4)
        assert np.array_equal(a.tokens, b.tokens)

    def test_scores_are_log_probs(self, toy):
        decoder, classifier = toy
        result = greedy_decode(decoder, classifier, np.array([1]), steps=3)
        assert result.scores[0] <= 0.0

    def test_eos_early_stop(self, toy):
        decoder, classifier = toy
        # Find the first greedy token, then declare it EOS.
        probe = greedy_decode(decoder, classifier, np.array([1]), steps=1)
        eos = int(probe.tokens[0, 0])
        result = greedy_decode(
            decoder, classifier, np.array([1]), steps=5, eos_token=eos
        )
        assert np.all(result.tokens[0] == eos) or result.tokens[0, 0] == eos

    def test_screened_classifier_matches_exact_on_structured(
        self, toy, small_task, small_screener
    ):
        from repro.core import ApproximateScreeningClassifier

        decoder, classifier = toy
        screened = ApproximateScreeningClassifier(
            classifier, small_screener, num_candidates=64
        )
        exact = greedy_decode(decoder, classifier, np.array([5]), steps=4)
        approx = greedy_decode(decoder, screened, np.array([5]), steps=4)
        assert np.mean(exact.tokens == approx.tokens) >= 0.75


class TestBeamSearch:
    def test_shapes(self, toy):
        decoder, classifier = toy
        result = beam_search_decode(
            decoder, classifier, start_token=1, steps=4, beam_width=3
        )
        assert result.tokens.shape == (1, 3, 4)
        assert result.scores.shape == (1, 3)

    def test_beams_sorted_by_score(self, toy):
        decoder, classifier = toy
        result = beam_search_decode(
            decoder, classifier, start_token=1, steps=4, beam_width=4
        )
        scores = result.scores[0]
        assert np.all(np.diff(scores) <= 1e-12)

    def test_best_beam_at_least_greedy(self, toy):
        """Beam search's top hypothesis scores ≥ the greedy path."""
        decoder, classifier = toy
        greedy = greedy_decode(decoder, classifier, np.array([1]), steps=4)
        beam = beam_search_decode(
            decoder, classifier, start_token=1, steps=4, beam_width=4
        )
        assert beam.scores[0, 0] >= greedy.scores[0] - 1e-9

    def test_width_one_equals_greedy(self, toy):
        decoder, classifier = toy
        greedy = greedy_decode(decoder, classifier, np.array([1]), steps=4)
        beam = beam_search_decode(
            decoder, classifier, start_token=1, steps=4, beam_width=1
        )
        assert np.array_equal(beam.tokens[0, 0], greedy.tokens[0])

    def test_length_penalty_reorders_only(self, toy):
        decoder, classifier = toy
        result = beam_search_decode(
            decoder, classifier, start_token=1, steps=3, beam_width=3,
            length_penalty=0.6,
        )
        assert result.tokens.shape == (1, 3, 3)


class TestReorderState:
    def test_none(self):
        assert _reorder_state(None, np.array([0])) is None

    def test_array(self):
        state = np.arange(6).reshape(3, 2)
        out = _reorder_state(state, np.array([2, 0]))
        assert np.array_equal(out, [[4, 5], [0, 1]])

    def test_nested(self):
        state = [(np.arange(3), np.arange(3) * 10)]
        out = _reorder_state(state, np.array([2, 1]))
        assert np.array_equal(out[0][0], [2, 1])
        assert np.array_equal(out[0][1], [20, 10])

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            _reorder_state({"h": 1}, np.array([0]))
