import numpy as np
import pytest

from repro.utils.rng import ensure_rng, rng_from_labels, spawn_rngs, stable_seed


class TestEnsureRng:
    def test_none_is_deterministic(self):
        a = ensure_rng(None).integers(0, 1 << 30, 8)
        b = ensure_rng(None).integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_int_seed(self):
        a = ensure_rng(42).standard_normal(4)
        b = ensure_rng(42).standard_normal(4)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).standard_normal(8)
        b = ensure_rng(2).standard_normal(8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        seed = np.int64(7)
        a = ensure_rng(seed).standard_normal(3)
        b = ensure_rng(7).standard_normal(3)
        assert np.array_equal(a, b)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_independent_of_draw_order(self):
        children_a = spawn_rngs(9, 3)
        children_b = spawn_rngs(9, 3)
        for a, b in zip(children_a, children_b):
            assert np.array_equal(a.standard_normal(4), b.standard_normal(4))

    def test_children_differ_from_each_other(self):
        a, b = spawn_rngs(5, 2)
        assert not np.array_equal(a.standard_normal(8), b.standard_normal(8))

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestStableSeed:
    def test_deterministic_across_calls(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_distinct_labels_distinct_seeds(self):
        assert stable_seed("a") != stable_seed("b")

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_in_63_bit_range(self):
        seed = stable_seed("anything", 123, "x")
        assert 0 <= seed < 2**63

    def test_rng_from_labels_reproducible(self):
        a = rng_from_labels("w", "x").standard_normal(4)
        b = rng_from_labels("w", "x").standard_normal(4)
        assert np.array_equal(a, b)
