import pytest

from repro.isa import Program, assemble
from repro.isa.opcodes import Opcode


def make_program(text):
    return Program(assemble(text))


class TestProgram:
    def test_len_iter_getitem(self):
        program = make_program("NOP\nBARRIER\nRETURN")
        assert len(program) == 3
        assert [i.opcode for i in program] == [
            Opcode.NOP, Opcode.BARRIER, Opcode.RETURN,
        ]
        assert program[0].opcode is Opcode.NOP

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Program([])

    def test_count(self):
        program = make_program("NOP\nNOP\nRETURN")
        assert program.count(Opcode.NOP) == 2

    def test_encoded_length(self):
        program = make_program("NOP\nRETURN")
        assert len(program.encoded()) == 2

    def test_command_bus_beats(self):
        # LDR carries a DQ word: 1 + 8 beats; RETURN: 1 beat.
        program = make_program("LDR weight_int4, 0x0\nRETURN")
        assert program.command_bus_beats == 9 + 1

    def test_dram_loads_stores(self):
        program = make_program(
            "LDR weight_int4, 0x0\nSTR psum_fp32, 0x40\nRETURN"
        )
        assert len(program.dram_loads) == 1
        assert len(program.dram_stores) == 1


class TestValidate:
    def test_valid_program_passes(self):
        make_program(
            "LDR weight_int4, 0x0\n"
            "MUL_ADD_INT4 feature_int4, weight_int4\n"
            "RETURN"
        ).validate()

    def test_missing_return_rejected(self):
        with pytest.raises(ValueError, match="RETURN"):
            make_program("NOP").validate()

    def test_dead_compute_after_return_rejected(self):
        with pytest.raises(ValueError, match="dead"):
            make_program(
                "RETURN\nMUL_ADD_INT4 feature_int4, weight_int4"
            ).validate()

    def test_trailing_clr_allowed(self):
        make_program("RETURN\nCLR").validate()
