"""Thread-safety hammer tests for the obs instruments.

Regression context: ``Counter.inc``, ``Gauge.set`` and
``Histogram.observe`` were unsynchronized read-modify-write.  That was
safe while only the single-threaded engine wrote them, but the serving
front door (:mod:`repro.serving`) has many submitter threads and a
batcher thread hitting the same instruments, where an unlocked
``self.value += amount`` loses increments whenever the interpreter
preempts between the read and the write.

The first test demonstrates the loss is real on an unlocked
counter-shaped object (under a tiny switch interval); the rest hammer
the fixed instruments and assert nothing is lost.  CI runs this module
under ``pytest-timeout`` so a deadlock introduced by the locking fails
fast instead of hanging the suite.
"""

import sys
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_buckets,
)

pytestmark = pytest.mark.timeout(120)

THREADS = 8
INCREMENTS = 25_000


@pytest.fixture()
def tight_switching():
    """Force frequent interpreter preemption so read-modify-write races
    are actually exercised instead of hiding behind long GIL slices."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _hammer(work, threads=THREADS):
    """Run ``work(thread_index)`` on N threads, join them all."""
    pool = [
        threading.Thread(target=work, args=(index,)) for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class _UnlockedHistogram:
    """The pre-fix ``Histogram.observe`` shape: multi-field RMW with no
    lock.  (On current CPython a *single*-statement ``+=`` rarely tears
    — the eval breaker only runs at calls and jumps — but ``observe``
    spans several statements and a loop, so readers race it for real.)
    """

    def __init__(self, bounds):
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value):
        value = float(value)
        self.count += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1


def _race_readers_against(histogram, summarize, duration_s=0.5, writers=4):
    """Hammer ``histogram.observe`` while readers compare the bucket
    total against ``count`` via ``summarize()``; returns the number of
    internally inconsistent reads observed."""
    stop = threading.Event()
    mismatches = [0]

    def writer():
        value = 1e-5
        while not stop.is_set():
            histogram.observe(value)
            value = value * 1.7 if value < 1.0 else 1e-6

    def reader():
        while not stop.is_set():
            count, bucket_total = summarize()
            if count != bucket_total:
                mismatches[0] += 1

    pool = [threading.Thread(target=writer) for _ in range(writers)]
    pool += [threading.Thread(target=reader) for _ in range(2)]
    for thread in pool:
        thread.start()
    timer = threading.Timer(duration_s, stop.set)
    timer.start()
    for thread in pool:
        thread.join()
    timer.cancel()
    return mismatches[0]


def test_unlocked_histogram_demonstrably_races(tight_switching):
    """The race the fix exists for, demonstrated on the pre-fix shape:
    readers catch ``count`` and the bucket totals mid-update.  This
    pins that the hammer workload can expose the race, so the passing
    tests on the locked instruments below mean something."""
    histogram = _UnlockedHistogram(latency_buckets())
    mismatches = _race_readers_against(
        histogram,
        lambda: (histogram.count, sum(histogram.bucket_counts)),
    )
    assert mismatches > 0, (
        "hammer workload failed to expose the unlocked race; "
        "the no-loss assertions below would be vacuous"
    )


def test_locked_histogram_never_shows_torn_reads(tight_switching):
    """Same hammer, real instrument, snapshots through the locked
    ``summary()``: no reader ever sees count disagree with the record."""
    histogram = Histogram(latency_buckets())

    def summarize():
        record = histogram.summary()
        count = record.get("count", 0)
        # A consistent record either is empty or carries a mean that
        # reconciles with its own sum — recompute the invariant.
        if count == 0:
            return 0, 0
        return count, round(record["sum"] / record["mean"])

    assert _race_readers_against(histogram, summarize) == 0


def test_counter_loses_no_increments(tight_switching):
    counter = Counter()
    _hammer(lambda _i: [counter.inc() for _ in range(INCREMENTS)])
    assert counter.value == THREADS * INCREMENTS


def test_counter_amounts_accumulate_exactly(tight_switching):
    counter = Counter()
    _hammer(lambda _i: [counter.inc(2.0) for _ in range(INCREMENTS)])
    assert counter.value == 2.0 * THREADS * INCREMENTS


def test_gauge_add_loses_no_updates(tight_switching):
    gauge = Gauge()
    _hammer(lambda _i: [gauge.add(1.0) for _ in range(INCREMENTS)])
    assert gauge.value == THREADS * INCREMENTS


def test_gauge_set_is_last_write_wins(tight_switching):
    gauge = Gauge()
    _hammer(lambda index: gauge.set(float(index)))
    assert gauge.value in {float(index) for index in range(THREADS)}


def test_histogram_loses_no_observations(tight_switching):
    histogram = Histogram(latency_buckets())
    per_thread = 5_000

    def work(index):
        # Spread observations across buckets so every bucket counter
        # is contended, not just one.
        for i in range(per_thread):
            histogram.observe(1e-6 * (10 ** (index % 6)) * (1 + i % 3))

    _hammer(work)
    total = THREADS * per_thread
    assert histogram.count == total
    assert sum(histogram.bucket_counts) == total
    summary = histogram.summary()
    assert summary["count"] == total


def test_summary_is_consistent_under_concurrent_writes():
    """Readers see internally consistent records while writers hammer:
    a summary's count can never disagree with its own mean/sum pairing
    (count == 0 implies the empty record; count > 0 implies all keys)."""
    histogram = Histogram(latency_buckets())
    stop = threading.Event()
    errors = []

    def writer():
        value = 1e-5
        while not stop.is_set():
            histogram.observe(value)

    def reader():
        try:
            while not stop.is_set():
                record = histogram.summary()
                if record["count"] == 0:
                    assert set(record) == {"count"}
                else:
                    assert record["sum"] == pytest.approx(
                        record["mean"] * record["count"]
                    )
        except AssertionError as error:  # pragma: no cover - failure path
            errors.append(error)

    pool = [threading.Thread(target=writer) for _ in range(4)]
    pool += [threading.Thread(target=reader) for _ in range(2)]
    for thread in pool:
        thread.start()
    timer = threading.Timer(0.5, stop.set)
    timer.start()
    for thread in pool:
        thread.join()
    timer.cancel()
    assert not errors


def test_registry_get_or_create_never_forks_an_instrument(tight_switching):
    """Two threads racing to create the same name must get the *same*
    counter — otherwise each would increment an orphan copy."""
    registry = MetricsRegistry()
    seen = [None] * THREADS
    barrier = threading.Barrier(THREADS)

    def work(index):
        barrier.wait()
        counter = registry.counter("serving.requests")
        seen[index] = counter
        for _ in range(INCREMENTS):
            counter.inc()

    _hammer(work)
    assert len({id(counter) for counter in seen}) == 1
    assert registry.counter("serving.requests").value == THREADS * INCREMENTS


def test_registry_kind_collision_still_raises():
    registry = MetricsRegistry()
    registry.counter("serving.requests")
    with pytest.raises(ValueError):
        registry.gauge("serving.requests")
