import pytest

from repro.dram.bank import Bank
from repro.dram.timing import DDR4_2400


@pytest.fixture()
def bank():
    return Bank(DDR4_2400)


class TestActivate:
    def test_opens_row(self, bank):
        bank.activate(0, row=7)
        assert bank.open_row == 7
        assert bank.activations == 1

    def test_act_to_open_bank_rejected(self, bank):
        bank.activate(0, row=1)
        with pytest.raises(RuntimeError, match="open row"):
            bank.activate(100, row=2)

    def test_trc_enforced(self, bank):
        bank.activate(0, row=1)
        bank.precharge(bank.earliest_precharge())
        # next ACT must wait for max(tRC from first ACT, tRP from PRE)
        assert bank.earliest_activate() >= DDR4_2400.trc

    def test_early_act_raises(self, bank):
        bank.activate(0, row=1)
        bank.open_row = None  # bypass the open-row check
        with pytest.raises(RuntimeError, match="tRC"):
            bank.activate(1, row=2)


class TestColumnCommands:
    def test_read_after_trcd(self, bank):
        bank.activate(0, row=3)
        assert bank.earliest_column(is_write=False) == DDR4_2400.trcd
        done = bank.read(DDR4_2400.trcd, row=3)
        assert done == DDR4_2400.trcd + DDR4_2400.cl + DDR4_2400.burst_cycles

    def test_read_before_trcd_rejected(self, bank):
        bank.activate(0, row=3)
        with pytest.raises(RuntimeError, match="RD"):
            bank.read(DDR4_2400.trcd - 1, row=3)

    def test_read_wrong_row_rejected(self, bank):
        bank.activate(0, row=3)
        with pytest.raises(RuntimeError, match="open row"):
            bank.read(DDR4_2400.trcd, row=4)

    def test_read_closed_bank_rejected(self, bank):
        with pytest.raises(RuntimeError, match="closed"):
            bank.read(100, row=0)

    def test_tccd_between_reads(self, bank):
        bank.activate(0, row=0)
        first = DDR4_2400.trcd
        bank.read(first, row=0)
        assert bank.earliest_column(is_write=False) == first + DDR4_2400.tccd

    def test_write_recovery_delays_precharge(self, bank):
        bank.activate(0, row=0)
        t = DDR4_2400
        cycle = t.trcd
        bank.write(cycle, row=0)
        assert bank.earliest_precharge() >= cycle + t.cwl + t.burst_cycles + t.twr

    def test_read_to_precharge_trtp(self, bank):
        bank.activate(0, row=0)
        t = DDR4_2400
        bank.read(t.trcd, row=0)
        assert bank.earliest_precharge() >= t.trcd + t.trtp

    def test_write_to_read_turnaround(self, bank):
        bank.activate(0, row=0)
        t = DDR4_2400
        bank.write(t.trcd, row=0)
        assert (
            bank.earliest_column(is_write=False)
            >= t.trcd + t.cwl + t.burst_cycles + t.twtr
        )

    def test_row_hit_counting(self, bank):
        bank.activate(0, row=0)
        cycle = DDR4_2400.trcd
        bank.read(cycle, row=0)
        bank.read(cycle + DDR4_2400.tccd, row=0)
        assert bank.row_hits == 2


class TestPrecharge:
    def test_closes_row(self, bank):
        bank.activate(0, row=5)
        bank.precharge(bank.earliest_precharge())
        assert bank.open_row is None

    def test_tras_enforced(self, bank):
        bank.activate(0, row=5)
        with pytest.raises(RuntimeError, match="tRAS"):
            bank.precharge(DDR4_2400.tras - 1)

    def test_trp_after_precharge(self, bank):
        bank.activate(0, row=5)
        pre_cycle = bank.earliest_precharge()
        bank.precharge(pre_cycle)
        assert bank.earliest_activate() >= pre_cycle + DDR4_2400.trp


def test_block_until_pushes_all(bank):
    bank.block_until(1000)
    assert bank.earliest_activate() >= 1000
    assert bank.earliest_column(is_write=False) >= 1000
    assert bank.earliest_column(is_write=True) >= 1000
