import pytest

from repro.dram.address import AddressMapping
from repro.dram.timing import DDR4_2400


@pytest.fixture(scope="module")
def mapping():
    return AddressMapping(DDR4_2400, channels=4, ranks_per_channel=2)


class TestDecode:
    def test_zero_address(self, mapping):
        decoded = mapping.decode(0)
        assert decoded.channel == 0
        assert decoded.rank == 0
        assert decoded.row == 0
        assert decoded.column == 0

    def test_channel_interleave_first(self, mapping):
        # Consecutive 64 B lines walk channels.
        for i in range(4):
            assert mapping.decode(i * 64).channel == i
        assert mapping.decode(4 * 64).channel == 0

    def test_bank_group_interleave_after_channels(self, mapping):
        """Consecutive same-channel lines alternate bank groups, so
        streams pay tCCD_S rather than same-group tCCD_L."""
        a = mapping.decode(0)
        b = mapping.decode(4 * 64)  # one full channel round
        assert b.bank_group == (a.bank_group + 1) % 4
        assert b.column == a.column

    def test_column_advances_after_group_round(self, mapping):
        groups = 4
        a = mapping.decode(0)
        b = mapping.decode(4 * 64 * groups)
        assert b.column == a.column + 1
        assert b.bank_group == a.bank_group

    def test_row_locality_of_streams(self, mapping):
        """A sequential stream stays in one row per (channel, group)
        until the row is exhausted — the stream row-hit property."""
        bursts_per_row = mapping.bursts_per_row
        stride = 4 * 64 * 4  # same channel, same bank group
        decoded = [
            mapping.decode(addr)
            for addr in range(0, stride * bursts_per_row, stride)
        ]
        assert all(d.row == decoded[0].row for d in decoded)
        assert all(d.bank == decoded[0].bank for d in decoded)
        assert all(d.bank_group == decoded[0].bank_group for d in decoded)

    def test_bank_advances_after_row_of_columns(self, mapping):
        step = 4 * 64 * 4 * mapping.bursts_per_row
        a = mapping.decode(0)
        b = mapping.decode(step)
        assert (b.bank, b.rank) != (a.bank, a.rank) or b.row != a.row

    def test_sub_line_addresses_same_burst(self, mapping):
        assert mapping.decode(0) == mapping.decode(63)

    def test_negative_rejected(self, mapping):
        with pytest.raises(ValueError):
            mapping.decode(-1)

    def test_flat_bank(self, mapping):
        decoded = mapping.decode(0)
        assert decoded.flat_bank == decoded.bank_group * 4 + decoded.bank


class TestSequentialAddresses:
    def test_burst_aligned(self, mapping):
        addrs = mapping.sequential_addresses(10, 100)
        assert addrs[0] == 0
        assert all(a % 64 == 0 for a in addrs)

    def test_covers_range(self, mapping):
        addrs = mapping.sequential_addresses(0, 256)
        assert len(addrs) == 4

    def test_partial_tail_included(self, mapping):
        addrs = mapping.sequential_addresses(0, 65)
        assert len(addrs) == 2


def test_capacity():
    mapping = AddressMapping(DDR4_2400, channels=8, ranks_per_channel=8)
    # 8 ch × 8 ranks × 16 banks × 65536 rows × 8 KiB = 512 GiB.
    assert mapping.capacity_bytes == 8 * 8 * 16 * 65536 * 8192
