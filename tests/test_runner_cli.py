from repro.experiments.runner import main


class TestRunnerCLI:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "table5" in out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown" in err

    def test_runs_selected(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "0.442" in out
        assert "table5 done" in out

    def test_runs_multiple(self, capsys):
        assert main(["table4", "table5"]) == 0
        out = capsys.readouterr().out
        assert "=== table4" in out
        assert "=== table5" in out
