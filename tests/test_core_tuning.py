import numpy as np
import pytest

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    tune_budget_for_recall,
    tune_threshold_for_recall,
)
from repro.core.metrics import candidate_recall


class TestTuneBudget:
    @pytest.fixture(scope="class")
    def validation(self):
        from repro.core import ScreeningConfig, train_screener
        from repro.data import make_task

        task = make_task(num_categories=2000, hidden_dim=64, rng=9)
        screener = train_screener(
            task.classifier, task.sample_features(512),
            config=ScreeningConfig(projection_dim=16), solver="lstsq", rng=10,
        )
        return task, screener, task.sample_features(96, rng=11)

    def test_meets_target(self, validation):
        task, screener, features = validation
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.99, k=1
        )
        assert result.met
        assert result.achieved_recall >= 0.99

    def test_budget_is_minimal(self, validation):
        """One fewer candidate must miss the target (minimality)."""
        task, screener, features = validation
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=1.0, k=1
        )
        if result.num_candidates > 1:
            smaller = ApproximateScreeningClassifier(
                task.classifier, screener,
                selector=CandidateSelector(
                    mode="top_m", num_candidates=result.num_candidates - 1
                ),
            )
            exact = task.classifier.logits(features)
            assert candidate_recall(exact, smaller(features), k=1) < 1.0

    def test_higher_target_bigger_budget(self, validation):
        task, screener, features = validation
        relaxed = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.8, k=1
        )
        strict = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=1.0, k=1
        )
        assert strict.num_candidates >= relaxed.num_candidates

    def test_k_greater_than_one(self, validation):
        task, screener, features = validation
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.95, k=5
        )
        assert result.num_candidates >= 5
        assert result.met

    def test_unreachable_target_reported(self, validation):
        task, screener, features = validation
        result = tune_budget_for_recall(
            task.classifier, screener, features,
            target_recall=1.0, k=1, max_fraction=0.0005,  # max 1 candidate
        )
        assert not result.met or result.num_candidates <= 1

    def test_candidate_fraction(self, validation):
        task, screener, features = validation
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.9
        )
        assert result.candidate_fraction == pytest.approx(
            result.num_candidates / 2000
        )

    def test_threshold_variant(self, validation):
        task, screener, features = validation
        threshold = tune_threshold_for_recall(
            task.classifier, screener, features, target_recall=0.95
        )
        assert np.isfinite(threshold)

    def test_rejects_bad_target(self, validation):
        task, screener, features = validation
        with pytest.raises(ValueError):
            tune_budget_for_recall(
                task.classifier, screener, features, target_recall=1.5
            )

    def test_infeasible_cap_probed_once(self, validation, monkeypatch):
        """The feasibility probe at the budget cap is the single most
        expensive evaluation of the whole search (a full screening pass
        at the largest budget); the infeasible path used to evaluate it
        twice back to back."""
        import repro.core.tuning as tuning

        task, screener, features = validation
        probes = []

        def never_enough(classifier, screener, features, exact, budget, k):
            probes.append(budget)
            return 0.0

        monkeypatch.setattr(tuning, "_recall_at_budget", never_enough)
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.99, k=1
        )
        assert not result.met
        assert result.achieved_recall == 0.0
        # Exactly one probe, at the cap budget, decides infeasibility
        # and supplies the reported recall.
        assert probes == [max(1, int(2000 * 0.5))]

    def test_no_budget_probed_twice(self, validation, monkeypatch):
        """Regression: the search used to re-run a full screening pass
        at the final budget even though the bisection had already probed
        it.  Every probe is a full screening pass, so each duplicate is
        pure waste — the probed-budget memo must make them impossible."""
        import repro.core.tuning as tuning

        task, screener, features = validation
        probes = []
        real_probe = tuning._recall_at_budget

        def counting_probe(classifier, screener, features, exact, budget, k):
            probes.append(budget)
            return real_probe(classifier, screener, features, exact, budget, k)

        monkeypatch.setattr(tuning, "_recall_at_budget", counting_probe)
        result = tune_budget_for_recall(
            task.classifier, screener, features, target_recall=0.95, k=1
        )
        assert result.met
        assert len(probes) == len(set(probes))
        # The reported recall comes from the memo, not a fresh pass.
        assert result.achieved_recall == pytest.approx(
            real_probe(
                task.classifier, screener, features,
                task.classifier.logits(features), result.num_candidates, 1,
            )
        )

    def test_threshold_variant_forwards_max_fraction(
        self, validation, monkeypatch
    ):
        """Regression: tune_threshold_for_recall swallowed
        ``max_fraction``, so the budget search under the hood always ran
        against the default 0.5 cap."""
        import repro.core.tuning as tuning

        task, screener, features = validation
        seen = []
        real_tune = tuning.tune_budget_for_recall

        def spying_tune(classifier, screener, features, target, k, **kwargs):
            seen.append(kwargs)
            return real_tune(
                classifier, screener, features, target, k, **kwargs
            )

        monkeypatch.setattr(tuning, "tune_budget_for_recall", spying_tune)
        threshold = tune_threshold_for_recall(
            task.classifier, screener, features,
            target_recall=1.0, k=1, max_fraction=0.0005,
        )
        assert np.isfinite(threshold)
        assert seen == [{"max_fraction": 0.0005}]


class TestQuantizationAwareTraining:
    def test_qat_not_worse_than_ptq(self):
        """QAT loss (on the quantized forward) ends at or below the
        post-training-quantization loss of a same-budget PTQ screener."""
        from repro.core import ScreeningConfig, train_screener
        from repro.data import make_task

        task = make_task(num_categories=500, hidden_dim=32, rng=12)
        features = task.sample_features(256)
        config = ScreeningConfig(projection_dim=8, quantization_bits=4)

        ptq = train_screener(
            task.classifier, features, config=config,
            solver="adam", lr=0.01, epochs=40, rng=13,
        )
        qat = train_screener(
            task.classifier, features, config=config,
            solver="adam", lr=0.01, epochs=40, rng=13,
            quantization_aware=True,
        )
        exact = task.classifier.logits(features)

        def quantized_mse(screener):
            approx = screener.approximate_logits(features)
            return float(np.mean((approx - exact) ** 2))

        assert quantized_mse(qat) <= quantized_mse(ptq) * 1.1

    def test_qat_rejected_for_lstsq(self):
        from repro.core import ScreeningConfig, train_screener
        from repro.data import make_task

        task = make_task(num_categories=100, hidden_dim=16, rng=14)
        with pytest.raises(ValueError, match="iterative"):
            train_screener(
                task.classifier, task.sample_features(64),
                config=ScreeningConfig(projection_dim=4),
                solver="lstsq", quantization_aware=True,
            )
