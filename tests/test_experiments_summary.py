from repro.experiments import summary


class TestSummary:
    def test_all_fast_claims_hold(self):
        claims = summary.run(include_quality=False)
        failing = [c.claim for c in claims if not c.holds]
        assert not failing, f"claims out of band: {failing}"

    def test_claim_coverage(self):
        claims = summary.run(include_quality=False)
        sources = {c.source for c in claims}
        assert {"Intro", "Fig. 13", "Fig. 14", "Fig. 15", "Table 5"} <= sources
        assert len(claims) >= 10

    def test_report_renders(self):
        text = summary.report(include_quality=False)
        assert "headline claims reproduced" in text
        assert "✓" in text

    def test_quality_claim_included_when_requested(self):
        claims = summary.run(include_quality=True)
        assert any(c.source == "Fig. 11" for c in claims)
        fig11 = next(c for c in claims if c.source == "Fig. 11")
        assert fig11.holds
