import pytest

from repro.isa import assemble, disassemble
from repro.isa.assembler import AssemblerError
from repro.isa.instruction import Compute, Init, Load, Move
from repro.isa.opcodes import BufferId, Opcode, RegisterId

PROGRAM_TEXT = """
# full screening tile
INIT vocab_size, 33278
INIT threshold, 0x2A
LDR feature_int4, 0x1000
LDR weight_int4, 0x8000
MUL_ADD_INT4 feature_int4, weight_int4
FILTER psum_int4
MOVE output, psum_int4
SOFTMAX
BARRIER
RETURN
CLR
"""


class TestAssemble:
    def test_full_program(self):
        instructions = assemble(PROGRAM_TEXT)
        assert len(instructions) == 11

    def test_comments_and_blanks_skipped(self):
        instructions = assemble("# comment\n\nNOP\n")
        assert len(instructions) == 1

    def test_hex_and_decimal_operands(self):
        instructions = assemble("INIT threshold, 0x2A")
        assert instructions[0] == Init(RegisterId.THRESHOLD, 42)

    def test_numeric_buffer_ids(self):
        instructions = assemble("LDR 1, 0x10")
        assert instructions[0] == Load(BufferId.WEIGHT_INT4, 0x10)

    def test_case_insensitive(self):
        instructions = assemble("move OUTPUT, Psum_Int4")
        assert instructions[0] == Move(BufferId.OUTPUT, BufferId.PSUM_INT4)

    def test_unknown_mnemonic_reports_line(self):
        with pytest.raises(AssemblerError) as exc:
            assemble("NOP\nFROB x, y\n")
        assert exc.value.line_number == 2

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError, match="expects 2"):
            assemble("MOVE output")

    def test_unknown_buffer(self):
        with pytest.raises(AssemblerError, match="unknown buffer"):
            assemble("LDR warp_buffer, 0")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("QUERY hyperdrive")

    def test_all_compute_mnemonics(self):
        text = "\n".join(
            [
                "ADD_INT4 psum_int4, weight_int4",
                "MUL_INT4 feature_int4, weight_int4",
                "ADD_FP32 psum_fp32, weight_fp32",
                "MUL_FP32 feature_fp32, weight_fp32",
                "MUL_ADD_INT4 feature_int4, weight_int4",
                "MUL_ADD_FP32 feature_fp32, weight_fp32",
            ]
        )
        instructions = assemble(text)
        assert all(isinstance(i, Compute) for i in instructions)
        assert instructions[0].opcode is Opcode.ADD_INT4


class TestDisassemble:
    def test_roundtrip(self):
        instructions = assemble(PROGRAM_TEXT)
        text = disassemble(instructions)
        assert assemble(text) == instructions

    def test_canonical_format(self):
        text = disassemble(assemble("init threshold, 42"))
        assert text == "INIT threshold, 42"

    def test_addresses_hex(self):
        text = disassemble(assemble("LDR weight_int4, 4096"))
        assert "0x1000" in text
