"""Contract tests for the serving front door.

The load-bearing claim: putting the front door between a caller and an
engine changes *scheduling*, never *answers*.  The differential tests
replay the exact micro-batches the front door formed (via the
``batch_id``/``batch_index`` metadata in every reply) directly against
the backend and require bit-identical rows — across the single-node
pipeline, the sequential sharded classifier and the process-parallel
engine.

Also covered: the size-or-deadline flush policy, admission control
(typed ``QueueFullError``, engine outputs unaffected by overload), SLO
deadlines (expired requests are shed, never served late; budgets narrow
the backend's supervision deadline and the default is restored), and
lifecycle (drain on close, typed error after close).
"""

import threading
import time
from collections import defaultdict

import numpy as np
import pytest

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.core.candidates import CandidateSet
from repro.core.pipeline import ScreenedOutput
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.serving import (
    DeadlineExceededError,
    EngineBackend,
    FrontDoor,
    FrontDoorClosedError,
    QueueFullError,
    is_engine_backend,
    propagates_deadlines,
)

pytestmark = pytest.mark.timeout(600)

NUM_CATEGORIES = 300
HIDDEN_DIM = 24


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)


@pytest.fixture(scope="module")
def train_features(task):
    return task.sample_features(128, rng=7)


@pytest.fixture(scope="module")
def single_node(task, train_features):
    screener = train_screener(
        task.classifier,
        train_features,
        config=ScreeningConfig(projection_dim=8),
        epochs=3,
        rng=5,
    )
    return ApproximateScreeningClassifier(
        task.classifier, screener, num_candidates=16
    )


@pytest.fixture(scope="module")
def sharded(task, train_features):
    model = ShardedClassifier(
        task.classifier, num_shards=2, config=ScreeningConfig(projection_dim=8)
    )
    model.train(train_features, candidates_per_shard=8, rng=5)
    return model


@pytest.fixture(scope="module")
def request_rows(task):
    return task.sample_features(24, rng=11)


class TestEngineBackendProtocol:
    def test_all_three_backends_satisfy_the_protocol(self, single_node, sharded):
        assert is_engine_backend(single_node)
        assert is_engine_backend(sharded)
        with sharded.parallel() as engine:
            assert is_engine_backend(engine)
            assert propagates_deadlines(engine)

    def test_in_process_backends_do_not_claim_deadline_support(
        self, single_node, sharded
    ):
        assert not propagates_deadlines(single_node)
        assert not propagates_deadlines(sharded)

    def test_protocol_rejects_non_backends(self):
        assert not isinstance(object(), EngineBackend)


def replay_batches(door, backend, rows, op="forward", **submit_kwargs):
    """Submit every row, then regroup replies into the micro-batches the
    front door actually formed and return
    ``[(stacked_features, [(reply, row_index), ...]), ...]``."""
    futures = [door.submit(row, op, **submit_kwargs) for row in rows]
    replies = [future.result(timeout=60) for future in futures]
    batches = defaultdict(list)
    for row, reply in zip(rows, replies):
        batches[reply.batch_id].append((reply, row))
    grouped = []
    for batch_id, members in sorted(batches.items()):
        members.sort(key=lambda pair: pair[0].batch_index)
        sizes = {pair[0].batch_size for pair in members}
        assert sizes == {len(members)}, "reply batch metadata inconsistent"
        stacked = np.stack([row for _, row in members], axis=0)
        grouped.append((stacked, [reply for reply, _ in members]))
    return grouped


class TestDifferentialBitIdentity:
    """Front-door replies are bit-identical to direct backend calls on
    the same micro-batches."""

    @pytest.fixture(params=["single_node", "sharded"])
    def backend(self, request):
        return request.getfixturevalue(request.param)

    def test_forward_rows_match_direct_call(self, backend, request_rows):
        with FrontDoor(backend, max_batch=4, flush_window_s=0.05) as door:
            for stacked, replies in replay_batches(door, backend, request_rows):
                direct = backend.forward(stacked)
                assert direct.logits.shape[0] == len(replies)
                for i, reply in enumerate(replies):
                    assert np.array_equal(reply.value.logits, direct.logits[i])
                    assert np.array_equal(
                        reply.value.candidates, direct.candidates.indices[i]
                    )
                    assert not reply.degraded
                    assert reply.failures == ()

    def test_streaming_rows_match_direct_call(self, backend, request_rows):
        with FrontDoor(backend, max_batch=4, flush_window_s=0.05) as door:
            batches = replay_batches(
                door, backend, request_rows, op="forward_streaming"
            )
            for stacked, replies in batches:
                direct = backend.forward_streaming(stacked)
                offsets = np.concatenate(
                    ([0], np.cumsum(direct.candidates.counts))
                )
                for i, reply in enumerate(replies):
                    assert np.array_equal(
                        reply.value.candidates, direct.candidates.indices[i]
                    )
                    assert np.array_equal(
                        reply.value.exact_values,
                        direct.exact_values[offsets[i] : offsets[i + 1]],
                    )
                    assert np.array_equal(
                        reply.value.approximate_values,
                        direct.approximate_values[offsets[i] : offsets[i + 1]],
                    )

    def test_top_k_and_predict_rows_match_direct_call(self, backend, request_rows):
        with FrontDoor(backend, max_batch=4, flush_window_s=0.05) as door:
            for stacked, replies in replay_batches(
                door, backend, request_rows, op="top_k", k=7
            ):
                direct = backend.top_k(stacked, k=7)
                for i, reply in enumerate(replies):
                    if isinstance(direct, tuple):  # sharded: (indices, scores)
                        assert np.array_equal(reply.value[0], direct[0][i])
                        assert np.array_equal(reply.value[1], direct[1][i])
                    else:  # single-node: bare indices
                        assert np.array_equal(reply.value, direct[i])
            for stacked, replies in replay_batches(
                door, backend, request_rows, op="predict"
            ):
                direct = backend.predict(stacked)
                for i, reply in enumerate(replies):
                    assert reply.value == direct[i]

    def test_unit_batches_match_direct_single_row_calls(
        self, backend, request_rows
    ):
        """``max_batch=1`` disables coalescing: each reply must equal a
        direct one-row backend call exactly (same shapes in, same bits
        out)."""
        with FrontDoor(backend, max_batch=1, flush_window_s=0.0) as door:
            for row in request_rows[:6]:
                reply = door.call(row, timeout=60)
                assert reply.batch_size == 1
                direct = backend.forward(row[np.newaxis, :])
                assert np.array_equal(reply.value.logits, direct.logits[0])
                assert np.array_equal(
                    reply.value.candidates, direct.candidates.indices[0]
                )


class TestParallelBackendThroughTheDoor:
    """One process-fleet spin-up covering the parallel-specific claims:
    bit-identity with the sequential model and deadline narrowing of the
    supervision timeout."""

    def test_parallel_replies_match_sequential_backend(
        self, sharded, request_rows
    ):
        with sharded.parallel() as engine:
            with FrontDoor(engine, max_batch=4, flush_window_s=0.05) as door:
                for stacked, replies in replay_batches(
                    door, engine, request_rows[:12]
                ):
                    direct = sharded.forward(stacked)
                    for i, reply in enumerate(replies):
                        assert np.array_equal(
                            reply.value.logits, direct.logits[i]
                        )
                        assert np.array_equal(
                            reply.value.candidates, direct.candidates.indices[i]
                        )
            assert engine.request_timeout is None  # restored after every batch


class _RecordingBackend:
    """An EngineBackend stub that records the ``request_timeout`` in
    effect at each dispatch (what a supervised fleet would see)."""

    def __init__(self, num_categories=8, hidden_dim=4):
        self._num_categories = num_categories
        self._hidden_dim = hidden_dim
        self.request_timeout = 30.0
        self.seen_timeouts = []

    @property
    def num_categories(self):
        return self._num_categories

    @property
    def hidden_dim(self):
        return self._hidden_dim

    def forward(self, features):
        self.seen_timeouts.append(self.request_timeout)
        logits = np.zeros((features.shape[0], self._num_categories))
        candidates = CandidateSet(
            indices=[np.arange(2, dtype=np.intp) for _ in range(features.shape[0])]
        )
        return ScreenedOutput(
            logits, approximate_logits=logits.copy(), candidates=candidates
        )

    def forward_streaming(self, features, block_categories=None):
        return self.forward(features)

    def top_k(self, features, k):
        self.seen_timeouts.append(self.request_timeout)
        return np.zeros((features.shape[0], k), dtype=np.intp)

    def predict(self, features):
        self.seen_timeouts.append(self.request_timeout)
        return np.zeros(features.shape[0], dtype=np.intp)

    def close(self):
        pass


class _GatedBackend(_RecordingBackend):
    """Blocks every dispatch until the test releases the gate — lets a
    test hold the batcher busy while more requests queue up."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.dispatching = threading.Event()

    def forward(self, features):
        self.dispatching.set()
        assert self.gate.wait(timeout=60), "test never released the gate"
        return super().forward(features)


class TestDeadlinePropagation:
    def test_recording_stub_satisfies_protocol(self):
        assert is_engine_backend(_RecordingBackend())
        assert propagates_deadlines(_RecordingBackend())

    def test_slo_narrows_supervision_deadline_and_restores_default(self):
        backend = _RecordingBackend()
        row = np.zeros(backend.hidden_dim)
        with FrontDoor(backend, max_batch=1, flush_window_s=0.0) as door:
            door.call(row, slo_s=0.5, timeout=30)
            door.call(row, timeout=30)  # no SLO: fleet default applies
        assert len(backend.seen_timeouts) == 2
        assert 0.0 < backend.seen_timeouts[0] <= 0.5
        assert backend.seen_timeouts[1] == 30.0
        assert backend.request_timeout == 30.0

    def test_slo_never_widens_a_tighter_fleet_default(self):
        backend = _RecordingBackend()
        backend.request_timeout = 0.25  # fleet default tighter than SLO
        row = np.zeros(backend.hidden_dim)
        with FrontDoor(backend, max_batch=1, flush_window_s=0.0) as door:
            door.call(row, slo_s=500.0, timeout=30)
        assert backend.seen_timeouts[0] <= 0.25
        assert backend.request_timeout == 0.25

    def test_exhausted_slo_is_shed_not_served_late(self):
        """A request whose budget expires while it queues behind a slow
        dispatch is shed with a typed error; the backend never sees it."""
        backend = _GatedBackend()
        row = np.zeros(backend.hidden_dim)
        with FrontDoor(backend, max_batch=1, flush_window_s=0.0) as door:
            first = door.submit(row)  # occupies the batcher at the gate
            assert backend.dispatching.wait(timeout=30)
            late = door.submit(row, slo_s=0.005)  # expires while queued
            time.sleep(0.05)
            backend.gate.set()
            assert first.result(timeout=30).batch_size == 1
            with pytest.raises(DeadlineExceededError):
                late.result(timeout=30)
        assert len(backend.seen_timeouts) == 1  # late request never dispatched
        assert door.stats()["shed_deadline"] == 1

    def test_tight_slo_behind_incompatible_head_pulls_the_batcher_awake(self):
        """The wake-up must fold deadlines across the WHOLE queue.  A
        tight-SLO request queued behind an incompatible no-SLO head
        used to wait out the head's full flush window (the fold only
        covered the head-compatible prefix) and be shed long after its
        budget expired.  Now the deadline pulls the flush forward: the
        head is served early and the tight request is settled around
        its deadline, both well inside the window."""
        backend = _RecordingBackend()
        row = np.zeros(backend.hidden_dim)
        with FrontDoor(backend, max_batch=4, flush_window_s=0.6) as door:
            start = time.monotonic()
            head = door.submit(row)  # no SLO; window alone says t+0.6
            tight = door.submit(row, "top_k", k=2, slo_s=0.1)
            reply = head.result(timeout=30)
            head_latency = time.monotonic() - start
            with pytest.raises(DeadlineExceededError):
                tight.result(timeout=30)
            tight_latency = time.monotonic() - start
        assert reply.batch_size == 1
        # Both settle around the 0.1s deadline, nowhere near the 0.6s
        # window the old prefix-only fold slept through.
        assert head_latency < 0.4
        assert tight_latency < 0.4
        assert door.stats()["shed_deadline"] == 1
        assert door.stats()["flush_on_deadline"] >= 1

    def test_zero_budget_is_always_shed(self):
        backend = _RecordingBackend()
        with FrontDoor(backend, max_batch=1, flush_window_s=0.0) as door:
            with pytest.raises(DeadlineExceededError):
                door.call(np.zeros(backend.hidden_dim), slo_s=0.0, timeout=30)
        assert backend.seen_timeouts == []


class TestAdmissionControl:
    def test_overflow_is_shed_with_typed_error_and_queued_work_unaffected(
        self, single_node, request_rows
    ):
        """Past the high-water mark ``submit`` raises ``QueueFullError``
        immediately; the requests already admitted still produce answers
        bit-identical to a direct engine call."""
        backend = _GatedBackend(hidden_dim=HIDDEN_DIM)
        door = FrontDoor(backend, max_batch=1, flush_window_s=0.0, queue_limit=3)
        try:
            blocker = door.submit(np.zeros(HIDDEN_DIM))
            assert backend.dispatching.wait(timeout=30)
            admitted = [door.submit(row) for row in request_rows[:3]]
            with pytest.raises(QueueFullError):
                door.submit(request_rows[3])
            assert door.stats()["shed_queue_full"] == 1
            backend.gate.set()
            blocker.result(timeout=30)
            for future in admitted:
                assert future.result(timeout=30).batch_size == 1
        finally:
            backend.gate.set()
            door.close()

    def test_overload_does_not_corrupt_engine_outputs(
        self, single_node, request_rows
    ):
        """Drive a real engine past its queue limit; every admitted
        reply must still match the direct call bit for bit."""
        with FrontDoor(
            single_node, max_batch=2, flush_window_s=0.0, queue_limit=4
        ) as door:
            futures, rows = [], []
            for _ in range(20):
                for row in request_rows:
                    try:
                        futures.append(door.submit(row))
                        rows.append(row)
                    except QueueFullError:
                        pass
            for row, future in zip(rows, futures):
                reply = future.result(timeout=60)
                direct = single_node.forward(row[np.newaxis, :])
                if reply.batch_size == 1:
                    assert np.array_equal(reply.value.logits, direct.logits[0])
                else:
                    # Coalesced rows are checked by the replay tests;
                    # here it is enough that every admitted request got
                    # a well-formed answer despite the overload.
                    assert reply.value.logits.shape == (NUM_CATEGORIES,)


class TestFlushPolicyAndLifecycle:
    def test_size_trigger_forms_full_batches(self, single_node, request_rows):
        with FrontDoor(single_node, max_batch=4, flush_window_s=10.0) as door:
            futures = [door.submit(row) for row in request_rows[:8]]
            replies = [future.result(timeout=30) for future in futures]
        # A 10 s window means only the size trigger can flush the first
        # two batches of 4 within the test's lifetime.
        assert {reply.batch_size for reply in replies[:8]} == {4}
        assert door.stats()["flush_on_size"] >= 2

    def test_window_trigger_serves_partial_batches(self, single_node, request_rows):
        with FrontDoor(single_node, max_batch=64, flush_window_s=0.01) as door:
            reply = door.call(request_rows[0], timeout=30)
        assert reply.batch_size == 1
        assert door.stats()["flush_on_deadline"] >= 1

    def test_mixed_ops_never_share_a_batch(self, single_node, request_rows):
        with FrontDoor(single_node, max_batch=8, flush_window_s=0.05) as door:
            futures = []
            for i, row in enumerate(request_rows[:8]):
                op = "predict" if i % 2 else "forward"
                futures.append(door.submit(row, op))
            replies = [future.result(timeout=30) for future in futures]
        for i, reply in enumerate(replies):
            partner_ids = {
                r.batch_id for j, r in enumerate(replies) if j % 2 == i % 2
            }
            other_ids = {
                r.batch_id for j, r in enumerate(replies) if j % 2 != i % 2
            }
            assert reply.batch_id in partner_ids
            assert reply.batch_id not in other_ids

    def test_close_drains_queued_requests(self, single_node, request_rows):
        door = FrontDoor(single_node, max_batch=4, flush_window_s=5.0)
        futures = [door.submit(row) for row in request_rows[:3]]
        door.close()  # drain=True: flushes the partial batch immediately
        for future in futures:
            assert future.result(timeout=1).value.logits.shape == (NUM_CATEGORIES,)
        with pytest.raises(FrontDoorClosedError):
            door.submit(request_rows[0])

    def test_close_without_drain_sheds_queued_requests(self):
        backend = _GatedBackend()
        door = FrontDoor(backend, max_batch=1, flush_window_s=0.0)
        blocker = door.submit(np.zeros(backend.hidden_dim))
        assert backend.dispatching.wait(timeout=30)
        queued = door.submit(np.zeros(backend.hidden_dim))
        shutdown = threading.Thread(target=door.close, kwargs={"drain": False})
        shutdown.start()
        with pytest.raises(FrontDoorClosedError):
            queued.result(timeout=30)
        backend.gate.set()
        blocker.result(timeout=30)
        shutdown.join(timeout=30)
        assert not shutdown.is_alive()

    def test_submit_validates_shapes_and_ops(self, single_node):
        with FrontDoor(single_node, max_batch=2, flush_window_s=0.0) as door:
            with pytest.raises(ValueError):
                door.submit(np.zeros((2, HIDDEN_DIM)))  # two rows
            with pytest.raises(ValueError):
                door.submit(np.zeros(HIDDEN_DIM + 1))  # wrong width
            with pytest.raises(ValueError):
                door.submit(np.zeros(HIDDEN_DIM), "top_k")  # k missing
            with pytest.raises(ValueError):
                door.submit(np.zeros(HIDDEN_DIM), "nonsense")

    def test_queue_depth_gauge_round_trips_to_zero(self, single_node, request_rows):
        from repro.obs import Recorder

        recorder = Recorder()
        with FrontDoor(
            single_node, max_batch=4, flush_window_s=0.01, recorder=recorder
        ) as door:
            futures = [door.submit(row) for row in request_rows[:8]]
            for future in futures:
                future.result(timeout=30)
        snapshot = recorder.snapshot()
        assert snapshot["gauges"]["serving.queue_depth"] == 0.0
        assert snapshot["counters"]["serving.served"] == 8.0
        assert snapshot["histograms"]["serving.e2e_latency_s"]["count"] == 8
