import numpy as np
import pytest

from repro.baselines import FGDClassifier
from repro.baselines.fgd import _build_knn_graph


@pytest.fixture(scope="module")
def fgd_setup():
    from repro.data import make_task

    task = make_task(num_categories=1000, hidden_dim=32, rng=3)
    model = FGDClassifier(
        task.classifier, degree=12, beam_width=8, num_candidates=20, rng=4
    )
    return task, model


class TestGraphConstruction:
    def test_exact_path_shape(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((100, 8))
        graph = _build_knn_graph(vectors, degree=5, rng=rng)
        assert graph.shape == (100, 5)

    def test_no_self_loops_exact(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((50, 8))
        graph = _build_knn_graph(vectors, degree=5, rng=rng)
        for vertex in range(50):
            assert vertex not in graph[vertex]

    def test_sampled_path_shape(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((5000, 8))
        graph = _build_knn_graph(vectors, degree=4, rng=rng, sample=64)
        assert graph.shape == (5000, 4)
        assert graph.min() >= 0
        assert graph.max() < 5000

    def test_neighbors_are_actually_similar(self):
        # Clustered vectors: neighbors should come from the same cluster.
        rng = np.random.default_rng(1)
        centers = rng.standard_normal((4, 16)) * 10
        vectors = np.concatenate(
            [center + rng.standard_normal((25, 16)) for center in centers]
        )
        graph = _build_knn_graph(vectors, degree=5, rng=rng)
        same_cluster = 0
        for vertex in range(100):
            same_cluster += np.sum(graph[vertex] // 25 == vertex // 25)
        assert same_cluster / (100 * 5) > 0.8


class TestSearch:
    def test_candidates_within_budget(self, fgd_setup):
        task, model = fgd_setup
        out = model(task.sample_features(4))
        assert all(idx.size <= 20 for idx in out.candidates)

    def test_candidate_entries_exact(self, fgd_setup):
        task, model = fgd_setup
        features = task.sample_features(3)
        out = model(features)
        exact = task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_non_candidates_floored(self, fgd_setup):
        task, model = fgd_setup
        out = model(task.sample_features(2))
        for row, indices in enumerate(out.candidates):
            mask = np.ones(task.num_categories, dtype=bool)
            mask[indices] = False
            assert np.all(out.logits[row, mask] == -1e3)

    def test_visit_accounting(self, fgd_setup):
        task, model = fgd_setup
        before = len(model._visited_counts)
        model(task.sample_features(4))
        assert len(model._visited_counts) == before + 4
        assert model.mean_visited > 0

    def test_reasonable_top1_quality(self, fgd_setup):
        task, model = fgd_setup
        features = task.sample_features(24)
        agreement = np.mean(
            model.predict(features) == task.classifier.predict(features)
        )
        assert agreement >= 0.5  # graph search is approximate

    def test_rejects_bad_params(self, small_task):
        with pytest.raises(ValueError):
            FGDClassifier(small_task.classifier, degree=0)
        with pytest.raises(ValueError):
            FGDClassifier(small_task.classifier, beam_width=0)


class TestCost:
    def test_cost_uses_measured_visits(self, fgd_setup):
        task, model = fgd_setup
        model(task.sample_features(2))
        cost = model.cost(batch_size=1)
        dim = task.classifier.hidden_dim + 2
        assert cost.fp_flops == pytest.approx(2.0 * model.mean_visited * dim)

    def test_cost_fallback_without_measurements(self, small_task):
        model = FGDClassifier(small_task.classifier, num_candidates=8, rng=0)
        cost = model.cost()
        assert cost.fp_flops > 0
