"""Differential test harness for the process-parallel serving engine.

The contract under test: :class:`ParallelShardedEngine` is the *same
function* as the sequential ``ShardedClassifier`` — every output plane,
candidate list and top-k reduce is bit-identical, across candidate
selectors, screening compute dtypes and shard counts.  The engine ships
because these tests say so, not because the implementation looks right.

Also covered: single-node equivalence (a 1-shard parallel engine is the
single-node ``ApproximateScreeningClassifier`` behind process
indirection), the spawn start method, I/O-plane regrowth, and the
worker-failure contract (``WorkerDied``, never a hang; every shared
segment released).
"""

import subprocess
import sys
import textwrap
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.core.candidates import CandidateSelector
from repro.data import make_task
from repro.distributed import ShardedClassifier, WorkerDied
from repro.utils.rng import spawn_rngs

# A reintroduced protocol hang must fail fast, not stall the suite
# (enforced when pytest-timeout is installed, as in CI).
pytestmark = pytest.mark.timeout(600)

NUM_CATEGORIES = 600
HIDDEN_DIM = 32
PROJECTION_DIM = 8
CANDIDATES_PER_SHARD = 8
TRAIN_RNG = 5

SELECTORS = ("top_m", "threshold")
DTYPES = ("float64", "float32")
SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(16, rng=6)


@pytest.fixture(scope="module")
def calibration(task):
    return task.sample_features(128, rng=9)


@pytest.fixture(scope="module")
def train_features(task):
    return task.sample_features(256, rng=7)


@pytest.fixture(scope="module")
def model_zoo(task, calibration, train_features):
    """Trained sequential models, one per (shards, dtype, selector).

    Training is deterministic in (shards, dtype), so the zoo is the
    single source of truth both backends are built from.
    """
    zoo = {}
    for shards in SHARD_COUNTS:
        for dtype in DTYPES:
            for selector_mode in SELECTORS:
                model = ShardedClassifier(
                    task.classifier,
                    num_shards=shards,
                    config=ScreeningConfig(
                        projection_dim=PROJECTION_DIM, compute_dtype=dtype
                    ),
                )
                model.train(
                    train_features,
                    candidates_per_shard=CANDIDATES_PER_SHARD,
                    rng=TRAIN_RNG,
                )
                if selector_mode == "threshold":
                    for shard in model.shards:
                        selector = CandidateSelector(
                            mode="threshold",
                            num_candidates=CANDIDATES_PER_SHARD,
                        )
                        selector.calibrate(
                            shard.screener.approximate_logits(calibration)
                        )
                        shard.selector = selector
                zoo[(shards, dtype, selector_mode)] = model
    return zoo


def assert_outputs_identical(actual, expected):
    """Bitwise equality of everything a ScreenedOutput exposes."""
    assert actual.logits.dtype == expected.logits.dtype
    assert np.array_equal(actual.logits, expected.logits)
    assert np.array_equal(actual.approximate_logits, expected.approximate_logits)
    assert actual.candidates.batch_size == expected.candidates.batch_size
    for mine, theirs in zip(actual.candidates, expected.candidates):
        assert np.array_equal(mine, theirs)
    assert actual.exact_count == expected.exact_count


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("selector_mode", SELECTORS)
class TestParallelMatchesSequential:
    def test_bit_identical(self, model_zoo, features, selector_mode, dtype, shards):
        model = model_zoo[(shards, dtype, selector_mode)]
        sequential = model.forward(features)
        with model.parallel() as engine:
            parallel = engine.forward(features)
            assert_outputs_identical(parallel, sequential)

            seq_indices, seq_scores = model.top_k(features, k=7)
            par_indices, par_scores = engine.top_k(features, k=7)
            assert np.array_equal(par_indices, seq_indices)
            assert np.array_equal(par_scores, seq_scores)

            assert np.array_equal(
                engine.predict(features), model.predict(features)
            )


class TestParallelEngineBehavior:
    def test_repeated_calls_are_stable(self, model_zoo, features):
        """Buffer reuse across calls must not leak state between batches."""
        model = model_zoo[(2, "float64", "top_m")]
        with model.parallel() as engine:
            first = engine.forward(features)
            shuffled = features[::-1].copy()
            middle = engine.forward(shuffled)
            second = engine.forward(features)
            assert np.array_equal(first.logits, second.logits)
            assert not np.array_equal(first.logits, middle.logits)

    def test_io_plane_regrowth(self, model_zoo, task):
        """Batches beyond max_batch reallocate the shared I/O planes."""
        model = model_zoo[(2, "float64", "top_m")]
        small = task.sample_features(3, rng=21)
        large = task.sample_features(40, rng=22)
        with model.parallel(max_batch=4) as engine:
            assert_outputs_identical(engine.forward(small), model.forward(small))
            assert_outputs_identical(engine.forward(large), model.forward(large))
            # The outgrown segments were unlinked at regrowth time.
            live = {engine._io_input.name, engine._io_output.name}
            for name in set(engine.segment_names()) - live:
                if name in {p.name for p in engine._param_packs}:
                    continue
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)

    def test_spawn_start_method(self, model_zoo, features):
        """Fresh-interpreter workers compute the same bits as forked ones."""
        model = model_zoo[(2, "float64", "top_m")]
        sequential = model.forward(features)
        with model.parallel(start_method="spawn") as engine:
            assert_outputs_identical(engine.forward(features), sequential)

    def test_single_vector_input(self, model_zoo, task):
        model = model_zoo[(2, "float64", "top_m")]
        vector = task.sample_features(1, rng=23)[0]
        with model.parallel() as engine:
            assert_outputs_identical(engine.forward(vector), model.forward(vector))

    def test_untrained_model_rejected(self, task):
        model = ShardedClassifier(task.classifier, num_shards=2)
        with pytest.raises(RuntimeError, match="train"):
            model.parallel()

    def test_forward_after_close_rejected(self, model_zoo, features):
        model = model_zoo[(2, "float64", "top_m")]
        engine = model.parallel()
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.forward(features)


class TestSingleNodeEquivalence:
    """A 1-shard fleet is the single-node pipeline, bit for bit."""

    def test_parallel_matches_single_node(
        self, task, features, model_zoo, train_features
    ):
        model = model_zoo[(1, "float64", "top_m")]
        # Rebuild the single-node classifier exactly as train() does for
        # its one shard: same spawned rng, same config, same solver.
        screener = train_screener(
            task.classifier,
            train_features,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
            solver="lstsq",
            rng=spawn_rngs(TRAIN_RNG, 1)[0],
        )
        single = ApproximateScreeningClassifier(
            task.classifier, screener, num_candidates=CANDIDATES_PER_SHARD
        )
        expected = single.forward(features)
        with model.parallel() as engine:
            assert_outputs_identical(engine.forward(features), expected)

    def test_candidate_entries_match_exact_classifier(
        self, task, features, model_zoo
    ):
        """Across shard counts, every candidate entry equals the exact
        full-classifier score (the sharded pipelines compute them from
        sliced planes, so this is allclose, not bitwise)."""
        exact = task.classifier.logits(features)
        for shards in SHARD_COUNTS:
            model = model_zoo[(shards, "float64", "top_m")]
            with model.parallel() as engine:
                output = engine.forward(features)
            for row, indices in enumerate(output.candidates):
                assert np.allclose(
                    output.logits[row, indices],
                    exact[row, indices],
                    rtol=1e-10,
                    atol=1e-10,
                )


class TestWorkerFailure:
    """Fail-fast mode (``max_restarts=0``): the pre-supervision contract.

    The supervised recovery paths (respawn, retry, degraded results)
    are covered by ``tests/test_fault_tolerance.py``.
    """

    def test_killed_worker_raises_not_hangs(self, model_zoo, features):
        model = model_zoo[(2, "float64", "top_m")]
        engine = model.parallel(max_restarts=0)
        try:
            engine.forward(features)
            engine.workers[1].process.kill()
            with pytest.raises(WorkerDied) as excinfo:
                engine.forward(features)
            assert excinfo.value.worker == "enmc-shard-1"
            assert engine.closed
        finally:
            engine.close()
        for name in engine.segment_names():
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_killed_worker_respawns_by_default(self, model_zoo, features):
        """With the default restart budget the same kill is absorbed:
        the replacement worker rebuilds from the shared segments and
        the fleet keeps answering bit-identically."""
        model = model_zoo[(2, "float64", "top_m")]
        sequential = model.forward(features)
        with model.parallel() as engine:
            engine.workers[1].process.kill()
            assert_outputs_identical(engine.forward(features), sequential)
            assert engine.restarts[1] == 1
            assert not engine.closed

    def test_death_mid_request_raises(self, model_zoo, features):
        """A worker that dies after the batch was scattered (request in
        flight, no reply coming) must surface as WorkerDied."""
        model = model_zoo[(2, "float64", "top_m")]
        engine = model.parallel(max_restarts=0)
        try:
            engine.forward(features)
            # Test hook: the worker exits without replying, exactly as a
            # crash between recv() and send() would.
            engine.workers[0].post("die", 17)
            with pytest.raises(WorkerDied):
                engine.forward(features)
            assert engine.closed
        finally:
            engine.close()

    def test_close_is_idempotent_and_releases_segments(self, model_zoo, features):
        model = model_zoo[(2, "float64", "top_m")]
        engine = model.parallel()
        engine.forward(features)
        names = engine.segment_names()
        engine.close()
        engine.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_no_resource_tracker_warnings(self, tmp_path):
        """Full lifecycle — including a worker kill — leaks nothing.

        Runs in a subprocess with ``-W error`` so any stray
        ResourceWarning (and the resource_tracker's stderr complaints
        about leaked shared_memory segments) fails the test.
        """
        script = tmp_path / "lifecycle.py"
        script.write_text(
            textwrap.dedent(
                """
                import numpy as np
                from repro.core import ScreeningConfig
                from repro.data import make_task
                from repro.distributed import ShardedClassifier, WorkerDied

                def main():
                    task = make_task(num_categories=200, hidden_dim=32, rng=4)
                    model = ShardedClassifier(
                        task.classifier, num_shards=2,
                        config=ScreeningConfig(projection_dim=8),
                    )
                    model.train(task.sample_features(128),
                                candidates_per_shard=8, rng=5)
                    features = task.sample_features(4, rng=6)

                    # Clean lifecycle.
                    with model.parallel() as engine:
                        engine.forward(features)

                    # Kill-mid-service lifecycle (fail-fast mode).
                    engine = model.parallel(max_restarts=0)
                    engine.forward(features)
                    engine.workers[0].process.kill()
                    try:
                        engine.forward(features)
                    except WorkerDied:
                        pass
                    else:
                        raise SystemExit("expected WorkerDied")
                    print("LIFECYCLE-OK")

                if __name__ == "__main__":
                    main()
                """
            )
        )
        result = subprocess.run(
            [sys.executable, "-W", "error", str(script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "LIFECYCLE-OK" in result.stdout
        for needle in ("resource_tracker", "leaked", "Warning"):
            assert needle not in result.stderr, result.stderr[-2000:]
