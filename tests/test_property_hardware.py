"""Property-based tests over the functional hardware path.

Randomized programs and workloads; invariants that must hold for *any*
input, not just the golden cases.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.enmc.config import DEFAULT_CONFIG
from repro.enmc.controller import ENMCController
from repro.isa import Program, decode, encode
from repro.isa.instruction import (
    Barrier,
    Compute,
    Filter,
    Init,
    Load,
    Move,
    Nop,
    Query,
    Return,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId


# ----------------------------------------------------------------------
# random-but-valid screening programs
# ----------------------------------------------------------------------
@st.composite
def screening_programs(draw):
    """A random valid tiled screening program plus its memory bindings."""
    k = draw(st.integers(2, 12))
    num_tiles = draw(st.integers(1, 4))
    rows_per_tile = draw(st.integers(1, 16))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)

    bindings = {0x10: (rng.standard_normal(k), 4)}
    instructions = [
        Init(RegisterId.THRESHOLD, ENMCController.encode_threshold(
            draw(st.floats(-5, 5, allow_nan=False))
        )),
        Load(BufferId.FEATURE_INT4, 0x10),
    ]
    for tile in range(num_tiles):
        address = 0x1000 + tile * 0x100
        bindings[address] = (rng.standard_normal((rows_per_tile, k)), 4)
        instructions.append(Load(BufferId.WEIGHT_INT4, address))
        instructions.append(
            Compute(Opcode.MUL_ADD_INT4, BufferId.FEATURE_INT4,
                    BufferId.WEIGHT_INT4)
        )
        if draw(st.booleans()):
            instructions.append(Move(BufferId.OUTPUT, BufferId.PSUM_INT4))
            instructions.append(Return())
        instructions.append(Filter(BufferId.PSUM_INT4))
        if draw(st.booleans()):
            instructions.append(Barrier())
    instructions.append(Return())
    return instructions, bindings, num_tiles, rows_per_tile


class TestRandomPrograms:
    @given(screening_programs())
    @settings(max_examples=25, deadline=None)
    def test_execute_never_corrupts(self, case):
        instructions, bindings, num_tiles, rows_per_tile = case
        controller = ENMCController(DEFAULT_CONFIG)
        for address, (array, bits) in bindings.items():
            controller.memory.bind(address, array, bits)
        trace = controller.execute(Program(instructions))

        # Invariants:
        assert trace.instructions_executed == len(instructions)
        assert trace.count(Opcode.FILTER) == num_tiles
        # Candidate indices lie inside the screened category range.
        total_rows = num_tiles * rows_per_tile
        assert all(0 <= idx < total_rows for idx in trace.candidate_indices)
        # Candidate indices are unique and increasing across tiles.
        assert trace.candidate_indices == sorted(set(trace.candidate_indices))
        # DRAM accounting is non-negative and matches binding sizes.
        expected_bytes = sum(
            a.size * b / 8.0 for a, b in bindings.values()
        )
        assert trace.dram_bytes <= expected_bytes + 1e-9
        assert trace.total_cycles > 0

    @given(screening_programs())
    @settings(max_examples=15, deadline=None)
    def test_wire_roundtrip_execution_identical(self, case):
        instructions, bindings, *_ = case
        a = ENMCController(DEFAULT_CONFIG)
        b = ENMCController(DEFAULT_CONFIG)
        for address, (array, bits) in bindings.items():
            a.memory.bind(address, array, bits)
            b.memory.bind(address, array, bits)
        direct = a.execute(Program(instructions))
        roundtripped = Program([decode(encode(i)) for i in instructions])
        wired = b.execute(roundtripped)
        assert direct.candidate_indices == wired.candidate_indices
        assert len(direct.outputs) == len(wired.outputs)
        for x, y in zip(direct.outputs, wired.outputs):
            assert np.array_equal(x, y)


class TestRegisterProperties:
    @given(st.floats(-30000, 30000, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_threshold_roundtrip_precision(self, value):
        controller = ENMCController(DEFAULT_CONFIG)
        controller.registers[RegisterId.THRESHOLD] = \
            ENMCController.encode_threshold(value)
        assert controller._threshold() == pytest.approx(value, abs=1 / 65536)

    @given(st.sampled_from(list(RegisterId)),
           st.integers(0, (1 << 64) - 1))
    @settings(max_examples=40, deadline=None)
    def test_init_query_consistency(self, register, value):
        controller = ENMCController(DEFAULT_CONFIG)
        trace = controller.execute(Program([
            Init(register, value), Query(register), Return(),
        ]))
        assert (register.name, value) in trace.register_reads


class TestEndToEndProperty:
    @given(st.integers(0, 2**16), st.integers(1, 6))
    @settings(max_examples=10, deadline=None)
    def test_candidate_entries_always_exact(self, seed, batch_size):
        """For any random task/batch: candidate positions of the mixed
        output equal the exact classifier's logits."""
        from repro.core import (
            ApproximateScreeningClassifier,
            ScreeningConfig,
            train_screener,
        )
        from repro.data import make_task

        task = make_task(num_categories=300, hidden_dim=24, rng=seed)
        screener = train_screener(
            task.classifier, task.sample_features(128),
            config=ScreeningConfig(projection_dim=6), solver="lstsq",
            rng=seed + 1,
        )
        model = ApproximateScreeningClassifier(
            task.classifier, screener, num_candidates=16
        )
        features = task.sample_features(batch_size, rng=seed + 2)
        output = model(features)
        exact = task.classifier.logits(features)
        for row, indices in enumerate(output.candidates):
            assert np.allclose(
                output.logits[row, indices], exact[row, indices], atol=1e-9
            )
