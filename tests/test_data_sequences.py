import numpy as np
import pytest

from repro.data import SequenceConfig, SyntheticCorpus, make_task
from repro.metrics import perplexity_from_proba


@pytest.fixture(scope="module")
def corpus():
    task = make_task(num_categories=1000, hidden_dim=48, rng=15)
    return SyntheticCorpus(task, SequenceConfig(num_clusters=20), rng=16)


class TestConfig:
    def test_rejects_bad_stickiness(self):
        with pytest.raises(ValueError):
            SequenceConfig(cluster_stickiness=1.5)

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            SequenceConfig(state_decay=1.0)


class TestSequences:
    def test_shapes(self, corpus):
        sequences = corpus.sample_sequences(4, 10, rng=1)
        assert sequences.shape == (4, 10)
        assert sequences.min() >= 0
        assert sequences.max() < 1000

    def test_reproducible(self, corpus):
        a = corpus.sample_sequences(2, 8, rng=5)
        b = corpus.sample_sequences(2, 8, rng=5)
        assert np.array_equal(a, b)

    def test_cluster_stickiness(self, corpus):
        """Consecutive tokens share a cluster far more often than
        chance (20 clusters → chance ≈ head-skewed but well below the
        configured 0.8)."""
        sequences = corpus.sample_sequences(16, 32, rng=2)
        same = 0
        total = 0
        clusters = corpus._cluster_of
        for row in sequences:
            for a, b in zip(row, row[1:]):
                same += clusters[a] == clusters[b]
                total += 1
        assert same / total > 0.5

    def test_zipf_marginals(self, corpus):
        sequences = corpus.sample_sequences(32, 32, rng=3)
        head = np.mean(sequences < 100)  # top 10% of 1000
        assert head > 0.3


class TestFeatures:
    def test_feature_target_shapes(self, corpus):
        sequences = corpus.sample_sequences(3, 9, rng=4)
        features, targets = corpus.features_for_sequences(sequences, rng=5)
        assert features.shape == (3 * 8, 48)
        assert targets.shape == (3 * 8,)

    def test_too_short_rejected(self, corpus):
        with pytest.raises(ValueError, match="length"):
            corpus.features_for_sequences(np.array([[1]]))

    def test_context_beats_unigram(self, corpus):
        """Exact-classifier perplexity on corpus features is much
        better than the unigram (prior-only) baseline — the context
        structure is real."""
        features, targets = corpus.evaluation_batch(24, 12, rng=6)
        proba = corpus.task.classifier.predict_proba(features)
        model_ppl = perplexity_from_proba(proba, targets)
        prior = corpus.task._prior
        unigram = np.tile(prior, (len(targets), 1))
        unigram_ppl = perplexity_from_proba(unigram, targets)
        assert model_ppl < 0.5 * unigram_ppl

    def test_screened_perplexity_tracks_exact(self, corpus):
        """The end-to-end LM story on sequential data: screening with a
        generous budget preserves corpus perplexity within ~20%."""
        from repro.core import (
            ApproximateScreeningClassifier,
            ScreeningConfig,
            train_screener,
        )

        task = corpus.task
        screener = train_screener(
            task.classifier, task.sample_features(512, rng=7),
            config=ScreeningConfig.from_scale(48, 0.25),
            solver="lstsq", rng=8,
        )
        model = ApproximateScreeningClassifier(
            task.classifier, screener,
            num_candidates=130,  # 13% of 1000, the paper's LM budget
        )
        features, targets = corpus.evaluation_batch(16, 10, rng=9)
        exact_ppl = perplexity_from_proba(
            task.classifier.predict_proba(features), targets
        )
        screened_ppl = perplexity_from_proba(
            model.predict_proba(features), targets
        )
        assert screened_ppl < 1.2 * exact_ppl
