import pytest

from repro.core.metrics import (
    cost_of_full_classification,
    cost_of_screened_classification,
)
from repro.data.registry import get_workload
from repro.host import ENMCSystem, HostOnlySystem, XEON_8280
from repro.host.cpu import CPUModel
from repro.host.memctrl import HostMemoryController
from repro.isa import Program, assemble
from repro.models.base import FrontEndReport


class TestCPUModel:
    def test_peak_flops(self):
        # 28 cores × 2.7 GHz × 64 FLOPs/cycle ≈ 4.8 TFLOP/s.
        assert XEON_8280.peak_flops == pytest.approx(4.8384e12)

    def test_stream_bandwidth_derated(self):
        assert XEON_8280.stream_bandwidth == pytest.approx(96e9)

    def test_memory_bound_kernel(self):
        # Full XC: intensity ~0.5 FLOPs/byte, far below the ridge.
        cost = cost_of_full_classification(267_744, 512)
        seconds = XEON_8280.kernel_seconds(
            flops=cost.fp_flops, stream_bytes=cost.fp_bytes
        )
        memory_time = cost.fp_bytes / XEON_8280.stream_bandwidth
        assert seconds == pytest.approx(
            memory_time + XEON_8280.invocation_overhead_s
        )

    def test_compute_bound_kernel(self):
        seconds = XEON_8280.kernel_seconds(flops=1e12, stream_bytes=1e6)
        assert seconds == pytest.approx(
            1e12 / XEON_8280.peak_flops + XEON_8280.invocation_overhead_s
        )

    def test_full_classification_scales_linearly(self):
        t1 = XEON_8280.full_classification_seconds(100_000, 512)
        t2 = XEON_8280.full_classification_seconds(200_000, 512)
        assert t2 > 1.8 * t1

    def test_screened_faster_than_full(self):
        workload = get_workload("Transformer-W268K")
        full = XEON_8280.full_classification_seconds(
            workload.num_categories, workload.hidden_dim
        )
        cost = cost_of_screened_classification(
            workload.num_categories, workload.hidden_dim, 128, 1000
        )
        screened = XEON_8280.screened_classification_seconds(cost, gathers=1000)
        assert 3 < full / screened < 40

    def test_gather_mlp_bandwidth_bound(self):
        """Many gathers must be bandwidth-, not latency-, bound."""
        cpu = XEON_8280
        few = cpu.kernel_seconds(flops=0, stream_bytes=0, gathers=10,
                                 gather_bytes=10 * 2048)
        many = cpu.kernel_seconds(flops=0, stream_bytes=0, gathers=10_000,
                                  gather_bytes=10_000 * 2048)
        assert many < 1000 * (few - cpu.invocation_overhead_s) + \
            cpu.invocation_overhead_s + 1e-3

    def test_roofline_point(self):
        cost = cost_of_full_classification(100_000, 512)
        intensity, attained = XEON_8280.roofline_point(cost)
        assert intensity < XEON_8280.ridge_intensity
        assert attained < XEON_8280.peak_flops

    def test_custom_model(self):
        slow = CPUModel(cores=1, ideal_bandwidth=10e9)
        assert slow.peak_flops < XEON_8280.peak_flops


class TestMemoryController:
    def test_pack_and_deliver(self):
        memctrl = HostMemoryController()
        program = Program(assemble(
            "INIT vocab_size, 100\nLDR weight_int4, 0x0\nRETURN"
        ))
        packet = memctrl.pack(program)
        assert packet.command_slots == 3
        assert packet.dq_bursts == 2  # INIT + LDR carry data
        cycles = memctrl.delivery_cycles(packet)
        assert cycles == 3 + 2 * 4
        assert memctrl.packets_sent == 1

    def test_delivery_seconds(self):
        memctrl = HostMemoryController()
        program = Program(assemble("RETURN"))
        seconds = memctrl.delivery_seconds(memctrl.pack(program))
        assert seconds == pytest.approx(1 / 1.2e9)

    def test_channel_range_checked(self):
        memctrl = HostMemoryController(channels=2)
        program = Program(assemble("RETURN"))
        with pytest.raises(ValueError):
            memctrl.pack(program, channel=5)


class TestSystems:
    @pytest.fixture()
    def front_end(self):
        return FrontEndReport(parameters=20_000_000, flops=40e6)

    def test_classification_dominates_host_only(self, front_end):
        workload = get_workload("XMLCNN-670K")
        result = HostOnlySystem().run(workload, front_end)
        assert result.classification_fraction > 0.8

    def test_screened_host_faster(self, front_end):
        workload = get_workload("Transformer-W268K")
        system = HostOnlySystem()
        full = system.run(workload, front_end, screened=False)
        screened = system.run(
            workload, front_end, screened=True,
            candidates_per_row=workload.default_candidates,
        )
        assert screened.seconds < full.seconds

    def test_enmc_system_fastest(self, front_end):
        workload = get_workload("Transformer-W268K")
        m = workload.default_candidates
        host = HostOnlySystem().run(
            workload, front_end, screened=True, candidates_per_row=m
        )
        enmc = ENMCSystem().run(workload, front_end, candidates_per_row=m)
        assert enmc.classification_seconds < host.classification_seconds

    def test_decode_steps_multiply_classification(self, front_end):
        workload = get_workload("GNMT-E32K")  # 25 decode steps
        result = HostOnlySystem().run(workload, front_end)
        single = XEON_8280.full_classification_seconds(
            workload.num_categories, workload.hidden_dim, 1
        )
        assert result.classification_seconds == pytest.approx(25 * single)

    def test_batch_validation(self, front_end):
        workload = get_workload("GNMT-E32K")
        with pytest.raises(ValueError):
            HostOnlySystem().run(workload, front_end, batch_size=0)
