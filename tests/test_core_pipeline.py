import numpy as np
import pytest

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    FullClassifier,
)
from repro.core.metrics import candidate_recall


@pytest.fixture()
def pipeline(small_task, small_screener):
    return ApproximateScreeningClassifier(
        small_task.classifier, small_screener, num_candidates=48
    )


class TestConstruction:
    def test_rejects_category_mismatch(self, small_screener):
        other = FullClassifier.random(100, 64, rng=0)
        with pytest.raises(ValueError, match="categories"):
            ApproximateScreeningClassifier(other, small_screener)

    def test_rejects_hidden_mismatch(self, small_task, small_screener):
        other = FullClassifier.random(2000, 32, rng=0)
        with pytest.raises(ValueError, match="hidden"):
            ApproximateScreeningClassifier(other, small_screener)

    def test_default_selector_topm(self, pipeline):
        assert pipeline.selector.mode == "top_m"


class TestForward:
    def test_output_shapes(self, pipeline, small_task):
        out = pipeline(small_task.sample_features(5))
        assert out.logits.shape == (5, 2000)
        assert out.approximate_logits.shape == (5, 2000)
        assert out.batch_size == 5
        assert out.num_categories == 2000

    def test_candidate_entries_are_exact(self, pipeline, small_task):
        features = small_task.sample_features(4)
        out = pipeline(features)
        exact = small_task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_non_candidate_entries_are_approximate(self, pipeline, small_task):
        features = small_task.sample_features(2)
        out = pipeline(features)
        for row, indices in enumerate(out.candidates):
            mask = np.ones(2000, dtype=bool)
            mask[indices] = False
            assert np.array_equal(
                out.logits[row, mask], out.approximate_logits[row, mask]
            )

    def test_exact_fraction(self, pipeline, small_task):
        out = pipeline(small_task.sample_features(3))
        assert out.exact_fraction == pytest.approx(48 / 2000)

    def test_structured_task_recall(self, pipeline, small_task):
        features = small_task.sample_features(32)
        out = pipeline(features)
        exact = small_task.classifier.logits(features)
        assert candidate_recall(exact, out, k=1) >= 0.95

    def test_predictions_match_full_on_structured_task(
        self, pipeline, small_task
    ):
        features = small_task.sample_features(32)
        assert np.mean(
            pipeline.predict(features)
            == small_task.classifier.predict(features)
        ) >= 0.95

    def test_gathered_forward_identical(self, pipeline, small_task):
        features = small_task.sample_features(6)
        per_row = pipeline.forward(features)
        gathered = pipeline.forward_gathered(features)
        assert np.allclose(per_row.logits, gathered.logits, atol=1e-12)
        for a, b in zip(per_row.candidates, gathered.candidates):
            assert np.array_equal(a, b)

    def test_gathered_forward_empty_candidates(self, small_task, small_screener):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=1e12
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        out = model.forward_gathered(small_task.sample_features(2))
        assert out.exact_count == 0

    def test_empty_candidates_row_handled(self, small_task, small_screener):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=1e12
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        out = model(small_task.sample_features(2))
        assert out.exact_count == 0
        assert np.array_equal(out.logits, out.approximate_logits)


class TestProbabilities:
    def test_predict_proba_distribution(self, pipeline, small_task):
        proba = pipeline.predict_proba(small_task.sample_features(3))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_sigmoid_normalization_used(self, small_screener):
        import copy

        from repro.data import make_task

        task = make_task(
            num_categories=2000, hidden_dim=64, rng=1, normalization="sigmoid"
        )
        from repro.core import train_screener, ScreeningConfig

        screener = train_screener(
            task.classifier, task.sample_features(256),
            config=ScreeningConfig(projection_dim=16), solver="lstsq", rng=0,
        )
        model = ApproximateScreeningClassifier(task.classifier, screener)
        proba = model.predict_proba(task.sample_features(2))
        assert np.all((0 <= proba) & (proba <= 1))
        assert proba.sum(axis=1)[0] != pytest.approx(1.0)

    def test_taylor_softmax_option(self, small_task, small_screener):
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener,
            num_candidates=48, softmax_taylor_order=4,
        )
        features = small_task.sample_features(3)
        proba = model.predict_proba(features)
        assert np.allclose(proba.sum(axis=1), 1.0)
        exact_model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, num_candidates=48
        )
        # SFU approximation keeps the argmax.
        assert np.array_equal(
            np.argmax(proba, axis=1),
            np.argmax(exact_model.predict_proba(features), axis=1),
        )

    def test_top_k(self, pipeline, small_task):
        features = small_task.sample_features(2)
        top = pipeline.top_k(features, 5)
        assert top.shape == (2, 5)
        out = pipeline(features)
        assert np.array_equal(top[:, 0], np.argmax(out.logits, axis=1))
