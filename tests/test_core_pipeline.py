import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    FullClassifier,
)
from repro.core.metrics import candidate_recall
from repro.core.pipeline import ScreenedOutput


@pytest.fixture()
def pipeline(small_task, small_screener):
    return ApproximateScreeningClassifier(
        small_task.classifier, small_screener, num_candidates=48
    )


class TestConstruction:
    def test_rejects_category_mismatch(self, small_screener):
        other = FullClassifier.random(100, 64, rng=0)
        with pytest.raises(ValueError, match="categories"):
            ApproximateScreeningClassifier(other, small_screener)

    def test_rejects_hidden_mismatch(self, small_task, small_screener):
        other = FullClassifier.random(2000, 32, rng=0)
        with pytest.raises(ValueError, match="hidden"):
            ApproximateScreeningClassifier(other, small_screener)

    def test_default_selector_topm(self, pipeline):
        assert pipeline.selector.mode == "top_m"


class TestForward:
    def test_output_shapes(self, pipeline, small_task):
        out = pipeline(small_task.sample_features(5))
        assert out.logits.shape == (5, 2000)
        assert out.approximate_logits.shape == (5, 2000)
        assert out.batch_size == 5
        assert out.num_categories == 2000

    def test_candidate_entries_are_exact(self, pipeline, small_task):
        features = small_task.sample_features(4)
        out = pipeline(features)
        exact = small_task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_non_candidate_entries_are_approximate(self, pipeline, small_task):
        features = small_task.sample_features(2)
        out = pipeline(features)
        for row, indices in enumerate(out.candidates):
            mask = np.ones(2000, dtype=bool)
            mask[indices] = False
            assert np.array_equal(
                out.logits[row, mask], out.approximate_logits[row, mask]
            )

    def test_exact_fraction(self, pipeline, small_task):
        out = pipeline(small_task.sample_features(3))
        assert out.exact_fraction == pytest.approx(48 / 2000)

    def test_structured_task_recall(self, pipeline, small_task):
        features = small_task.sample_features(32)
        out = pipeline(features)
        exact = small_task.classifier.logits(features)
        assert candidate_recall(exact, out, k=1) >= 0.95

    def test_predictions_match_full_on_structured_task(
        self, pipeline, small_task
    ):
        features = small_task.sample_features(32)
        assert np.mean(
            pipeline.predict(features)
            == small_task.classifier.predict(features)
        ) >= 0.95

    def test_gathered_forward_identical(self, pipeline, small_task):
        features = small_task.sample_features(6)
        per_row = pipeline.forward(features)
        gathered = pipeline.forward_gathered(features)
        assert np.allclose(per_row.logits, gathered.logits, atol=1e-12)
        for a, b in zip(per_row.candidates, gathered.candidates):
            assert np.array_equal(a, b)

    def test_gathered_forward_empty_candidates(self, small_task, small_screener):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=1e12
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        out = model.forward_gathered(small_task.sample_features(2))
        assert out.exact_count == 0

    def test_empty_candidates_row_handled(self, small_task, small_screener):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=1e12
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        out = model(small_task.sample_features(2))
        assert out.exact_count == 0
        assert np.array_equal(out.logits, out.approximate_logits)


class TestFaithfulVsVectorized:
    """The vectorized default and the per-row reference mode must be
    numerically identical — same candidates, same mixed logits, and
    bit-identical approximate scores (the screening and selection
    stages are shared; only the exact-phase arithmetic differs)."""

    def _assert_identical(self, model, features):
        faithful = model.forward(features, faithful=True)
        default = model.forward(features)
        assert default.logits.dtype == faithful.logits.dtype
        assert np.allclose(faithful.logits, default.logits, rtol=0, atol=1e-12)
        assert np.array_equal(
            faithful.approximate_logits, default.approximate_logits
        )
        for a, b in zip(faithful.candidates, default.candidates):
            assert np.array_equal(a, b)

    def test_top_m(self, pipeline, small_task):
        self._assert_identical(pipeline, small_task.sample_features(7))

    def test_threshold(self, small_task, small_screener):
        selector = CandidateSelector(mode="threshold", num_candidates=32)
        calibration = small_screener.approximate_logits(
            small_task.sample_features(64)
        )
        selector.calibrate(calibration)
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        self._assert_identical(model, small_task.sample_features(7))

    def test_threshold_with_empty_rows(self, small_task, small_screener):
        # Pick a cutoff between the per-row maxima so some rows select
        # candidates and others select none.
        features = small_task.sample_features(8)
        row_max = small_screener.approximate_logits(features).max(axis=1)
        cutoff = float(np.median(row_max))
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=cutoff
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        counts = model.forward(features).candidates.counts
        assert (counts == 0).any() and (counts > 0).any()
        self._assert_identical(model, features)

    def test_all_rows_empty(self, small_task, small_screener):
        selector = CandidateSelector(
            mode="threshold", num_candidates=1, threshold=1e12
        )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        self._assert_identical(model, small_task.sample_features(3))

    @given(
        seed=st.integers(0, 2**31 - 1),
        mode=st.sampled_from(["top_m", "threshold"]),
        batch=st.integers(1, 9),
    )
    @settings(max_examples=25, deadline=None)
    def test_identity_property(
        self, small_task, small_screener, seed, mode, batch
    ):
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((batch, small_task.hidden_dim))
        if mode == "top_m":
            selector = CandidateSelector(mode="top_m", num_candidates=16)
        else:
            scores = small_screener.approximate_logits(features)
            # Spread thresholds around the score range so examples hit
            # empty, partial, and full selections.
            cutoff = float(np.quantile(scores, rng.uniform(0.5, 1.0)))
            selector = CandidateSelector(
                mode="threshold", num_candidates=1, threshold=cutoff
            )
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, selector=selector
        )
        self._assert_identical(model, features)


class TestScreenedOutput:
    def test_lazy_approximate_logits_reconstruction(
        self, pipeline, small_task, small_screener
    ):
        features = small_task.sample_features(5)
        out = pipeline.forward(features)
        # The vectorized path mixes in place and rebuilds the pure
        # screener scores on demand; they must match exactly.
        assert np.array_equal(
            out.approximate_logits, small_screener.approximate_logits(features)
        )
        # Stable across repeated access and not the mixed plane.
        assert out.approximate_logits is out.approximate_logits
        if out.exact_count:
            assert not np.array_equal(out.logits, out.approximate_logits)

    def test_requires_candidates(self):
        with pytest.raises(ValueError, match="candidate"):
            ScreenedOutput(logits=np.zeros((1, 4)), approximate_logits=np.zeros((1, 4)))

    def test_requires_approx_or_restore(self, pipeline, small_task):
        candidates = pipeline.forward(small_task.sample_features(1)).candidates
        with pytest.raises(ValueError, match="restore"):
            ScreenedOutput(logits=np.zeros((1, 2000)), candidates=candidates)


class TestProbabilities:
    def test_predict_proba_distribution(self, pipeline, small_task):
        proba = pipeline.predict_proba(small_task.sample_features(3))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_sigmoid_normalization_used(self, small_screener):
        import copy

        from repro.data import make_task

        task = make_task(
            num_categories=2000, hidden_dim=64, rng=1, normalization="sigmoid"
        )
        from repro.core import train_screener, ScreeningConfig

        screener = train_screener(
            task.classifier, task.sample_features(256),
            config=ScreeningConfig(projection_dim=16), solver="lstsq", rng=0,
        )
        model = ApproximateScreeningClassifier(task.classifier, screener)
        proba = model.predict_proba(task.sample_features(2))
        assert np.all((0 <= proba) & (proba <= 1))
        assert proba.sum(axis=1)[0] != pytest.approx(1.0)

    def test_taylor_softmax_option(self, small_task, small_screener):
        model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener,
            num_candidates=48, softmax_taylor_order=4,
        )
        features = small_task.sample_features(3)
        proba = model.predict_proba(features)
        assert np.allclose(proba.sum(axis=1), 1.0)
        exact_model = ApproximateScreeningClassifier(
            small_task.classifier, small_screener, num_candidates=48
        )
        # SFU approximation keeps the argmax.
        assert np.array_equal(
            np.argmax(proba, axis=1),
            np.argmax(exact_model.predict_proba(features), axis=1),
        )

    def test_top_k(self, pipeline, small_task):
        features = small_task.sample_features(2)
        top = pipeline.top_k(features, 5)
        assert top.shape == (2, 5)
        out = pipeline(features)
        assert np.array_equal(top[:, 0], np.argmax(out.logits, axis=1))
