import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.quantize import (
    QuantizedTensor,
    Quantizer,
    quantization_error,
    quantize_symmetric,
)

finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestQuantizeSymmetric:
    def test_int4_range(self):
        q = quantize_symmetric(np.linspace(-1, 1, 100), bits=4)
        assert q.values.min() >= -8
        assert q.values.max() <= 7

    def test_scale_maps_max_to_qmax(self):
        q = quantize_symmetric(np.array([-2.0, 1.0, 2.0]), bits=4)
        assert q.values.max() == 7 or q.values.min() == -7  # |max|=2 → ±7

    def test_zero_tensor(self):
        q = quantize_symmetric(np.zeros(10), bits=4)
        assert np.all(q.values == 0)
        assert np.all(q.dequantize() == 0)

    def test_roundtrip_error_bounded_by_half_step(self):
        data = np.random.default_rng(0).standard_normal(100)
        q = quantize_symmetric(data, bits=8)
        step = float(np.asarray(q.scale))
        assert np.max(np.abs(q.dequantize() - data)) <= step / 2 + 1e-12

    def test_per_axis_scales(self):
        data = np.array([[1.0, 1.0], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=0)
        # Per-row scaling keeps both rows at full resolution.
        assert np.allclose(q.dequantize(), data, rtol=0.2)

    def test_per_tensor_crushes_small_rows(self):
        data = np.array([[0.01, 0.01], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=None)
        assert np.all(q.dequantize()[0] == 0.0)  # small row lost

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(4), bits=5)

    def test_nbytes_int4(self):
        q = quantize_symmetric(np.ones(16), bits=4)
        assert q.nbytes == 8.0  # 16 values * 0.5 B

    def test_int16_dtype(self):
        q = quantize_symmetric(np.ones(4), bits=16)
        assert q.values.dtype == np.int16

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_dequantized_never_exceeds_max_abs(self, data):
        q = quantize_symmetric(data, bits=4)
        limit = np.max(np.abs(data)) if data.size else 0.0
        assert np.all(np.abs(q.dequantize()) <= limit * (1 + 1e-9) + 1e-12)

    @given(finite_arrays, st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, data, bits):
        once = quantize_symmetric(data, bits=bits).dequantize()
        twice = quantize_symmetric(once, bits=bits).dequantize()
        assert np.allclose(once, twice)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_more_bits_never_worse(self, data):
        # The tolerance must scale with the input magnitude: both error
        # terms carry float64 round-off proportional to max|x|, so an
        # absolute 1e-12 slack spuriously fails at magnitudes ~1e4+
        # (e.g. [[16277.]], where both errors are ~round-off and err8
        # may exceed err4 by a few ulps of the magnitude).
        err4 = quantization_error(data, bits=4)
        err8 = quantization_error(data, bits=8)
        magnitude = float(np.max(np.abs(data))) if data.size else 0.0
        assert err8 <= err4 + 1e-12 * max(magnitude, 1.0)

    def test_more_bits_never_worse_large_magnitude_regression(self):
        # Pinned falsifying example from the property above: a single
        # value near the INT8 grid makes err8 pure round-off, slightly
        # above err4's round-off, breaking an absolute-tolerance check.
        data = np.array([[16277.0]])
        err4 = quantization_error(data, bits=4)
        err8 = quantization_error(data, bits=8)
        assert err8 <= err4 + 1e-12 * np.max(np.abs(data))


class TestQuantizer:
    def test_callable_returns_quantized_tensor(self):
        q = Quantizer(bits=4)
        out = q(np.ones(4))
        assert isinstance(out, QuantizedTensor)
        assert out.bits == 4

    def test_fake_quantize_shape_preserved(self):
        q = Quantizer(bits=4, axis=0)
        data = np.random.default_rng(1).standard_normal((5, 3))
        assert q.fake_quantize(data).shape == (5, 3)

    def test_repr(self):
        assert "bits=4" in repr(Quantizer(bits=4))


def test_quantization_error_zero_for_representable():
    # Values already on the INT4 grid: max|x| = 7 gives scale exactly 1.
    data = np.array([-7.0, -1.0, 0.0, 3.0, 7.0])
    assert quantization_error(data, bits=4) == pytest.approx(0.0, abs=1e-12)


def test_quantization_error_empty():
    assert quantization_error(np.array([]), bits=4) == 0.0
