import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.quantize import (
    QuantizedTensor,
    Quantizer,
    TileQuantized,
    quantization_error,
    quantize_symmetric,
    quantize_tiles,
)

finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestQuantizeSymmetric:
    def test_int4_range(self):
        q = quantize_symmetric(np.linspace(-1, 1, 100), bits=4)
        assert q.values.min() >= -8
        assert q.values.max() <= 7

    def test_scale_maps_max_to_qmax(self):
        q = quantize_symmetric(np.array([-2.0, 1.0, 2.0]), bits=4)
        assert q.values.max() == 7 or q.values.min() == -7  # |max|=2 → ±7

    def test_zero_tensor(self):
        q = quantize_symmetric(np.zeros(10), bits=4)
        assert np.all(q.values == 0)
        assert np.all(q.dequantize() == 0)

    def test_roundtrip_error_bounded_by_half_step(self):
        data = np.random.default_rng(0).standard_normal(100)
        q = quantize_symmetric(data, bits=8)
        step = float(np.asarray(q.scale))
        assert np.max(np.abs(q.dequantize() - data)) <= step / 2 + 1e-12

    def test_per_axis_scales(self):
        data = np.array([[1.0, 1.0], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=0)
        # Per-row scaling keeps both rows at full resolution.
        assert np.allclose(q.dequantize(), data, rtol=0.2)

    def test_per_tensor_crushes_small_rows(self):
        data = np.array([[0.01, 0.01], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=None)
        assert np.all(q.dequantize()[0] == 0.0)  # small row lost

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(4), bits=5)

    def test_nbytes_int4(self):
        q = quantize_symmetric(np.ones(16), bits=4)
        assert q.nbytes == 8.0  # 16 values * 0.5 B

    def test_int16_dtype(self):
        q = quantize_symmetric(np.ones(4), bits=16)
        assert q.values.dtype == np.int16

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_dequantized_never_exceeds_max_abs(self, data):
        q = quantize_symmetric(data, bits=4)
        limit = np.max(np.abs(data)) if data.size else 0.0
        assert np.all(np.abs(q.dequantize()) <= limit * (1 + 1e-9) + 1e-12)

    @given(finite_arrays, st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, data, bits):
        once = quantize_symmetric(data, bits=bits).dequantize()
        twice = quantize_symmetric(once, bits=bits).dequantize()
        assert np.allclose(once, twice)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_error_within_half_step_and_bound_tightens_with_bits(self, data):
        # The sound monotonicity statement.  Pointwise "more bits never
        # worse" is FALSE (see the pinned regression below): a value can
        # land closer to the coarse grid than to the fine one.  What
        # symmetric max-abs quantization does guarantee is that every
        # element's error — hence the RMSE — is at most half the grid
        # step scale_b = max|x| / qmax_b, and that bound shrinks as bits
        # grow.
        magnitude = float(np.max(np.abs(data)))
        for bits, qmax in ((4, 7), (8, 127)):
            scale = magnitude / qmax if magnitude > 0 else 1.0
            err = quantization_error(data, bits=bits)
            assert err <= scale / 2 * (1 + 1e-9) + 1e-12 * max(magnitude, 1.0)

    def test_more_bits_can_be_pointwise_worse_regression(self):
        # Falsifying example for the retired "more bits never worse"
        # property: with data [[11, 76]], INT4's grid (step 76/7)
        # reconstructs 11 -> 10.857 (error 0.143) while INT8's finer
        # grid (step 76/127) reconstructs 11 -> 10.772 (error 0.228).
        # Both errors respect their own half-step bound; the comparison
        # between them is simply not monotone in bits.
        data = np.array([[11.0, 76.0]])
        err4 = quantization_error(data, bits=4)
        err8 = quantization_error(data, bits=8)
        assert err8 > err4  # the counterexample is real
        assert err4 <= (76.0 / 7) / 2 * (1 + 1e-9)
        assert err8 <= (76.0 / 127) / 2 * (1 + 1e-9)

    def test_half_step_bound_large_magnitude_regression(self):
        # A single value near the grid: both errors are pure round-off;
        # the half-step bound holds with room to spare even at 1e4+
        # magnitudes where absolute tolerances fail.
        data = np.array([[16277.0]])
        assert quantization_error(data, bits=4) <= (16277.0 / 7) / 2 * (1 + 1e-9)
        assert quantization_error(data, bits=8) <= (16277.0 / 127) / 2 * (1 + 1e-9)


tile_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 6)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestQuantizeTiles:
    @given(tile_arrays, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_scale_shape_is_tile_count(self, data, tile_rows):
        q = quantize_tiles(data, bits=8, tile_rows=tile_rows)
        expected_tiles = -(-data.shape[0] // tile_rows)
        assert q.scales.shape == (expected_tiles,)
        assert q.num_tiles == expected_tiles
        assert q.values.shape == data.shape
        assert q.tile_rows == tile_rows

    @given(tile_arrays, st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_codes_within_symmetric_range(self, data, tile_rows):
        # Max-abs scaling maps onto [-qmax, qmax]; the asymmetric qmin
        # endpoint is unreachable (clipping is only a safety net).
        q = quantize_tiles(data, bits=8, tile_rows=tile_rows)
        assert q.values.dtype == np.int8
        assert q.values.min(initial=0) >= -127
        assert q.values.max(initial=0) <= 127

    def test_all_zero_tile_gets_neutral_scale(self):
        data = np.zeros((6, 3))
        data[4:] = 5.0  # tiles of 2: [zero, zero, nonzero]
        q = quantize_tiles(data, bits=8, tile_rows=2)
        assert q.scales[0] == 1.0 and q.scales[1] == 1.0
        assert np.all(q.values[:4] == 0)
        assert np.array_equal(q.dequantize()[:4], np.zeros((4, 3)))

    def test_int16_boundary_values_never_reach_qmin(self):
        # INT16 qmin is -32768, but symmetric max-abs scaling maps the
        # most negative representable value to -qmax = -32767.
        data = np.array([[-1.0, 1.0], [-0.5, 0.25]])
        q = quantize_tiles(data, bits=16, tile_rows=1)
        assert q.values.dtype == np.int16
        assert q.values.min() == -32767
        assert q.bits == 16

    def test_subnormal_tile_regression(self):
        # max_abs / qmax underflows to 0.0 for subnormal tiles; a zero
        # scale used to propagate divide-by-zero into the codes.
        data = np.array([[5e-324], [1.0]])
        with np.errstate(divide="raise", invalid="raise"):
            q = quantize_tiles(data, bits=8, tile_rows=1)
        assert q.scales[0] == 1.0
        assert q.values[0, 0] == 0
        assert np.all(np.isfinite(q.dequantize()))

    def test_subnormal_per_tensor_regression(self):
        # The same underflow hit quantize_symmetric / fake_quantize.
        with np.errstate(divide="raise", invalid="raise"):
            q = quantize_symmetric(np.array([[5e-324]]), bits=8)
            faked = Quantizer(bits=8).fake_quantize(np.array([[5e-324]]))
        assert np.all(np.isfinite(q.dequantize()))
        assert np.all(np.isfinite(faked))

    @given(tile_arrays)
    @settings(max_examples=30, deadline=None)
    def test_dequantize_rows_matches_full_dequantize(self, data):
        q = quantize_tiles(data, bits=8, tile_rows=3)
        rng = np.random.default_rng(data.shape[0] * 31 + data.shape[1])
        indices = rng.integers(0, data.shape[0], size=10)
        assert np.array_equal(
            q.dequantize_rows(indices), q.dequantize()[indices]
        )

    def test_dequantize_rows_into_out_buffer(self):
        data = np.random.default_rng(3).standard_normal((10, 4))
        q = quantize_tiles(data, bits=8, tile_rows=4)
        out = np.empty((3, 4), dtype=np.float64)
        result = q.dequantize_rows(np.array([9, 0, 5]), out=out)
        assert result is out
        assert np.array_equal(out, q.dequantize()[[9, 0, 5]])

    def test_target_dtype_dequantize(self):
        data = np.random.default_rng(4).standard_normal((6, 3))
        q = quantize_tiles(data, bits=8, tile_rows=2)
        assert q.dequantize(dtype=np.float32).dtype == np.float32
        assert q.dequantize_rows([1, 5], dtype=np.float32).dtype == np.float32

    def test_tile_boundary_crossing_rejected(self):
        q = quantize_tiles(np.ones((8, 2)), bits=8, tile_rows=4)
        with pytest.raises(ValueError, match="tile boundary"):
            q.dequantize_tile(2, 6)

    def test_per_tile_scales_isolate_magnitude(self):
        # A huge tile must not crush a small tile's resolution — the
        # point of per-tile over per-tensor scaling.
        data = np.vstack([np.full((2, 2), 0.01), np.full((2, 2), 1e4)])
        q = quantize_tiles(data, bits=8, tile_rows=2)
        assert np.allclose(q.dequantize(), data, rtol=0.01)

    def test_row_scales_maps_indices_to_tiles(self):
        q = quantize_tiles(np.ones((5, 2)), bits=8, tile_rows=2)
        assert np.array_equal(
            q.row_scales(np.array([0, 1, 2, 4])),
            q.scales[[0, 0, 1, 2]],
        )

    def test_nbytes_counts_codes_and_scales(self):
        q = quantize_tiles(np.ones((10, 4)), bits=8, tile_rows=4)
        assert q.nbytes == 10 * 4 * 1 + 3 * 8

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            quantize_tiles(np.ones(5))

    def test_bad_tile_rows_rejected(self):
        with pytest.raises(ValueError):
            quantize_tiles(np.ones((4, 2)), tile_rows=0)


class TestQuantizer:
    def test_callable_returns_quantized_tensor(self):
        q = Quantizer(bits=4)
        out = q(np.ones(4))
        assert isinstance(out, QuantizedTensor)
        assert out.bits == 4

    def test_fake_quantize_shape_preserved(self):
        q = Quantizer(bits=4, axis=0)
        data = np.random.default_rng(1).standard_normal((5, 3))
        assert q.fake_quantize(data).shape == (5, 3)

    def test_repr(self):
        assert "bits=4" in repr(Quantizer(bits=4))


def test_quantization_error_zero_for_representable():
    # Values already on the INT4 grid: max|x| = 7 gives scale exactly 1.
    data = np.array([-7.0, -1.0, 0.0, 3.0, 7.0])
    assert quantization_error(data, bits=4) == pytest.approx(0.0, abs=1e-12)


def test_quantization_error_empty():
    assert quantization_error(np.array([]), bits=4) == 0.0
