import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.quantize import (
    QuantizedTensor,
    Quantizer,
    quantization_error,
    quantize_symmetric,
)

finite_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


class TestQuantizeSymmetric:
    def test_int4_range(self):
        q = quantize_symmetric(np.linspace(-1, 1, 100), bits=4)
        assert q.values.min() >= -8
        assert q.values.max() <= 7

    def test_scale_maps_max_to_qmax(self):
        q = quantize_symmetric(np.array([-2.0, 1.0, 2.0]), bits=4)
        assert q.values.max() == 7 or q.values.min() == -7  # |max|=2 → ±7

    def test_zero_tensor(self):
        q = quantize_symmetric(np.zeros(10), bits=4)
        assert np.all(q.values == 0)
        assert np.all(q.dequantize() == 0)

    def test_roundtrip_error_bounded_by_half_step(self):
        data = np.random.default_rng(0).standard_normal(100)
        q = quantize_symmetric(data, bits=8)
        step = float(np.asarray(q.scale))
        assert np.max(np.abs(q.dequantize() - data)) <= step / 2 + 1e-12

    def test_per_axis_scales(self):
        data = np.array([[1.0, 1.0], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=0)
        # Per-row scaling keeps both rows at full resolution.
        assert np.allclose(q.dequantize(), data, rtol=0.2)

    def test_per_tensor_crushes_small_rows(self):
        data = np.array([[0.01, 0.01], [100.0, 100.0]])
        q = quantize_symmetric(data, bits=4, axis=None)
        assert np.all(q.dequantize()[0] == 0.0)  # small row lost

    def test_unsupported_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(4), bits=5)

    def test_nbytes_int4(self):
        q = quantize_symmetric(np.ones(16), bits=4)
        assert q.nbytes == 8.0  # 16 values * 0.5 B

    def test_int16_dtype(self):
        q = quantize_symmetric(np.ones(4), bits=16)
        assert q.values.dtype == np.int16

    @given(finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_dequantized_never_exceeds_max_abs(self, data):
        q = quantize_symmetric(data, bits=4)
        limit = np.max(np.abs(data)) if data.size else 0.0
        assert np.all(np.abs(q.dequantize()) <= limit * (1 + 1e-9) + 1e-12)

    @given(finite_arrays, st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, data, bits):
        once = quantize_symmetric(data, bits=bits).dequantize()
        twice = quantize_symmetric(once, bits=bits).dequantize()
        assert np.allclose(once, twice)

    @given(finite_arrays)
    @settings(max_examples=30, deadline=None)
    def test_error_within_half_step_and_bound_tightens_with_bits(self, data):
        # The sound monotonicity statement.  Pointwise "more bits never
        # worse" is FALSE (see the pinned regression below): a value can
        # land closer to the coarse grid than to the fine one.  What
        # symmetric max-abs quantization does guarantee is that every
        # element's error — hence the RMSE — is at most half the grid
        # step scale_b = max|x| / qmax_b, and that bound shrinks as bits
        # grow.
        magnitude = float(np.max(np.abs(data)))
        for bits, qmax in ((4, 7), (8, 127)):
            scale = magnitude / qmax if magnitude > 0 else 1.0
            err = quantization_error(data, bits=bits)
            assert err <= scale / 2 * (1 + 1e-9) + 1e-12 * max(magnitude, 1.0)

    def test_more_bits_can_be_pointwise_worse_regression(self):
        # Falsifying example for the retired "more bits never worse"
        # property: with data [[11, 76]], INT4's grid (step 76/7)
        # reconstructs 11 -> 10.857 (error 0.143) while INT8's finer
        # grid (step 76/127) reconstructs 11 -> 10.772 (error 0.228).
        # Both errors respect their own half-step bound; the comparison
        # between them is simply not monotone in bits.
        data = np.array([[11.0, 76.0]])
        err4 = quantization_error(data, bits=4)
        err8 = quantization_error(data, bits=8)
        assert err8 > err4  # the counterexample is real
        assert err4 <= (76.0 / 7) / 2 * (1 + 1e-9)
        assert err8 <= (76.0 / 127) / 2 * (1 + 1e-9)

    def test_half_step_bound_large_magnitude_regression(self):
        # A single value near the grid: both errors are pure round-off;
        # the half-step bound holds with room to spare even at 1e4+
        # magnitudes where absolute tolerances fail.
        data = np.array([[16277.0]])
        assert quantization_error(data, bits=4) <= (16277.0 / 7) / 2 * (1 + 1e-9)
        assert quantization_error(data, bits=8) <= (16277.0 / 127) / 2 * (1 + 1e-9)


class TestQuantizer:
    def test_callable_returns_quantized_tensor(self):
        q = Quantizer(bits=4)
        out = q(np.ones(4))
        assert isinstance(out, QuantizedTensor)
        assert out.bits == 4

    def test_fake_quantize_shape_preserved(self):
        q = Quantizer(bits=4, axis=0)
        data = np.random.default_rng(1).standard_normal((5, 3))
        assert q.fake_quantize(data).shape == (5, 3)

    def test_repr(self):
        assert "bits=4" in repr(Quantizer(bits=4))


def test_quantization_error_zero_for_representable():
    # Values already on the INT4 grid: max|x| = 7 gives scale exactly 1.
    data = np.array([-7.0, -1.0, 0.0, 3.0, 7.0])
    assert quantization_error(data, bits=4) == pytest.approx(0.0, abs=1e-12)


def test_quantization_error_empty():
    assert quantization_error(np.array([]), bits=4) == 0.0
