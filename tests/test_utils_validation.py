import numpy as np
import pytest

from repro.utils.validation import (
    check_batch_features,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        check_probability("p", value)

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability("p", value)


class TestCheckBatchFeatures:
    def test_promotes_vector_to_batch(self):
        out = check_batch_features(np.zeros(8), 8)
        assert out.shape == (1, 8)

    def test_passes_through_batch(self):
        out = check_batch_features(np.zeros((3, 8)), 8)
        assert out.shape == (3, 8)

    def test_casts_to_float64(self):
        out = check_batch_features(np.zeros((2, 4), dtype=np.float32), 4)
        assert out.dtype == np.float64

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError, match="hidden dim"):
            check_batch_features(np.zeros((2, 5)), 8)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            check_batch_features(np.zeros((2, 2, 2)), 2)
