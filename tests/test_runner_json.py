import json

from repro.experiments.runner import _jsonable, main


class TestJsonExport:
    def test_output_files_written(self, tmp_path, capsys):
        assert main(["table5", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        text = (tmp_path / "table5.txt").read_text()
        assert "0.442" in text
        data = json.loads((tmp_path / "table5.json").read_text())
        assert "INT4 MAC" in data

    def test_fig13_json_structure(self, tmp_path, capsys):
        assert main(["table4", "--output", str(tmp_path)]) == 0
        capsys.readouterr()
        data = json.loads((tmp_path / "table4.json").read_text())
        assert set(data) == {"NDA", "Chameleon", "TensorDIMM", "ENMC"}


class TestJsonable:
    def test_dataclass(self):
        import dataclasses

        @dataclasses.dataclass
        class Point:
            x: int
            label: str

        assert _jsonable(Point(1, "a")) == {"x": 1, "label": "a"}

    def test_numpy_values(self):
        import numpy as np

        assert _jsonable(np.int64(3)) == 3
        assert _jsonable(np.float64(0.5)) == 0.5
        assert _jsonable(np.array([1, 2])) == [1, 2]

    def test_nested(self):
        assert _jsonable({"a": (1, 2), "b": [None]}) == {"a": [1, 2], "b": [None]}

    def test_fallback_repr(self):
        class Opaque:
            def __repr__(self):
                return "<opaque>"

        assert _jsonable(Opaque()) == "<opaque>"
