import numpy as np
import pytest

from repro.enmc import DualModulePipeline, TileWork
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG


@pytest.fixture(scope="module")
def pipeline():
    return DualModulePipeline(DEFAULT_CONFIG)


class TestTileWork:
    def test_validation(self):
        with pytest.raises(ValueError):
            TileWork(rows=0, projection_dim=16, candidates=0)
        with pytest.raises(ValueError):
            TileWork(rows=16, projection_dim=16, candidates=-1)


class TestScheduling:
    def test_screening_in_order(self, pipeline):
        tiles = [TileWork(rows=512, projection_dim=128, candidates=4)] * 4
        result = pipeline.run(tiles, hidden_dim=512)
        starts = [t.screen_start for t in result.tiles]
        assert starts == sorted(starts)
        for previous, current in zip(result.tiles, result.tiles[1:]):
            assert current.screen_start == pytest.approx(previous.screen_end)

    def test_execute_waits_for_own_tile(self, pipeline):
        tiles = [TileWork(rows=512, projection_dim=128, candidates=16)] * 3
        result = pipeline.run(tiles, hidden_dim=512)
        for trace in result.tiles:
            assert trace.execute_start >= trace.screen_end - 1e-9

    def test_executor_serializes(self, pipeline):
        tiles = [TileWork(rows=64, projection_dim=128, candidates=200)] * 3
        result = pipeline.run(tiles, hidden_dim=512)
        for previous, current in zip(result.tiles, result.tiles[1:]):
            assert current.execute_start >= previous.execute_end - 1e-9

    def test_zero_candidate_tiles_free_executor(self, pipeline):
        tiles = [
            TileWork(rows=512, projection_dim=128, candidates=0),
            TileWork(rows=512, projection_dim=128, candidates=50),
        ]
        result = pipeline.run(tiles, hidden_dim=512)
        assert result.tiles[0].execute_cycles == 0.0
        assert result.tiles[1].execute_cycles > 0.0

    def test_empty_stream_rejected(self, pipeline):
        with pytest.raises(ValueError, match="tiles"):
            pipeline.run([], hidden_dim=512)


class TestSteadyState:
    def test_overlap_beats_serialization(self, pipeline):
        """With balanced phases the makespan is well below the sum."""
        tiles = [TileWork(rows=512, projection_dim=128, candidates=40)] * 16
        result = pipeline.run(tiles, hidden_dim=512)
        serialized = result.screener_busy_cycles + result.executor_busy_cycles
        assert result.total_cycles < 0.9 * serialized
        assert result.overlap_efficiency > 1.1

    def test_matches_analytic_steady_state(self):
        """Balanced uniform tiles: makespan ≈ max(total screen, total
        execute) + one-phase fill, the analytic model's assumption."""
        pipeline = DualModulePipeline(DEFAULT_CONFIG)
        tiles = [TileWork(rows=512, projection_dim=128, candidates=30)] * 32
        result = pipeline.run(tiles, hidden_dim=512)
        longer = max(result.screener_busy_cycles, result.executor_busy_cycles)
        shorter = min(result.screener_busy_cycles, result.executor_busy_cycles)
        fill = shorter / 32
        assert result.total_cycles == pytest.approx(longer + fill, rel=0.15)

    def test_skewed_candidates_hurt_overlap(self, pipeline):
        """Bursty candidate arrivals (skew) reduce overlap efficiency
        versus a uniform spread of the same total work."""
        uniform = pipeline.run_uniform(
            num_categories=16_384, hidden_dim=512,
            total_candidates=2048, tile_rows=512,
        )
        skewed = pipeline.run_uniform(
            num_categories=16_384, hidden_dim=512,
            total_candidates=2048, tile_rows=512,
            candidate_skew=2.0, rng=np.random.default_rng(0),
        )
        assert skewed.total_cycles >= uniform.total_cycles * 0.99

    def test_uniform_builder_conserves_work(self, pipeline):
        result = pipeline.run_uniform(
            num_categories=10_000, hidden_dim=512,
            total_candidates=777, tile_rows=512,
        )
        assert len(result.tiles) == 20
        # Row and candidate totals conserved — probe via busy cycles > 0.
        assert result.screener_busy_cycles > 0
        assert result.executor_busy_cycles > 0

    def test_seconds_conversion(self, pipeline):
        tiles = [TileWork(rows=512, projection_dim=128, candidates=1)]
        result = pipeline.run(tiles, hidden_dim=512)
        assert result.seconds(400e6) == pytest.approx(
            result.total_cycles / 400e6
        )
