"""Integration: the hardware path reproduces the numpy pipeline.

This is the repository's strongest end-to-end check: compile a screened
classification to ENMC instructions, execute it on the functional DIMM,
and require bit-level agreement with the pure-algorithm implementation.
"""

import numpy as np
import pytest

from repro.compiler import ENMCOffload
from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    ScreeningConfig,
    train_screener,
)
from repro.data import make_task
from repro.enmc.controller import ENMCController
from repro.linalg.topk import calibrate_threshold


@pytest.fixture(scope="module")
def setup():
    task = make_task(num_categories=1500, hidden_dim=64, rng=1)
    screener = train_screener(
        task.classifier, task.sample_features(512),
        config=ScreeningConfig(projection_dim=16), solver="lstsq", rng=2,
    )
    raw = calibrate_threshold(
        screener.approximate_logits(task.sample_features(128, rng=3)), 24
    )
    # Hardware applies the 16.16 fixed-point version of the threshold;
    # both paths use the exact same effective value.
    encoded = ENMCController.encode_threshold(raw)
    threshold = (encoded - (1 << 64) if encoded >= 1 << 63 else encoded) / 65536.0
    software = ApproximateScreeningClassifier(
        task.classifier, screener,
        selector=CandidateSelector(
            mode="threshold", num_candidates=24, threshold=threshold
        ),
    )
    hardware = ENMCOffload(task.classifier, screener, threshold)
    return task, software, hardware


class TestEquivalence:
    def test_approximate_logits_bit_equal(self, setup):
        task, software, hardware = setup
        batch = task.sample_features(4, rng=5)
        sw = software(batch)
        hw = hardware(batch)
        assert np.allclose(
            sw.approximate_logits, hw.output.approximate_logits, atol=1e-12
        )

    def test_candidates_identical(self, setup):
        task, software, hardware = setup
        batch = task.sample_features(6, rng=6)
        sw = software(batch)
        hw = hardware(batch)
        for a, b in zip(sw.candidates, hw.output.candidates):
            assert np.array_equal(a, b)

    def test_mixed_logits_match(self, setup):
        task, software, hardware = setup
        batch = task.sample_features(4, rng=7)
        sw = software(batch)
        hw = hardware(batch)
        assert np.abs(sw.logits - hw.output.logits).max() < 1e-9

    def test_predictions_match(self, setup):
        task, software, hardware = setup
        batch = task.sample_features(8, rng=8)
        assert np.array_equal(
            software.predict(batch), hardware.predict(batch)
        )


class TestHardwareAccounting:
    def test_dram_traffic_reflects_int4(self, setup):
        task, _, hardware = setup
        batch = task.sample_features(1, rng=9)
        result = hardware(batch)
        trace = result.traces[0]
        # Screening weight at INT4 ≈ l×(k+1)/2 bytes, plus FP32 rows.
        screen_bytes = 1500 * 17 * 0.5
        assert trace.dram_bytes >= screen_bytes
        assert trace.dram_bytes < screen_bytes + 200 * 65 * 4 + 4096

    def test_generated_instruction_count_tracks_candidates(self, setup):
        task, _, hardware = setup
        batch = task.sample_features(2, rng=10)
        result = hardware(batch)
        for trace, indices in zip(result.traces, result.output.candidates):
            if indices.size:
                assert trace.generated_instructions >= indices.size

    def test_instruction_totals(self, setup):
        task, _, hardware = setup
        result = hardware(task.sample_features(2, rng=11))
        assert result.total_instructions > 0
        assert result.total_dram_bytes > 0

    def test_wire_format_execution(self, setup):
        """Full path through encode → decode → execute."""
        from repro.compiler import compile_screened_classification
        from repro.enmc.dimm import ENMCDimm

        task, software, hardware = setup
        feature = task.sample_features(1, rng=12)[0]
        kernel = compile_screened_classification(
            task.classifier, hardware.screener, feature, hardware.threshold
        )
        dimm = ENMCDimm(hardware.config, memory=kernel.memory)
        trace = dimm.execute_wire(kernel.program.encoded())
        scores = np.concatenate(trace.outputs)
        expected = software.screener.approximate_logits(feature)[0]
        assert np.allclose(scores, expected, atol=1e-12)
