"""Capstone integration: the full stack in one scenario.

A single narrative covering the paper's workflow end to end:

1. build a synthetic LM task and corpus;
2. distill a screener (Algorithm 1) and tune its budget to a recall
   target on validation data;
3. verify end-task quality (perplexity) is preserved;
4. run the same inference through the compiled hardware path and check
   bit-equivalence;
5. simulate the paper-scale deployment (performance + energy) and check
   the headline orderings.
"""

import numpy as np
import pytest

from repro.compiler import ENMCOffload
from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    ScreeningConfig,
    train_screener,
    tune_budget_for_recall,
)
from repro.data import SequenceConfig, SyntheticCorpus, make_task
from repro.data.registry import get_workload
from repro.energy.model import EnergyModel
from repro.enmc.simulator import ENMCSimulator
from repro.host.cpu import XEON_8280
from repro.metrics import perplexity_from_proba
from repro.nmp import TENSORDIMM_MODEL


@pytest.fixture(scope="module")
def stack():
    task = make_task(num_categories=1500, hidden_dim=64, rng=42)
    corpus = SyntheticCorpus(task, SequenceConfig(num_clusters=25), rng=43)
    screener, report = train_screener(
        task.classifier, task.sample_features(640, rng=44),
        config=ScreeningConfig.from_scale(64, 0.25),
        solver="lstsq", rng=45, return_report=True,
    )
    tuning = tune_budget_for_recall(
        task.classifier, screener,
        task.sample_features(96, rng=46),
        target_recall=0.99, k=5,
    )
    return task, corpus, screener, report, tuning


class TestFullStack:
    def test_distillation_converged(self, stack):
        _, _, _, report, _ = stack
        assert report.final_loss < np.inf
        assert report.epochs >= 1

    def test_tuned_budget_reasonable(self, stack):
        task, _, _, _, tuning = stack
        assert tuning.met
        # The paper's regime: a small fraction of categories suffices.
        assert tuning.candidate_fraction < 0.25

    def test_perplexity_preserved_on_corpus(self, stack):
        task, corpus, screener, _, tuning = stack
        model = ApproximateScreeningClassifier(
            task.classifier, screener,
            num_candidates=max(tuning.num_candidates, 50),
        )
        features, targets = corpus.evaluation_batch(12, 10, rng=47)
        exact_ppl = perplexity_from_proba(
            task.classifier.predict_proba(features), targets
        )
        screened_ppl = perplexity_from_proba(
            model.predict_proba(features), targets
        )
        assert screened_ppl <= exact_ppl * 1.25

    def test_hardware_path_bit_equivalent(self, stack):
        task, _, screener, _, tuning = stack
        threshold = tuning.threshold
        # Align the fixed-point grid both paths use.
        from repro.enmc.controller import ENMCController

        encoded = ENMCController.encode_threshold(threshold)
        effective = (
            encoded - (1 << 64) if encoded >= 1 << 63 else encoded
        ) / 65536.0
        software = ApproximateScreeningClassifier(
            task.classifier, screener,
            selector=CandidateSelector(
                mode="threshold", num_candidates=tuning.num_candidates,
                threshold=effective,
            ),
        )
        hardware = ENMCOffload(task.classifier, screener, effective)
        batch = task.sample_features(3, rng=48)
        sw = software(batch)
        hw = hardware(batch)
        assert np.abs(sw.logits - hw.output.logits).max() < 1e-9

    def test_paper_scale_deployment_orderings(self, stack):
        """The Fig. 13/14 headline orderings from the same stack."""
        workload = get_workload("Transformer-W268K")
        m = workload.default_candidates
        cpu_full = XEON_8280.full_classification_seconds(
            workload.num_categories, workload.hidden_dim
        )
        enmc = ENMCSimulator().simulate(workload, candidates_per_row=m)
        td = TENSORDIMM_MODEL.simulate(workload, candidates_per_row=m)
        assert enmc.seconds < td.serialized_seconds < cpu_full

        e_enmc = EnergyModel().energy_of(enmc)
        td_full = TENSORDIMM_MODEL.simulate_full(workload)
        e_td = EnergyModel(logic_watts=0.3035).energy_of(
            td_full, seconds=td_full.serialized_seconds
        )
        assert e_enmc.total < e_td.total
