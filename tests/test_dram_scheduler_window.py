"""The bounded scheduling window (queue_depth) and its backlog FIFO."""

import numpy as np
import pytest

from repro.dram import DDR4_2400, DRAMSystem
from repro.dram.request import Request, RequestType
from repro.dram.scheduler import ChannelScheduler


def make_scheduler(depth=4):
    return ChannelScheduler(DDR4_2400, ranks=2, queue_depth=depth)


def make_request(system, address):
    return system.submit(RequestType.READ, address)


class TestWindow:
    def test_overflow_goes_to_backlog(self):
        scheduler = make_scheduler(depth=4)
        system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2,
                            queue_depth=4)
        for i in range(10):
            system.submit(RequestType.READ, i * 64)
        channel = system.channels[0]
        assert len(channel.queue) == 4
        assert len(channel.backlog) == 6
        assert channel.pending == 10

    def test_all_requests_complete(self):
        system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2,
                            queue_depth=4)
        requests = [system.submit(RequestType.READ, i * 64) for i in range(50)]
        system.drain()
        assert all(r.done for r in requests)

    def test_backlog_preserves_fifo_entry(self):
        """Backlogged requests enter the window in arrival order."""
        system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2,
                            queue_depth=2)
        requests = [
            system.submit(RequestType.READ, i * 64, arrival=i)
            for i in range(8)
        ]
        system.drain()
        # Sequential same-row stream through a tiny window completes
        # in arrival order.
        completions = [r.completed_at for r in requests]
        assert completions == sorted(completions)

    def test_narrow_window_matches_wide_for_streams(self):
        """Sequential streams schedule identically regardless of window
        depth (no reordering opportunity)."""

        def run(depth):
            system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2,
                                queue_depth=depth)
            system.stream_read(0, 64 * 256)
            return system.drain().cycles

        assert run(4) == run(64)

    def test_wide_window_helps_gathers(self):
        """Random gathers benefit from (or at least never lose to) a
        deeper reordering window."""
        rng = np.random.default_rng(3)
        addrs = (rng.integers(0, 1 << 26, 200) // 64 * 64).tolist()

        def run(depth):
            system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=2,
                                queue_depth=depth)
            system.gather_read(addrs)
            return system.drain().cycles

        assert run(64) <= run(2) * 1.01
