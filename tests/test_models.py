import numpy as np
import pytest

from repro.data.registry import iter_workloads
from repro.models import (
    Embedding,
    GNMTModel,
    LSTMModel,
    TransformerModel,
    XMLCNNModel,
    build_front_end,
)
from repro.models.transformer import layer_norm, sinusoidal_positions


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(100, 16, rng=0)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 16)

    def test_out_of_range_rejected(self):
        emb = Embedding(10, 4, rng=0)
        with pytest.raises(ValueError):
            emb(np.array([10]))
        with pytest.raises(ValueError):
            emb(np.array([-1]))

    def test_deterministic(self):
        a = Embedding(10, 4, rng=1)
        b = Embedding(10, 4, rng=1)
        assert np.array_equal(a.table, b.table)


class TestLSTM:
    @pytest.fixture(scope="class")
    def lstm(self):
        return LSTMModel(vocab_size=50, hidden_dim=32, num_layers=2, rng=0)

    def test_extract_shape(self, lstm):
        out = lstm.extract(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 32)

    def test_extract_sequence_shape(self, lstm):
        out = lstm.extract_sequence(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 32)

    def test_sequence_last_matches_extract(self, lstm):
        ids = np.array([[7, 8, 9, 1]])
        assert np.allclose(
            lstm.extract_sequence(ids)[:, -1], lstm.extract(ids)
        )

    def test_state_depends_on_history(self, lstm):
        a = lstm.extract(np.array([[1, 2, 3]]))
        b = lstm.extract(np.array([[3, 2, 3]]))
        assert not np.allclose(a, b)

    def test_outputs_bounded(self, lstm):
        out = lstm.extract(np.array([[1] * 20]))
        assert np.all(np.abs(out) <= 1.0)  # h = o·tanh(c) ∈ (-1, 1)

    def test_report_counts(self, lstm):
        report = lstm.report()
        # embedding + 2 cells
        expected_cell0 = 4 * 32 * 32 + 4 * 32 * 32 + 4 * 32
        assert report.parameters > expected_cell0
        assert report.flops > 0


class TestTransformer:
    @pytest.fixture(scope="class")
    def transformer(self):
        return TransformerModel(
            vocab_size=60, hidden_dim=32, num_layers=2, num_heads=4, rng=0
        )

    def test_extract_shape(self, transformer):
        assert transformer.extract(np.array([[1, 2, 3]])).shape == (1, 32)

    def test_causality(self, transformer):
        """Changing a later token must not affect earlier positions."""
        a = transformer.extract_sequence(np.array([[1, 2, 3, 4]]))
        b = transformer.extract_sequence(np.array([[1, 2, 3, 9]]))
        assert np.allclose(a[:, :3], b[:, :3])
        assert not np.allclose(a[:, 3], b[:, 3])

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            TransformerModel(vocab_size=10, hidden_dim=30, num_heads=4)

    def test_layer_norm_statistics(self):
        data = np.random.default_rng(0).standard_normal((4, 16)) * 7 + 3
        normed = layer_norm(data)
        assert np.allclose(normed.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(normed.std(axis=-1), 1.0, atol=1e-3)

    def test_sinusoidal_positions_range(self):
        enc = sinusoidal_positions(10, 16)
        assert enc.shape == (10, 16)
        assert np.all(np.abs(enc) <= 1.0)
        assert not np.allclose(enc[0], enc[5])


class TestGNMT:
    @pytest.fixture(scope="class")
    def gnmt(self):
        return GNMTModel(vocab_size=40, hidden_dim=32, rng=0)

    def test_encode_shape(self, gnmt):
        assert gnmt.encode(np.array([[1, 2, 3]])).shape == (1, 3, 32)

    def test_decode_step_shape_and_state(self, gnmt):
        memory = gnmt.encode(np.array([[1, 2, 3]]))
        features, states = gnmt.decode_step(np.array([5]), memory)
        assert features.shape == (1, 32)
        features2, _ = gnmt.decode_step(np.array([5]), memory, states)
        assert not np.allclose(features, features2)  # state advanced

    def test_attention_sensitivity_to_memory(self, gnmt):
        mem_a = gnmt.encode(np.array([[1, 2, 3]]))
        mem_b = gnmt.encode(np.array([[7, 8, 9]]))
        fa, _ = gnmt.decode_step(np.array([5]), mem_a)
        fb, _ = gnmt.decode_step(np.array([5]), mem_b)
        assert not np.allclose(fa, fb)

    def test_greedy_decode_feature_stream(self, gnmt):
        features, _ = gnmt.greedy_decode(
            np.array([[1, 2]]), start_token=0, steps=4
        )
        assert features.shape == (1, 4, 32)

    def test_extract_protocol(self, gnmt):
        assert gnmt.extract(np.array([[1, 2, 3]])).shape == (1, 32)


class TestXMLCNN:
    @pytest.fixture(scope="class")
    def xmlcnn(self):
        return XMLCNNModel(vocab_size=80, hidden_dim=32, embed_dim=16, rng=0)

    def test_extract_shape(self, xmlcnn):
        out = xmlcnn.extract(np.random.default_rng(0).integers(0, 80, (3, 32)))
        assert out.shape == (3, 32)

    def test_features_non_negative(self, xmlcnn):
        out = xmlcnn.extract(np.random.default_rng(1).integers(0, 80, (2, 32)))
        assert np.all(out >= 0)  # final ReLU

    def test_rejects_too_short_sequence(self, xmlcnn):
        with pytest.raises(ValueError, match="shorter"):
            xmlcnn.extract(np.array([[1, 2, 3]]))  # < max filter width 8

    def test_pooling_order_invariance_within_chunk(self, xmlcnn):
        # Max pooling inside one chunk: permuting that chunk's interior
        # conv outputs leaves features unchanged only for identical
        # token multisets; use a repeated-token sanity check instead.
        ids = np.full((1, 32), 7)
        out1 = xmlcnn.extract(ids)
        out2 = xmlcnn.extract(ids.copy())
        assert np.allclose(out1, out2)


class TestFactory:
    @pytest.mark.parametrize("abbr_idx", range(4))
    def test_builds_each_workload(self, abbr_idx):
        workload = list(iter_workloads())[abbr_idx]
        model = build_front_end(workload, vocab_cap=200, compact=True)
        ids = np.random.default_rng(0).integers(0, 200, (2, 12))
        features = model.extract(ids)
        assert features.shape == (2, workload.hidden_dim)

    def test_reproducible(self):
        workload = list(iter_workloads())[0]
        a = build_front_end(workload, vocab_cap=100)
        b = build_front_end(workload, vocab_cap=100)
        ids = np.array([[1, 2, 3, 4, 5, 6, 7, 8]])
        assert np.allclose(a.extract(ids), b.extract(ids))

    def test_unknown_model_rejected(self):
        from dataclasses import replace

        workload = replace(list(iter_workloads())[0], model="BERT")
        with pytest.raises(ValueError):
            build_front_end(workload)
