import numpy as np
import pytest

from repro.baselines import LowRankClassifier
from repro.core import FullClassifier


class TestLowRank:
    def test_full_rank_is_exact(self, small_task):
        model = LowRankClassifier(small_task.classifier, rank=64)
        features = small_task.sample_features(3)
        assert np.allclose(
            model.logits(features), small_task.classifier.logits(features)
        )
        assert model.reconstruction_error() < 1e-10

    def test_rank_improves_monotonically(self, small_task):
        errors = [
            LowRankClassifier(small_task.classifier, rank=r).reconstruction_error()
            for r in (4, 16, 64)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_structured_task_low_rank_suffices(self, small_task):
        # The synthetic task has effective rank ≤ 16: rank-24 capture
        # should agree on nearly all predictions.
        model = LowRankClassifier(small_task.classifier, rank=24)
        features = small_task.sample_features(32)
        agreement = np.mean(
            model.predict(features) == small_task.classifier.predict(features)
        )
        assert agreement >= 0.9

    def test_rejects_rank_above_dim(self, small_task):
        with pytest.raises(ValueError):
            LowRankClassifier(small_task.classifier, rank=65)

    def test_predict_proba_softmax(self, small_task):
        model = LowRankClassifier(small_task.classifier, rank=8)
        proba = model.predict_proba(small_task.sample_features(2))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_predict_proba_sigmoid(self):
        clf = FullClassifier.random(50, 16, rng=0, normalization="sigmoid")
        model = LowRankClassifier(clf, rank=8)
        proba = model.predict_proba(np.zeros(16))
        assert np.all((0 <= proba) & (proba <= 1))

    def test_cost_linear_in_rank(self, small_task):
        c8 = LowRankClassifier(small_task.classifier, rank=8).cost()
        c16 = LowRankClassifier(small_task.classifier, rank=16).cost()
        assert c16.fp_flops == pytest.approx(2 * c8.fp_flops, rel=0.01)
