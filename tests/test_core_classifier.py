import numpy as np
import pytest

from repro.core import FullClassifier


class TestConstruction:
    def test_random_shapes(self):
        clf = FullClassifier.random(100, 16, rng=0)
        assert clf.num_categories == 100
        assert clf.hidden_dim == 16
        assert clf.bias.shape == (100,)

    def test_default_zero_bias(self):
        clf = FullClassifier(np.ones((5, 3)))
        assert np.all(clf.bias == 0)

    def test_rejects_1d_weight(self):
        with pytest.raises(ValueError):
            FullClassifier(np.ones(5))

    def test_rejects_bias_mismatch(self):
        with pytest.raises(ValueError):
            FullClassifier(np.ones((5, 3)), bias=np.zeros(4))

    def test_rejects_unknown_normalization(self):
        with pytest.raises(ValueError):
            FullClassifier(np.ones((5, 3)), normalization="tanh")

    def test_nbytes(self):
        clf = FullClassifier(np.ones((10, 4)))
        assert clf.nbytes == (40 + 10) * 4


class TestForward:
    def test_logits_match_manual(self):
        weight = np.array([[1.0, 0.0], [0.0, 2.0]])
        bias = np.array([0.5, -0.5])
        clf = FullClassifier(weight, bias)
        out = clf.logits(np.array([3.0, 4.0]))
        assert np.allclose(out, [[3.5, 7.5]])

    def test_single_vector_promoted(self):
        clf = FullClassifier.random(10, 4, rng=0)
        assert clf.logits(np.zeros(4)).shape == (1, 10)

    def test_logits_for_subset_matches_full(self, small_task):
        clf = small_task.classifier
        features = small_task.sample_features(3)
        full = clf.logits(features)
        subset = clf.logits_for([5, 100, 1999], features)
        assert np.allclose(subset, full[:, [5, 100, 1999]])

    def test_logits_for_rejects_2d_indices(self):
        clf = FullClassifier.random(10, 4, rng=0)
        with pytest.raises(ValueError):
            clf.logits_for(np.array([[1, 2]]), np.zeros(4))

    def test_predict_proba_softmax_distribution(self, small_task):
        proba = small_task.classifier.predict_proba(
            small_task.sample_features(4)
        )
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_predict_proba_sigmoid(self):
        clf = FullClassifier.random(20, 8, rng=0, normalization="sigmoid")
        proba = clf.predict_proba(np.zeros(8))
        assert np.all((0 <= proba) & (proba <= 1))
        # sigmoid outputs are not a distribution
        assert proba.sum() != pytest.approx(1.0)

    def test_log_proba_consistent(self, small_task):
        features = small_task.sample_features(2)
        clf = small_task.classifier
        assert np.allclose(
            np.exp(clf.log_proba(features)), clf.predict_proba(features)
        )

    def test_log_proba_rejected_for_sigmoid(self):
        clf = FullClassifier.random(5, 3, rng=0, normalization="sigmoid")
        with pytest.raises(ValueError):
            clf.log_proba(np.zeros(3))

    def test_predict_is_argmax(self, small_task):
        features = small_task.sample_features(5)
        clf = small_task.classifier
        assert np.array_equal(
            clf.predict(features), np.argmax(clf.logits(features), axis=1)
        )
