"""Elastic replica scaling: policy, mechanics, and the bit-identity bar.

Three layers, tested separately and then end to end:

* the pure load math in :mod:`repro.distributed.sharding`
  (``normalize_loads`` / ``load_drift`` / ``suggest_replicas_for_loads``
  and the ``ShardPlan`` views over them);
* the :class:`~repro.distributed.autoscale.AutoScaler` policy — replan
  on drift, single latency steps, budget and per-shard caps, dead-shard
  exclusion — driven with hand-built signals (no processes);
* the engine mechanics (``scale_up`` / ``scale_down`` /
  ``autoscale_tick``) and the acceptance bar itself: under a
  deterministic drifting Zipf mix, an autoscaling fleet must answer
  ``forward`` / ``top_k`` / ``predict`` **bit-identically** to a static
  fleet while recording at least one scale-up and one re-plan.
  Scaling moves placement, never bits.
"""

import time

import numpy as np
import pytest

from repro.core import ScreeningConfig
from repro.core.candidates import CandidateSelector
from repro.data import make_task
from repro.distributed import (
    AutoScaler,
    ScaleDecision,
    ShardPlan,
    ShardSignal,
    ShardedClassifier,
    load_drift,
    normalize_loads,
    suggest_replicas_for_loads,
)
from repro.serving import DriftingZipfianMix, FrontDoor, supports_autoscaling

pytestmark = pytest.mark.timeout(600)

NUM_CATEGORIES = 240
HIDDEN_DIM = 24
CANDIDATES_PER_SHARD = 8


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=50)


@pytest.fixture(scope="module")
def model(task):
    """Two shards with *threshold* candidate selectors.

    Threshold selection is what makes load drift observable: per-shard
    exact-phase work tracks how many candidates each shard's stripe
    produces under the query mix, instead of being pinned to a fixed
    top-m per shard.
    """
    sharded = ShardedClassifier(
        task.classifier, num_shards=2, config=ScreeningConfig(projection_dim=8)
    )
    sharded.train(
        task.sample_features(128, rng=51),
        candidates_per_shard=CANDIDATES_PER_SHARD,
        rng=52,
    )
    calibration = task.sample_features(64, rng=53)
    for shard in sharded.shards:
        selector = CandidateSelector(
            mode="threshold", num_candidates=CANDIDATES_PER_SHARD
        )
        selector.calibrate(shard.screener.approximate_logits(calibration))
        shard.selector = selector
    return sharded


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(6, rng=54)


def signal(shard_id, *, replicas=1, work=1.0, answered=10,
           latency=float("nan"), dead=False):
    return ShardSignal(
        shard_id=shard_id,
        replicas=replicas,
        observed_work=work,
        answered=answered,
        mean_latency_s=latency,
        dead=dead,
    )


# ----------------------------------------------------------------------
# Load math
# ----------------------------------------------------------------------


class TestLoadHelpers:
    def test_normalize_loads_fractions(self):
        assert normalize_loads([2.0, 1.0, 1.0]) == (0.5, 0.25, 0.25)

    def test_normalize_zero_mass_degrades_to_uniform(self):
        assert normalize_loads([0.0, 0.0]) == (0.5, 0.5)

    def test_normalize_rejects_bad_loads(self):
        with pytest.raises(ValueError):
            normalize_loads([])
        with pytest.raises(ValueError):
            normalize_loads([1.0, -0.1])
        with pytest.raises(ValueError):
            normalize_loads([1.0, float("nan")])

    def test_load_drift_zero_when_matching(self):
        assert load_drift([0.5, 0.5], [1.0, 1.0]) == 0.0

    def test_load_drift_known_value(self):
        # |0.75 - 0.5| / 0.5 = 0.5 — the worst shard is off by half
        # its expected share.
        assert load_drift([0.5, 0.5], [0.75, 0.25]) == pytest.approx(0.5)

    def test_load_drift_floors_tiny_reference_shares(self):
        # The zero-reference shard's deviation is measured against the
        # uniform floor (1/2), not against 0 — no infinite drift.
        assert load_drift([0.0, 1.0], [0.5, 0.5]) == pytest.approx(1.0)

    def test_load_drift_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="observed loads"):
            load_drift([0.5, 0.5], [1.0, 0.0, 0.0])

    def test_suggest_replicas_greedy_by_effective_load(self):
        assert suggest_replicas_for_loads([0.7, 0.2, 0.1], 2) == [3, 1, 1]

    def test_suggest_replicas_respects_per_shard_cap(self):
        assert suggest_replicas_for_loads(
            [0.7, 0.2, 0.1], 2, max_per_shard=2
        ) == [2, 2, 1]

    def test_suggest_replicas_tie_breaks_to_lower_shard(self):
        assert suggest_replicas_for_loads([0.5, 0.5], 1) == [2, 1]

    def test_suggest_replicas_stops_when_everyone_capped(self):
        assert suggest_replicas_for_loads([0.6, 0.4], 10, max_per_shard=2) == [2, 2]

    def test_suggest_replicas_validation(self):
        with pytest.raises(ValueError, match="extra_workers"):
            suggest_replicas_for_loads([1.0], -1)
        with pytest.raises(ValueError, match="max_per_shard"):
            suggest_replicas_for_loads([1.0], 1, max_per_shard=0)


class TestShardPlanLoadViews:
    def test_shard_loads_aggregates_frequencies(self):
        plan = ShardPlan.uniform(10, 2)
        frequencies = [1.0] * 5 + [0.0] * 5
        assert plan.shard_loads(frequencies) == (1.0, 0.0)

    def test_shard_loads_rejects_wrong_length(self):
        plan = ShardPlan.uniform(10, 2)
        with pytest.raises(ValueError, match="frequencies"):
            plan.shard_loads([1.0] * 9)

    def test_drift_measures_against_plan_loads(self):
        plan = ShardPlan.uniform(10, 2)  # loads (0.5, 0.5)
        assert plan.drift([0.5, 0.5]) == 0.0
        assert plan.drift([1.0, 0.0]) == pytest.approx(1.0)

    def test_with_loads_keeps_partition_and_reweights(self):
        plan = ShardPlan.uniform(10, 2)
        replanned = plan.with_loads([3.0, 1.0])
        assert replanned.ranges == plan.ranges
        assert replanned.loads == (0.75, 0.25)
        assert replanned.source == "observed"
        # The original is an immutable value object, untouched.
        assert plan.loads == (0.5, 0.5)
        with pytest.raises(AttributeError):
            plan.loads = (1.0, 0.0)


# ----------------------------------------------------------------------
# The policy, with hand-built signals
# ----------------------------------------------------------------------


class TestAutoScalerPolicy:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="interval_requests"):
            AutoScaler(interval_requests=0)
        with pytest.raises(ValueError, match="drift_threshold"):
            AutoScaler(drift_threshold=-0.1)
        with pytest.raises(ValueError, match="max_total_workers"):
            AutoScaler(max_total_workers=0)
        with pytest.raises(ValueError, match="max_replicas"):
            AutoScaler(max_replicas=0)
        with pytest.raises(ValueError, match="overload_latency_ratio"):
            AutoScaler(overload_latency_ratio=1.0)
        with pytest.raises(ValueError, match="idle_latency_ratio"):
            AutoScaler(idle_latency_ratio=1.0)

    def test_short_window_returns_none(self):
        scaler = AutoScaler(interval_requests=32)
        decision = scaler.evaluate(
            [signal(0), signal(1)], sizing_loads=(0.5, 0.5), window_requests=31
        )
        assert decision is None

    def test_signal_load_length_mismatch_raises(self):
        scaler = AutoScaler(interval_requests=1)
        with pytest.raises(ValueError, match="sizing loads"):
            scaler.evaluate(
                [signal(0)], sizing_loads=(0.5, 0.5), window_requests=10
            )

    def test_empty_work_window_is_a_noop(self):
        scaler = AutoScaler(interval_requests=1)
        decision = scaler.evaluate(
            [signal(0, work=0.0), signal(1, work=0.0)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.empty
        assert decision.reason == "no work observed"

    def test_drift_triggers_replan_with_scale_up(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=0.5, max_total_workers=4
        )
        decision = scaler.evaluate(
            [signal(0, work=9.0), signal(1, work=1.0)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.replan
        assert decision.drift == pytest.approx(0.8)
        # Greedy over observed (0.9, 0.1) with 2 spare workers: both
        # land on the hot shard.
        assert decision.scale_up == (0, 0)
        assert decision.scale_down == ()
        assert decision.sizing_loads == pytest.approx((0.9, 0.1))

    def test_replan_reconciles_down_as_well_as_up(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=0.5, max_total_workers=4
        )
        # Shard 1 holds 3 replicas from an earlier hot phase, but the
        # head has moved to shard 0.
        decision = scaler.evaluate(
            [signal(0, replicas=1, work=9.0), signal(1, replicas=3, work=1.0)],
            sizing_loads=(0.1, 0.9),
            window_requests=10,
        )
        assert decision.replan
        assert decision.scale_up == (0, 0)
        assert decision.scale_down == (1, 1)

    def test_none_budget_freezes_current_total(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=0.5, max_total_workers=None
        )
        decision = scaler.evaluate(
            [signal(0, work=9.0), signal(1, work=1.0)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        # 2 replicas total stays 2: the replan re-baselines the drift
        # reference without spawning anything.
        assert decision.replan
        assert decision.scale_up == ()
        assert decision.scale_down == ()

    def test_replan_excludes_dead_shards(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=0.1, max_total_workers=5
        )
        decision = scaler.evaluate(
            [
                signal(0, work=9.0),
                signal(1, work=1.0),
                signal(2, work=0.5, dead=True),
            ],
            sizing_loads=(1 / 3, 1 / 3, 1 / 3),
            window_requests=10,
        )
        assert decision.replan
        assert 2 not in decision.scale_up
        assert 2 not in decision.scale_down

    def test_latency_overload_gains_one_replica(self):
        scaler = AutoScaler(
            interval_requests=1,
            drift_threshold=10.0,  # never replan in this test
            max_total_workers=4,
            overload_latency_ratio=1.5,
        )
        decision = scaler.evaluate(
            [signal(0, latency=1.0), signal(1, latency=0.1)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert not decision.replan
        assert decision.scale_up == (0,)
        assert decision.scale_down == ()
        assert decision.reason == "latency imbalance"

    def test_latency_idle_retires_one_replica(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=10.0, idle_latency_ratio=0.25
        )
        decision = scaler.evaluate(
            [signal(0, latency=1.0), signal(1, replicas=2, latency=0.01)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.scale_down == (1,)

    def test_idle_never_drops_a_single_replica_shard(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=10.0, idle_latency_ratio=0.25
        )
        decision = scaler.evaluate(
            [signal(0, latency=1.0), signal(1, replicas=1, latency=0.01)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.scale_down == ()

    def test_budget_cap_blocks_latency_scale_up(self):
        scaler = AutoScaler(
            interval_requests=1,
            drift_threshold=10.0,
            max_total_workers=2,
            overload_latency_ratio=1.5,
        )
        decision = scaler.evaluate(
            [signal(0, latency=1.0), signal(1, latency=0.1)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.scale_up == ()

    def test_per_shard_cap_blocks_latency_scale_up(self):
        scaler = AutoScaler(
            interval_requests=1,
            drift_threshold=10.0,
            max_total_workers=10,
            max_replicas=2,
            overload_latency_ratio=1.5,
        )
        decision = scaler.evaluate(
            [signal(0, replicas=2, latency=1.0), signal(1, latency=0.1)],
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.scale_up == ()

    def test_latency_step_needs_two_reporting_shards(self):
        scaler = AutoScaler(
            interval_requests=1, drift_threshold=10.0, overload_latency_ratio=1.5
        )
        decision = scaler.evaluate(
            [signal(0, latency=1.0), signal(1)],  # shard 1 reports NaN
            sizing_loads=(0.5, 0.5),
            window_requests=10,
        )
        assert decision.empty
        assert decision.reason == "balanced"


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------


class TestEngineScaleMechanics:
    def test_manual_scale_cycle_preserves_bits_and_reconciles(
        self, model, features
    ):
        """scale_up → serve → scale_down → serve: outputs stay
        bit-identical to the sequential model and the per-shard
        ``answered == requests`` invariant survives the retirement via
        ``retired_served``."""
        reference = model.forward(features)
        with model.parallel() as engine:
            before = engine.forward(features)
            assert np.array_equal(before.logits, reference.logits)

            new_idx = engine.scale_up(0)
            assert new_idx == 1
            assert engine.replica_counts == [2, 1]
            during = engine.forward(features)
            assert np.array_equal(during.logits, reference.logits)
            assert np.array_equal(
                during.approximate_logits, reference.approximate_logits
            )

            assert engine.scale_down(0)
            assert engine.replica_counts == [1, 1]
            after = engine.forward(features)
            assert np.array_equal(after.logits, reference.logits)

            stats = engine.stats()
            assert stats["scale_ups"] == 1
            assert stats["scale_downs"] == 1
            assert stats["requests"] == 3
            for shard_stats in stats["shards"]:
                assert shard_stats["answered"] == 3

    def test_scale_down_never_removes_last_replica(self, model, features):
        with model.parallel() as engine:
            assert not engine.scale_down(0)
            assert engine.replica_counts == [1, 1]
            assert engine.scale_downs == 0

    def test_scale_validation(self, model):
        with model.parallel() as engine:
            with pytest.raises(ValueError, match="unknown shard"):
                engine.scale_up(9)
            with pytest.raises(ValueError, match="unknown shard"):
                engine.scale_down(-1)
        with pytest.raises(RuntimeError, match="closed"):
            engine.scale_up(0)
        with pytest.raises(RuntimeError, match="closed"):
            engine.scale_down(0)

    def test_tick_is_none_without_autoscaler(self, model, features):
        with model.parallel() as engine:
            engine.forward(features)
            assert engine.autoscale_tick() is None
            assert engine.stats()["autoscaling"] is False

    def test_tick_accumulates_until_interval(self, model, features):
        scaler = AutoScaler(interval_requests=3, drift_threshold=10.0)
        with model.parallel(autoscaler=scaler) as engine:
            engine.forward(features)
            assert engine.autoscale_tick() is None  # window of 1 < 3
            engine.forward(features)
            engine.forward(features)
            decision = engine.autoscale_tick()
            assert isinstance(decision, ScaleDecision)
            # Threshold 10 means no replan; a fresh balanced fleet
            # makes no move, but the window was consumed.
            assert engine.autoscale_tick() is None


# ----------------------------------------------------------------------
# The acceptance bar: bit identity under autoscaling
# ----------------------------------------------------------------------


class TestAutoscaleDifferential:
    def test_drifting_load_scales_fleet_without_changing_bits(self, model):
        """THE elastic-serving contract.  A deterministic drifting Zipf
        mix is replayed request-by-request against a static fleet and
        an autoscaling fleet; every ``forward`` / ``top_k`` /
        ``predict`` answer must match bit for bit while the autoscaler
        records at least one scale-up and one re-plan."""
        mix = DriftingZipfianMix(
            HIDDEN_DIM, pool_size=64, s=1.2, seed=3, shift_every=12
        )
        rows = [mix.sample() for _ in range(36)]
        assert mix.shifts_applied >= 2  # the head really moved

        scaler = AutoScaler(
            interval_requests=6,
            drift_threshold=0.05,
            max_total_workers=4,
            max_replicas=3,
        )
        with model.parallel() as static, model.parallel(
            autoscaler=scaler
        ) as elastic:
            for row in rows:
                batch = row[np.newaxis, :]

                want = static.forward(batch)
                got = elastic.forward(batch)
                assert np.array_equal(got.logits, want.logits)
                assert np.array_equal(
                    got.approximate_logits, want.approximate_logits
                )
                for mine, theirs in zip(got.candidates, want.candidates):
                    assert np.array_equal(mine, theirs)

                want_idx, want_scores = static.top_k(batch, k=5)
                got_idx, got_scores = elastic.top_k(batch, k=5)
                assert np.array_equal(got_idx, want_idx)
                assert np.array_equal(got_scores, want_scores)

                assert np.array_equal(
                    elastic.predict(batch), static.predict(batch)
                )

                elastic.autoscale_tick()

            assert elastic.replans >= 1
            assert elastic.scale_ups >= 1
            assert static.scale_ups == 0 and static.replans == 0

            # Fleet shape changed, accounting did not: every shard
            # still answered every request exactly once.
            stats = elastic.stats()
            assert sum(stats["replica_counts"]) <= 4
            for shard_stats in stats["shards"]:
                assert shard_stats["answered"] == stats["requests"]


# ----------------------------------------------------------------------
# Front-door tick plumbing
# ----------------------------------------------------------------------


class _TickingBackend:
    """An autoscaling EngineBackend stub: counts ticks, optionally
    raising to prove the batcher survives a broken policy."""

    def __init__(self, fail=False):
        self.autoscaler = object()  # supports_autoscaling looks for truthiness
        self.ticks = 0
        self.fail = fail
        self._num_categories = 8
        self._hidden_dim = 4

    @property
    def num_categories(self):
        return self._num_categories

    @property
    def hidden_dim(self):
        return self._hidden_dim

    def autoscale_tick(self):
        self.ticks += 1
        if self.fail:
            raise RuntimeError("policy exploded")
        return None

    def forward(self, features):
        from repro.core.candidates import CandidateSet
        from repro.core.pipeline import ScreenedOutput

        logits = np.zeros((features.shape[0], self._num_categories))
        candidates = CandidateSet(
            indices=[
                np.arange(2, dtype=np.intp) for _ in range(features.shape[0])
            ]
        )
        return ScreenedOutput(
            logits, approximate_logits=logits.copy(), candidates=candidates
        )

    def forward_streaming(self, features, block_categories=None):
        return self.forward(features)

    def top_k(self, features, k):
        return np.zeros((features.shape[0], k), dtype=np.intp)

    def predict(self, features):
        return np.zeros(features.shape[0], dtype=np.intp)

    def close(self):
        pass


class TestFrontDoorAutoscaleTick:
    def test_supports_autoscaling_detection(self, model):
        with model.parallel() as engine:
            assert not supports_autoscaling(engine)
        with model.parallel(autoscaler=AutoScaler()) as engine:
            assert supports_autoscaling(engine)
        assert supports_autoscaling(_TickingBackend())
        assert not supports_autoscaling(object())

    def test_batcher_ticks_between_batches_and_when_idle(self):
        backend = _TickingBackend()
        with FrontDoor(
            backend, max_batch=4, flush_window_s=0.001, autoscale_interval_s=0.005
        ) as door:
            door.call(np.zeros(backend.hidden_dim), timeout=30)
            deadline = time.monotonic() + 5.0
            # Idle heartbeat: ticks keep coming with no traffic at all.
            while backend.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
            stats = door.stats()
        assert backend.ticks >= 3
        assert stats["autoscaling"] is True
        assert stats["autoscale_ticks"] == backend.ticks
        assert stats["autoscale_errors"] == 0

    def test_tick_errors_are_counted_not_fatal(self):
        backend = _TickingBackend(fail=True)
        with FrontDoor(
            backend, max_batch=4, flush_window_s=0.001, autoscale_interval_s=0.005
        ) as door:
            reply = door.call(np.zeros(backend.hidden_dim), timeout=30)
            assert reply.batch_size == 1
            deadline = time.monotonic() + 5.0
            while backend.ticks < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            # The door keeps serving after the policy blew up.
            assert door.call(
                np.zeros(backend.hidden_dim), timeout=30
            ).batch_size == 1
            stats = door.stats()
        assert stats["autoscale_errors"] >= 1

    def test_non_autoscaling_backend_never_ticks(self, model, features):
        with model.parallel() as engine:
            with FrontDoor(
                engine, max_batch=4, flush_window_s=0.001,
                autoscale_interval_s=0.005,
            ) as door:
                door.call(features[0], timeout=30)
                time.sleep(0.05)
                stats = door.stats()
        assert stats["autoscaling"] is False
        assert stats["autoscale_ticks"] == 0

    def test_batcher_driven_scaling_serves_identically(self, model, features):
        """End to end through the door: the batcher thread's ticks may
        reshape the fleet mid-stream; replies stay identical to the
        sequential model."""
        mix = DriftingZipfianMix(
            HIDDEN_DIM, pool_size=64, s=1.2, seed=3, shift_every=12
        )
        scaler = AutoScaler(
            interval_requests=6,
            drift_threshold=0.05,
            max_total_workers=4,
            max_replicas=3,
        )
        with model.parallel(autoscaler=scaler) as engine:
            with FrontDoor(
                engine, max_batch=4, flush_window_s=0.001,
                autoscale_interval_s=0.002,
            ) as door:
                for _ in range(30):
                    row = mix.sample()
                    reply = door.call(row, timeout=60)
                    direct = model.forward(row[np.newaxis, :])
                    assert np.array_equal(
                        reply.value.logits, direct.logits[0]
                    )
                door_stats = door.stats()
            stats = engine.stats()
        assert door_stats["autoscale_ticks"] >= 1
        assert door_stats["autoscale_errors"] == 0
        # The drifting mix must have produced at least one evaluation
        # with a real decision; scale events are recorded in stats.
        assert stats["autoscaling"] is True
        for shard_stats in stats["shards"]:
            assert shard_stats["answered"] == stats["requests"]
