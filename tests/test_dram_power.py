import pytest

from repro.dram import DDR4_2400, DRAMSystem
from repro.dram.power import DDR4PowerParams, DRAMPowerModel
from repro.energy.params import DEFAULT_ENERGY_PARAMS, EnergyParams


@pytest.fixture(scope="module")
def model():
    return DRAMPowerModel()


@pytest.fixture(scope="module")
def stream_stats():
    system = DRAMSystem(DDR4_2400, channels=1, ranks_per_channel=8)
    system.stream_read(0, 128 * 1024)
    return system.drain()


class TestPerEventEnergies:
    def test_activate_energy_in_datasheet_band(self, model):
        # Rank-level ACT/PRE: single-digit nanojoules.
        assert 1e-9 < model.activate_energy < 20e-9

    def test_read_burst_energy_band(self, model):
        assert 1e-9 < model.read_burst_energy < 20e-9

    def test_write_close_to_read(self, model):
        ratio = model.write_burst_energy / model.read_burst_energy
        assert 0.7 < ratio < 1.3

    def test_background_watts_band(self, model):
        # 8 x8 devices without power-down: a few hundred mW per rank.
        assert 0.1 < model.background_watts < 1.5

    def test_pj_per_bit_in_ddr4_range(self, model):
        derived = model.derived_params()
        assert 2.0 < derived["dram_pj_per_bit"] < 20.0


class TestEnergyOfRun:
    def test_breakdown_positive(self, model, stream_stats):
        breakdown = model.energy_of(stream_stats)
        assert set(breakdown) == {"activate", "read", "write", "background"}
        assert breakdown["activate"] > 0
        assert breakdown["read"] > 0
        assert breakdown["write"] == 0.0  # read-only stream

    def test_total_is_sum(self, model, stream_stats):
        assert model.total_energy(stream_stats) == pytest.approx(
            sum(model.energy_of(stream_stats).values())
        )

    def test_reads_dominate_activates_for_streams(self, model, stream_stats):
        """Row-hit streams amortize ACTs over many bursts."""
        breakdown = model.energy_of(stream_stats)
        assert breakdown["read"] > breakdown["activate"]


class TestEnergyParamsIntegration:
    def test_from_dram_power(self, model):
        params = EnergyParams.from_dram_power(model)
        assert params.dram_pj_per_bit == pytest.approx(
            model.derived_params()["dram_pj_per_bit"]
        )
        # Non-DRAM coefficients inherit the defaults.
        assert params.fp32_mac_pj == DEFAULT_ENERGY_PARAMS.fp32_mac_pj

    def test_derived_within_factor_of_defaults(self, model):
        """The IDD derivation (no power-down) and the calibrated
        defaults (power-down assumed) must agree within ~4×."""
        derived = model.derived_params()
        assert (
            derived["dram_pj_per_bit"] / DEFAULT_ENERGY_PARAMS.dram_pj_per_bit
            < 4.0
        )
        assert (
            derived["dram_static_watts_per_rank"]
            / DEFAULT_ENERGY_PARAMS.dram_static_watts_per_rank
            < 4.0
        )

    def test_overrides(self, model):
        params = EnergyParams.from_dram_power(model, dram_pj_per_bit=5.0)
        assert params.dram_pj_per_bit == 5.0

    def test_fig14_shape_robust_to_power_model(self, model):
        """The headline Fig. 14 ratio must hold under the IDD-derived
        coefficients too (robustness of the conclusion, not the
        constants)."""
        from repro.data.registry import get_workload
        from repro.energy.model import EnergyModel
        from repro.enmc.simulator import ENMCSimulator
        from repro.nmp import TENSORDIMM_MODEL

        params = EnergyParams.from_dram_power(model)
        workload = get_workload("Transformer-W268K")
        enmc = ENMCSimulator().simulate(
            workload, candidates_per_row=workload.default_candidates
        )
        td = TENSORDIMM_MODEL.simulate_full(workload)
        e_enmc = EnergyModel(params).energy_of(enmc)
        e_td = EnergyModel(params, logic_watts=0.3035).energy_of(
            td, seconds=td.serialized_seconds
        )
        assert e_td.total / e_enmc.total > 3.0


class TestValidation:
    def test_rejects_bad_currents(self):
        with pytest.raises(ValueError):
            DDR4PowerParams(idd0=0.0)
