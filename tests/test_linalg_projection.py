import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.projection import SparseRandomProjection, gaussian_projection


class TestConstruction:
    def test_shape(self):
        p = SparseRandomProjection(64, 16, rng=0)
        assert p.matrix.shape == (16, 64)

    def test_ternary_values(self):
        p = SparseRandomProjection(100, 20, rng=0)
        assert set(np.unique(p.ternary)).issubset({-1, 0, 1})

    def test_density_approximately_one_third(self):
        p = SparseRandomProjection(500, 100, rng=0)
        density = np.mean(p.ternary != 0)
        assert 0.28 < density < 0.39

    def test_scale_matches_paper(self):
        # sqrt(3/k) for density 1/3.
        p = SparseRandomProjection(64, 12, rng=0)
        nonzero = np.abs(p.matrix[p.ternary != 0])
        assert np.allclose(nonzero, np.sqrt(3.0 / 12))

    def test_nbytes_two_bit(self):
        p = SparseRandomProjection(64, 16, rng=0)
        assert p.nbytes == 64 * 16 * 2 / 8

    def test_rejects_expansion(self):
        with pytest.raises(ValueError, match="reduce"):
            SparseRandomProjection(8, 16)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            SparseRandomProjection(16, 8, density=0.0)

    def test_reproducible(self):
        a = SparseRandomProjection(32, 8, rng=5)
        b = SparseRandomProjection(32, 8, rng=5)
        assert np.array_equal(a.ternary, b.ternary)


class TestFromTernary:
    def test_round_trip_bit_identical(self):
        original = SparseRandomProjection(64, 16, rng=3)
        rebuilt = SparseRandomProjection.from_ternary(
            original.ternary, original.density
        )
        assert rebuilt.input_dim == 64
        assert rebuilt.output_dim == 16
        assert rebuilt.scale == original.scale
        features = np.random.default_rng(4).standard_normal((5, 64))
        assert np.array_equal(original(features), rebuilt(features))

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            SparseRandomProjection.from_ternary(np.zeros(8), 1 / 3)

    def test_rejects_non_ternary_entries(self):
        with pytest.raises(ValueError, match="ternary"):
            SparseRandomProjection.from_ternary(np.full((2, 4), 2), 1 / 3)

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError, match="density"):
            SparseRandomProjection.from_ternary(np.zeros((2, 4)), 0.0)


class TestCachedState:
    def test_matrix_is_cached(self):
        p = SparseRandomProjection(64, 16, rng=0)
        assert p.matrix is p.matrix

    def test_from_ternary_matrix_matches(self):
        p = SparseRandomProjection(64, 16, rng=0)
        rebuilt = SparseRandomProjection.from_ternary(p.ternary, p.density)
        assert np.array_equal(p.matrix, rebuilt.matrix)


class TestApplyTernary:
    def test_matches_float_projection_after_scaling(self):
        p = SparseRandomProjection(32, 8, rng=1)
        codes = np.random.default_rng(2).integers(-8, 8, size=(4, 32))
        integer = p.apply_ternary(codes)
        assert np.issubdtype(integer.dtype, np.integer)
        # Deferred scale: input_scale (here 1) times the projection scale.
        assert np.allclose(integer * p.scale, p(codes.astype(np.float64)))

    def test_rejects_float_input(self):
        p = SparseRandomProjection(32, 8, rng=1)
        with pytest.raises(TypeError, match="integer"):
            p.apply_ternary(np.zeros((2, 32)))

    def test_rejects_wrong_dim(self):
        p = SparseRandomProjection(32, 8, rng=1)
        with pytest.raises(ValueError):
            p.apply_ternary(np.zeros((2, 16), dtype=np.int8))


class TestApplication:
    def test_projects_batch(self):
        p = SparseRandomProjection(64, 16, rng=0)
        out = p(np.zeros((4, 64)))
        assert out.shape == (4, 16)

    def test_rejects_wrong_dim(self):
        p = SparseRandomProjection(64, 16, rng=0)
        with pytest.raises(ValueError):
            p(np.zeros((4, 32)))

    def test_linear(self):
        p = SparseRandomProjection(32, 8, rng=1)
        rng = np.random.default_rng(2)
        x, y = rng.standard_normal((2, 32))
        assert np.allclose(p(x + y), p(x) + p(y))

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_norm_preservation_in_expectation(self, seed):
        # JL property: E[||Px||²] = ||x||²; check the average over many
        # projections is within 25%.
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(128)
        ratios = []
        for k in range(10):
            p = SparseRandomProjection(128, 32, rng=1000 + seed * 10 + k)
            ratios.append(np.sum(p(x) ** 2) / np.sum(x**2))
        assert 0.75 < np.mean(ratios) < 1.25


def test_gaussian_projection_shape_and_scale():
    g = gaussian_projection(64, 16, rng=0)
    assert g.shape == (16, 64)
    # Row norms ≈ sqrt(d)/sqrt(k) scaled: E[||row||²] = d/k... check
    # inner-product preservation instead.
    rng = np.random.default_rng(1)
    x = rng.standard_normal(64)
    ratios = [
        np.sum((gaussian_projection(64, 16, rng=i) @ x) ** 2) / np.sum(x**2)
        for i in range(20)
    ]
    assert 0.7 < np.mean(ratios) < 1.3
