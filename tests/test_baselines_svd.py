import numpy as np
import pytest

from repro.baselines import SVDSoftmax
from repro.core import CandidateSelector
from repro.core.metrics import candidate_recall


@pytest.fixture(scope="module")
def svd(request):
    # Build on the session task via a module fixture indirection.
    from repro.data import make_task

    task = make_task(num_categories=2000, hidden_dim=64, rng=1)
    return task, SVDSoftmax(task.classifier, window=16, num_candidates=32)


class TestConstruction:
    def test_rejects_window_exceeding_dim(self, small_task):
        with pytest.raises(ValueError):
            SVDSoftmax(small_task.classifier, window=65)

    def test_rejects_zero_window(self, small_task):
        with pytest.raises(ValueError):
            SVDSoftmax(small_task.classifier, window=0)

    def test_full_window_preview_is_exact(self, small_task):
        model = SVDSoftmax(small_task.classifier, window=64, num_candidates=8)
        features = small_task.sample_features(3)
        assert np.allclose(
            model.preview_logits(features),
            small_task.classifier.logits(features),
        )


class TestForward:
    def test_candidate_entries_exact(self, svd):
        task, model = svd
        features = task.sample_features(4)
        out = model(features)
        exact = task.classifier.logits(features)
        for row, indices in enumerate(out.candidates):
            assert np.allclose(out.logits[row, indices], exact[row, indices])

    def test_structured_task_recall(self, svd):
        task, model = svd
        features = task.sample_features(32)
        out = model(features)
        exact = task.classifier.logits(features)
        assert candidate_recall(exact, out, k=1) >= 0.9

    def test_wider_window_better_preview(self, svd):
        task, _ = svd
        features = task.sample_features(16)
        exact = task.classifier.logits(features)
        errors = []
        for window in (4, 16, 64):
            model = SVDSoftmax(task.classifier, window=window)
            preview = model.preview_logits(features)
            errors.append(np.linalg.norm(preview - exact))
        assert errors[0] > errors[1] > errors[2]

    def test_predict_agrees_with_full_on_structured(self, svd):
        task, model = svd
        features = task.sample_features(24)
        assert np.mean(
            model.predict(features) == task.classifier.predict(features)
        ) >= 0.9

    def test_threshold_selector_supported(self, small_task):
        model = SVDSoftmax(
            small_task.classifier, window=16,
            selector=CandidateSelector(
                mode="threshold", num_candidates=8, threshold=0.0
            ),
        )
        out = model(small_task.sample_features(2))
        assert out.batch_size == 2


class TestCost:
    def test_cost_includes_transform(self, svd):
        task, model = svd
        cost = model.cost(batch_size=1)
        d = task.classifier.hidden_dim
        assert cost.fp_flops >= 2.0 * d * d  # the Σ V^T h transform

    def test_cost_all_fp(self, svd):
        _, model = svd
        cost = model.cost()
        assert cost.int_flops == 0
        assert cost.int_bytes == 0

    def test_cost_scales_with_window(self, small_task):
        narrow = SVDSoftmax(small_task.classifier, window=4).cost()
        wide = SVDSoftmax(small_task.classifier, window=32).cost()
        assert wide.fp_bytes > narrow.fp_bytes
