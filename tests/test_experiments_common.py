import numpy as np
import pytest

from repro.data.registry import get_workload
from repro.experiments.common import (
    candidates_at_fraction,
    cpu_speedup_for_screening,
    lm_quality,
    nmt_quality,
    prepare_workload,
    reco_quality,
)


@pytest.fixture(scope="module")
def prepared_lm():
    return prepare_workload(
        get_workload("LSTM-W33K"), scale=256, max_categories=1024,
        train_samples=256,
    )


@pytest.fixture(scope="module")
def prepared_reco():
    return prepare_workload(
        get_workload("XMLCNN-670K"), scale=1024, max_categories=1024,
        train_samples=256,
    )


class TestPrepareWorkload:
    def test_shapes(self, prepared_lm):
        assert prepared_lm.classifier.num_categories <= 1024
        assert prepared_lm.classifier.hidden_dim == 1500
        assert prepared_lm.screener.projection_dim == 375  # 0.25 × 1500

    def test_screened_builder(self, prepared_lm):
        model = prepared_lm.screened(32)
        output = model(prepared_lm.train_features[:2])
        assert output.exact_count == 64

    def test_deterministic(self):
        a = prepare_workload(
            get_workload("GNMT-E32K"), scale=512, max_categories=256,
            train_samples=128,
        )
        b = prepare_workload(
            get_workload("GNMT-E32K"), scale=512, max_categories=256,
            train_samples=128,
        )
        assert np.array_equal(a.classifier.weight, b.classifier.weight)
        assert np.array_equal(a.screener.weight, b.screener.weight)


class TestQualityMetrics:
    def test_lm_quality_full_classifier(self, prepared_lm):
        ppl = lm_quality(
            prepared_lm, prepared_lm.classifier.predict_proba, num_tokens=64
        )
        assert 1.0 < ppl < prepared_lm.classifier.num_categories

    def test_nmt_quality_self_is_one(self):
        prepared = prepare_workload(
            get_workload("GNMT-E32K"), scale=512, max_categories=256,
            train_samples=128,
        )
        score = nmt_quality(
            prepared, prepared.classifier.predict, num_sentences=4,
            sentence_len=6,
        )
        assert score == pytest.approx(1.0)

    def test_reco_quality_range(self, prepared_reco):
        p1 = reco_quality(
            prepared_reco, prepared_reco.classifier.predict_proba,
            num_samples=32,
        )
        assert 0.0 <= p1 <= 1.0


class TestSpeedupAccounting:
    def test_speedup_decreases_with_budget(self):
        workload = get_workload("Transformer-W268K")
        small = cpu_speedup_for_screening(workload, candidates_per_row=100)
        large = cpu_speedup_for_screening(workload, candidates_per_row=50_000)
        assert small > large > 1.0

    def test_candidates_at_fraction(self):
        workload = get_workload("LSTM-W33K")
        result = candidates_at_fraction(workload, task_categories=1000,
                                        fraction=0.1)
        assert result["task"] == 100
        assert result["paper"] == round(33_278 * 0.1)
