import pytest

from repro.dram.timing import DDR4Timing, DDR4_2400, DDR4_2666


class TestDDR4_2400:
    def test_table3_core_timings(self):
        t = DDR4_2400
        assert (t.cl, t.trcd, t.trp) == (16, 16, 16)
        assert t.trc == 55
        assert t.tccd == 4
        assert t.trrd == 4

    def test_tfaw_reading(self):
        # Table 3's "tFAW=6" read as 6×tRRD (see module docstring).
        assert DDR4_2400.tfaw == 24

    def test_burst_geometry(self):
        t = DDR4_2400
        assert t.burst_cycles == 4  # BL8, DDR
        assert t.burst_bytes == 64

    def test_peak_bandwidth(self):
        # 2400 MT/s × 8 B = 19.2 GB/s.
        assert DDR4_2400.peak_bandwidth == pytest.approx(19.2e9)

    def test_row_bytes(self):
        # 1024 columns × 8 bits × 8 chips = 8 KiB.
        assert DDR4_2400.row_bytes == 8192

    def test_banks(self):
        assert DDR4_2400.banks_per_rank == 16

    def test_ras_rc_consistency(self):
        t = DDR4_2400
        assert t.tras + t.trp <= t.trc + 1


class TestDDR4_2666:
    def test_faster_clock(self):
        assert DDR4_2666.clock_hz > DDR4_2400.clock_hz

    def test_peak_bandwidth(self):
        assert DDR4_2666.peak_bandwidth == pytest.approx(21.3e9, rel=0.01)


class TestValidation:
    def test_rejects_inconsistent_ras(self):
        with pytest.raises(ValueError, match="inconsistent"):
            DDR4Timing(tras=50, trp=16, trc=55)

    def test_rejects_zero_clock(self):
        with pytest.raises(ValueError):
            DDR4Timing(clock_hz=0)

    def test_ns_per_cycle(self):
        assert DDR4_2400.ns_per_cycle == pytest.approx(0.8333, rel=1e-3)
