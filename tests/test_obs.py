"""Unit tests for the observability layer (``repro.obs``).

Instruments (counter/gauge/bounded-bucket histogram), the registry and
its two exports (snapshot dict, Prometheus text), the nested-span
tracer with Chrome trace-event export, and the recorder contract that
hot paths program against.
"""

import json
import math
import threading

import pytest

from repro.obs import (
    NULL_RECORDER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRecorder,
    Recorder,
    Tracer,
    latency_buckets,
    power_of_two_buckets,
    validate_chrome_events,
)


class TestBuckets:
    def test_latency_buckets_cover_the_requested_span(self):
        bounds = latency_buckets()
        assert bounds[0] == pytest.approx(1e-6)
        assert bounds[-1] == pytest.approx(100.0)
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_latency_buckets_density(self):
        # 8 decades at 4 per decade -> 33 edges.
        assert len(latency_buckets()) == 33

    def test_latency_buckets_validation(self):
        with pytest.raises(ValueError):
            latency_buckets(start=1.0, stop=0.5)
        with pytest.raises(ValueError):
            latency_buckets(per_decade=0)

    def test_power_of_two_buckets(self):
        assert power_of_two_buckets(8) == (1.0, 2.0, 4.0, 8.0)
        with pytest.raises(ValueError):
            power_of_two_buckets(0)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_gauge_holds_last_value(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_empty_summary(self):
        assert Histogram().summary() == {"count": 0}

    def test_histogram_exact_aggregates(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(105.0)
        assert hist.minimum == 0.5
        assert hist.maximum == 100.0
        # One observation per finite bucket plus one overflow.
        assert hist.bucket_counts == [1, 1, 1, 1]

    def test_histogram_percentiles_clamped_to_observed_range(self):
        hist = Histogram(bounds=latency_buckets())
        for _ in range(100):
            hist.observe(0.010)
        # Every observation sits in one bucket; interpolation must not
        # escape the observed min/max.
        assert hist.percentile(50) == pytest.approx(0.010)
        assert hist.percentile(99) == pytest.approx(0.010)
        assert hist.percentile(0) == pytest.approx(0.010)

    def test_histogram_percentile_ordering(self):
        hist = Histogram(bounds=latency_buckets())
        for i in range(1, 101):
            hist.observe(i / 1000.0)  # 1ms .. 100ms
        p50, p95, p99 = (hist.percentile(q) for q in (50, 95, 99))
        assert 0.001 <= p50 <= p95 <= p99 <= 0.1

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram().percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_snapshot_structure(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["p50"] == pytest.approx(0.5)
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("dram.cmd.act").inc(3)
        registry.gauge("queue").set(5)
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)  # overflow
        text = registry.render_prometheus()
        assert "# TYPE dram_cmd_act counter" in text
        assert "dram_cmd_act 3" in text
        assert "# TYPE queue gauge" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 11" in text
        assert "lat_count 3" in text


class TestTracer:
    def test_nested_spans_contained(self):
        tracer = Tracer()
        tracer.begin("outer")
        tracer.begin("inner")
        tracer.end()
        tracer.end()
        events = {event["name"]: event for event in tracer.chrome_events()}
        inner, outer = events["inner"], events["outer"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-6
        validate_chrome_events(tracer.chrome_events())

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError):
            Tracer().end()

    def test_open_spans_accounting(self):
        tracer = Tracer()
        tracer.begin("a")
        assert tracer.open_spans() == 1
        tracer.end()
        assert tracer.open_spans() == 0

    def test_bounded_memory(self):
        tracer = Tracer(max_events=2)
        for index in range(5):
            tracer.begin(f"s{index}")
            tracer.end()
        assert tracer.num_events == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer(max_events=1)
        tracer.begin("a")
        tracer.end()
        tracer.begin("b")
        tracer.end()
        tracer.clear()
        assert tracer.num_events == 0
        assert tracer.dropped == 0

    def test_write_round_trips_valid_chrome_json(self, tmp_path):
        tracer = Tracer()
        tracer.begin("phase")
        tracer.end()
        path = tmp_path / "trace.json"
        assert tracer.write(path) == 1
        events = json.loads(path.read_text())
        validate_chrome_events(events)
        assert events[0]["name"] == "phase"
        assert events[0]["ph"] == "X"

    def test_per_thread_tids(self):
        tracer = Tracer()

        def worker():
            tracer.begin("threaded")
            tracer.end()

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        tracer.begin("main")
        tracer.end()
        tids = {event["tid"] for event in tracer.chrome_events()}
        assert len(tids) == 2

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError, match="JSON array"):
            validate_chrome_events({"not": "a list"})
        with pytest.raises(ValueError, match="missing keys"):
            validate_chrome_events([{"name": "x", "ph": "X"}])
        good = {"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="ph must be"):
            validate_chrome_events([dict(good, ph="B")])
        with pytest.raises(ValueError, match="ts must be"):
            validate_chrome_events([dict(good, ts=-1)])
        with pytest.raises(ValueError, match="empty span name"):
            validate_chrome_events([dict(good, name="")])
        assert validate_chrome_events([good]) == [good]


class TestRecorderContract:
    def test_null_recorder_is_inert(self):
        assert NULL_RECORDER.enabled is False
        assert NULL_RECORDER.registry is None
        assert NULL_RECORDER.tracer is None
        # One shared span object: no per-call allocation on hot paths.
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")
        with NULL_RECORDER.span("x"):
            NULL_RECORDER.increment("c")
            NULL_RECORDER.observe("h", 1.0)
            NULL_RECORDER.set_gauge("g", 1.0)
        assert NULL_RECORDER.snapshot() == {}

    def test_live_recorder_records_all_verbs(self):
        recorder = Recorder()
        assert recorder.enabled is True
        recorder.increment("c", 2)
        recorder.observe("h", 0.25, bounds=(1.0,))
        recorder.set_gauge("g", 9)
        with recorder.span("phase"):
            pass
        snap = recorder.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["gauges"]["g"] == 9
        assert snap["histograms"]["span.phase"]["count"] == 1
        assert snap["histograms"]["span.phase"]["min"] >= 0.0

    def test_span_durations_use_monotonic_time(self):
        recorder = Recorder()
        with recorder.span("timed"):
            pass
        summary = recorder.snapshot()["histograms"]["span.timed"]
        assert math.isfinite(summary["max"])
        assert summary["min"] >= 0.0

    def test_trace_flag_attaches_tracer(self):
        recorder = Recorder(trace=True)
        assert recorder.tracer is not None
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        names = recorder.tracer.span_names()
        assert names == ["inner", "outer"]  # completion order
        validate_chrome_events(recorder.tracer.chrome_events())

    def test_recorder_without_trace_has_no_tracer(self):
        assert Recorder().tracer is None

    def test_null_recorder_subclass_relationship(self):
        # Components type against the null recorder's surface; the live
        # recorder must be substitutable everywhere.
        assert isinstance(Recorder(), NullRecorder)

    def test_prometheus_passthrough(self):
        recorder = Recorder()
        recorder.increment("hits")
        assert "# TYPE hits counter" in recorder.render_prometheus()
