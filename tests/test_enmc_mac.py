import numpy as np
import pytest

from repro.enmc.config import DEFAULT_CONFIG, ENMCConfig
from repro.enmc.mac import MACArray, SpecialFunctionUnit
from repro.linalg.functional import softmax


class TestMACArray:
    def test_cycles_ceiling(self):
        mac = MACArray(lanes=128, bits=4)
        assert mac.cycles_for(128) == 1
        assert mac.cycles_for(129) == 2

    def test_zero_macs(self):
        assert MACArray(lanes=16, bits=32).cycles_for(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MACArray(lanes=16, bits=32).cycles_for(-1)

    def test_accumulates_total(self):
        mac = MACArray(lanes=16, bits=32)
        mac.cycles_for(100)
        mac.cycles_for(50)
        assert mac.total_macs == 150

    def test_matvec_functional(self):
        mac = MACArray(lanes=16, bits=32)
        matrix = np.arange(6.0).reshape(2, 3)
        vector = np.array([1.0, 0.0, 2.0])
        assert np.allclose(mac.matvec(matrix, vector), matrix @ vector)


class TestSFU:
    def test_cycles(self):
        sfu = SpecialFunctionUnit(elements_per_cycle=4)
        assert sfu.cycles_for(4) == 1
        assert sfu.cycles_for(5) == 2
        assert sfu.cycles_for(0) == 0

    def test_softmax_close_to_exact(self):
        sfu = SpecialFunctionUnit(taylor_order=4)
        logits = np.array([3.0, 1.0, -2.0, 0.5])
        approx = sfu.softmax(logits)
        exact = softmax(logits)
        assert np.allclose(approx, exact, atol=0.02)
        assert approx.sum() == pytest.approx(1.0)

    def test_softmax_order_improves(self):
        logits = np.random.default_rng(0).standard_normal(32) * 3
        exact = softmax(logits)
        err2 = np.abs(SpecialFunctionUnit(taylor_order=2).softmax(logits) - exact).max()
        err6 = np.abs(SpecialFunctionUnit(taylor_order=6).softmax(logits) - exact).max()
        assert err6 <= err2

    def test_sigmoid_saturation(self):
        sfu = SpecialFunctionUnit()
        out = sfu.sigmoid(np.array([-100.0, 0.0, 100.0]))
        assert out[0] == 0.0
        assert out[1] == pytest.approx(0.5, abs=0.01)
        assert out[2] == 1.0

    def test_sigmoid_monotone(self):
        sfu = SpecialFunctionUnit()
        x = np.linspace(-6, 6, 100)
        out = sfu.sigmoid(x)
        assert np.all(np.diff(out) >= -1e-9)


class TestConfig:
    def test_table3_defaults(self):
        config = DEFAULT_CONFIG
        assert config.frequency_hz == 400e6
        assert config.int4_macs == 128
        assert config.fp32_macs == 16
        assert config.channels == 8
        assert config.ranks_per_channel == 8
        assert config.screener_buffer_bytes == 256

    def test_total_ranks(self):
        assert DEFAULT_CONFIG.total_ranks == 64

    def test_rank_bandwidth(self):
        assert DEFAULT_CONFIG.rank_bandwidth == pytest.approx(19.2e9)

    def test_aggregate_internal_bandwidth(self):
        # 64 ranks × 19.2 GB/s — the NMP bandwidth advantage.
        assert DEFAULT_CONFIG.aggregate_internal_bandwidth == pytest.approx(
            64 * 19.2e9
        )

    def test_clock_ratio(self):
        assert DEFAULT_CONFIG.dram_cycles_per_logic_cycle == pytest.approx(3.0)

    def test_mac_rates(self):
        assert DEFAULT_CONFIG.int4_macs_per_second() == 128 * 400e6
        assert DEFAULT_CONFIG.fp32_macs_per_second() == 16 * 400e6

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ENMCConfig(int4_macs=0)
