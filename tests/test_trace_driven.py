"""Trace-driven DRAM validation of real compiled kernels."""

import numpy as np
import pytest

from repro.compiler import compile_screened_classification
from repro.core import ScreeningConfig, train_screener
from repro.data import make_task
from repro.enmc import ENMCDimm, replay_kernel_on_dram
from repro.enmc.config import DEFAULT_CONFIG


@pytest.fixture(scope="module")
def executed_kernel():
    task = make_task(num_categories=800, hidden_dim=32, rng=6)
    screener = train_screener(
        task.classifier, task.sample_features(256),
        config=ScreeningConfig(projection_dim=8), solver="lstsq", rng=7,
    )
    feature = task.sample_features(1)[0]
    kernel = compile_screened_classification(
        task.classifier, screener, feature, threshold=1.0
    )
    dimm = ENMCDimm(DEFAULT_CONFIG, memory=kernel.memory)
    trace = dimm.execute(kernel.program)
    return kernel, trace


class TestReplay:
    def test_replay_runs(self, executed_kernel):
        kernel, trace = executed_kernel
        result = replay_kernel_on_dram(kernel, trace)
        assert result.dram_cycles > 0
        assert result.stats.reads > 0

    def test_screen_bytes_cover_tiles(self, executed_kernel):
        kernel, trace = executed_kernel
        result = replay_kernel_on_dram(kernel, trace)
        # At least the INT4 screening weight volume (burst-rounded up).
        assert result.screen_bytes >= 800 * 9 * 0.5

    def test_gather_bytes_track_candidates(self, executed_kernel):
        kernel, trace = executed_kernel
        result = replay_kernel_on_dram(kernel, trace)
        expected = len(trace.exact_results) * 33 * 4
        assert result.gather_bytes == pytest.approx(expected)

    def test_functional_accounting_is_conservative(self, executed_kernel):
        """The functional controller charges each access as a serial
        stream (an upper bound; see ExecutionTrace.total_cycles); the
        cycle-level replay overlaps accesses across banks and must come
        out faster — but within one order of magnitude."""
        kernel, trace = executed_kernel
        result = replay_kernel_on_dram(kernel, trace)
        analytic_logic_cycles = trace.dram_cycles
        replay_logic_cycles = result.logic_cycles(DEFAULT_CONFIG)
        ratio = replay_logic_cycles / max(analytic_logic_cycles, 1e-9)
        assert 0.1 < ratio <= 1.5
