import pytest

from repro.core.metrics import cost_of_screened_classification
from repro.data.registry import get_workload
from repro.host import V100, GPUModel


class TestGPUModel:
    def test_small_classifier_fits(self):
        # 33K × 1500 × 4 B ≈ 0.2 GB: resident.
        assert not V100.capacity_exceeded(33_278, 1500)

    def test_xc_overflows(self):
        # 100M × 512 × 4 B ≈ 190 GB: far beyond HBM (Fig. 3's problem).
        assert V100.capacity_exceeded(100_000_000, 512)

    def test_resident_case_fast(self):
        seconds = V100.classification_seconds(33_278, 1500)
        # HBM-bound: 200 MB / 900 GB/s ≈ 0.22 ms.
        assert seconds < 1e-3

    def test_spill_dominates_at_scale(self):
        workload = get_workload("S100M")
        seconds = V100.classification_seconds(
            workload.num_categories, workload.hidden_dim
        )
        weight_bytes = workload.classifier_bytes
        spill = weight_bytes - 0.8 * V100.device_memory_bytes
        transfer_floor = spill / V100.interconnect_bandwidth
        assert seconds >= transfer_floor

    def test_gpu_loses_to_resident_at_xc_scale(self):
        """The motivation claim: once weights spill over PCIe, raw GPU
        FLOPs don't help — the CPU's larger memory can win."""
        from repro.host import XEON_8280

        workload = get_workload("S1M")  # 2 GB > 80% of 32 GB? No: fits.
        big = get_workload("S100M")
        gpu = V100.classification_seconds(big.num_categories, big.hidden_dim)
        cpu = XEON_8280.full_classification_seconds(
            big.num_categories, big.hidden_dim
        )
        # (Both are hypothetical at 190 GB; the CPU with pooled memory
        # streams at ~96 GB/s vs PCIe at 16 GB/s.)
        assert gpu > cpu

    def test_screened_on_gpu(self):
        workload = get_workload("Transformer-W268K")
        cost = cost_of_screened_classification(
            workload.num_categories, workload.hidden_dim, 128, 1000
        )
        screened = V100.screened_classification_seconds(cost)
        full = V100.classification_seconds(
            workload.num_categories, workload.hidden_dim
        )
        assert screened < full

    def test_resident_fraction_validation(self):
        with pytest.raises(ValueError):
            V100.classification_seconds(1000, 64, resident_fraction=1.5)

    def test_custom_model(self):
        a100 = GPUModel(name="A100", device_memory_bytes=80e9,
                        hbm_bandwidth=2e12, peak_flops=19.5e12)
        assert not a100.capacity_exceeded(10_000_000, 512)
