"""Seeded fuzz of the ISA wire format: encode→decode round-trips exactly.

Every opcode in :mod:`repro.isa` is exercised with randomized legal
field values; for each sample the decoded instruction must equal the
original field for field (frozen dataclass equality), and the command
word must be a non-zero 13-bit pattern (zero is a normal PRECHARGE, so
it is never a valid instruction encoding).

Cases that once falsified the round-trip get pinned as regression tests
at the bottom.
"""

import numpy as np
import pytest

from repro.isa.encoding import _COMMAND_MASK, EncodedCommand, decode, encode
from repro.isa.instruction import (
    Barrier,
    Clear,
    Compute,
    Filter,
    Init,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId

MASK_64 = (1 << 64) - 1

INT_BUFFERS = [b for b in BufferId if b.is_integer]
FP_BUFFERS = [
    b
    for b in BufferId
    if not b.is_integer and b not in (BufferId.INDEX, BufferId.OUTPUT)
]
INT_COMPUTE = [Opcode.ADD_INT4, Opcode.MUL_INT4, Opcode.MUL_ADD_INT4]
FP_COMPUTE = [Opcode.ADD_FP32, Opcode.MUL_FP32, Opcode.MUL_ADD_FP32]


def random_u64(rng):
    """A 64-bit value biased toward the interesting edges."""
    choice = rng.integers(0, 4)
    if choice == 0:
        return int(rng.integers(0, 1 << 16))
    if choice == 1:
        return MASK_64 - int(rng.integers(0, 1 << 8))
    if choice == 2:
        return 1 << int(rng.integers(0, 64))
    return int(rng.integers(0, 1 << 63)) * 2 + int(rng.integers(0, 2))


def random_instruction(rng):
    """One random legal instruction, uniform over instruction kinds."""
    kind = int(rng.integers(0, 11))
    pick = lambda seq: seq[int(rng.integers(0, len(seq)))]
    if kind == 0:
        return Init(register=pick(list(RegisterId)), value=random_u64(rng))
    if kind == 1:
        return Query(register=pick(list(RegisterId)))
    if kind == 2:
        return Load(buffer=pick(list(BufferId)), address=random_u64(rng))
    if kind == 3:
        return Store(buffer=pick(list(BufferId)), address=random_u64(rng))
    if kind == 4:
        return Move(destination=pick(list(BufferId)), source=pick(list(BufferId)))
    if kind == 5:
        if rng.integers(0, 2):
            return Compute(
                opcode=pick(INT_COMPUTE),
                buffer_a=pick(INT_BUFFERS),
                buffer_b=pick(INT_BUFFERS),
            )
        return Compute(
            opcode=pick(FP_COMPUTE),
            buffer_a=pick(FP_BUFFERS),
            buffer_b=pick(FP_BUFFERS),
        )
    if kind == 6:
        return Filter(buffer=pick([BufferId.PSUM_INT4, BufferId.PSUM_FP32]))
    if kind == 7:
        return SpecialFunction(opcode=pick([Opcode.SOFTMAX, Opcode.SIGMOID]))
    return pick([Barrier(), Return(), Clear(), Nop()])


class TestRoundTripFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instructions_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(250):
            instruction = random_instruction(rng)
            encoded = encode(instruction)
            assert 0 < encoded.command <= _COMMAND_MASK
            assert decode(encoded) == instruction

    def test_every_opcode_is_covered(self):
        """The fuzz generator can produce every opcode (so a passing
        fuzz run really covers the whole ISA)."""
        rng = np.random.default_rng(99)
        seen = set()
        for _ in range(2000):
            seen.add(encode(random_instruction(rng)).opcode)
        assert seen == set(Opcode)

    def test_data_word_agrees_with_carries_data(self):
        """The DQ word is present exactly when the opcode carries data —
        except QUERY, whose burst flows DIMM→host (data=None)."""
        rng = np.random.default_rng(7)
        for _ in range(500):
            instruction = random_instruction(rng)
            encoded = encode(instruction)
            if isinstance(instruction, Query):
                assert encoded.data is None
            elif instruction.carries_data:
                assert encoded.data == instruction.data_word()
            else:
                assert encoded.data is None


class TestPinnedCases:
    """Edge cases worth pinning independently of the fuzz seeds."""

    def test_nop_encodes_nonzero(self):
        # Opcode.NOP == 0, so a naive encoder emits command word 0 —
        # which the bus reads as a normal PRECHARGE.  The marker bit
        # keeps the round-trip alive.
        encoded = encode(Nop())
        assert encoded.command != 0
        assert decode(encoded) == Nop()

    def test_init_value_zero_and_max(self):
        for value in (0, MASK_64):
            instruction = Init(register=RegisterId.THRESHOLD, value=value)
            assert decode(encode(instruction)) == instruction

    def test_highest_register_id(self):
        # BATCH_ID == 17 needs all 5 register bits; a 4-bit operand
        # field would silently alias it to RegisterId(1).
        instruction = Query(register=RegisterId.BATCH_ID)
        assert decode(encode(instruction)) == instruction

    def test_address_with_high_bit_set(self):
        instruction = Load(buffer=BufferId.OUTPUT, address=1 << 63)
        assert decode(encode(instruction)) == instruction

    def test_move_between_extreme_buffers(self):
        instruction = Move(destination=BufferId.OUTPUT, source=BufferId.FEATURE_INT4)
        assert decode(encode(instruction)) == instruction

    def test_missing_dq_word_rejected(self):
        command = encode(Load(buffer=BufferId.INDEX, address=4096)).command
        with pytest.raises(ValueError, match="DQ"):
            decode(EncodedCommand(command=command))
