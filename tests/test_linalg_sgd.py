import numpy as np
import pytest

from repro.linalg.sgd import SGD, Adam


def quadratic_grad(params):
    """Gradient of f(w) = ||w - 3||² per parameter array."""
    return [2.0 * (p - 3.0) for p in params]


class TestSGD:
    def test_converges_on_quadratic(self):
        w = np.array([0.0, 10.0])
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.step(quadratic_grad([w]))
        assert np.allclose(w, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        w = np.array([0.0])
        opt = SGD([w], lr=0.05, momentum=0.9)
        for _ in range(300):
            opt.step(quadratic_grad([w]))
        assert np.allclose(w, 3.0, atol=1e-3)

    def test_updates_in_place(self):
        w = np.zeros(3)
        ref = w
        SGD([w], lr=1.0).step([np.ones(3)])
        assert ref is w
        assert np.allclose(w, -1.0)

    def test_multiple_params(self):
        a, b = np.zeros(2), np.zeros(3)
        opt = SGD([a, b], lr=0.5)
        opt.step([np.ones(2), 2 * np.ones(3)])
        assert np.allclose(a, -0.5)
        assert np.allclose(b, -1.0)

    def test_rejects_grad_count_mismatch(self):
        opt = SGD([np.zeros(2)], lr=0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(2), np.zeros(2)])

    def test_rejects_grad_shape_mismatch(self):
        opt = SGD([np.zeros(2)], lr=0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(3)])

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.1, momentum=1.0)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(1)], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w = np.array([0.0, 10.0, -5.0])
        opt = Adam([w], lr=0.3)
        for _ in range(300):
            opt.step(quadratic_grad([w]))
        assert np.allclose(w, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        # First step magnitude ≈ lr regardless of gradient scale.
        w = np.zeros(1)
        opt = Adam([w], lr=0.1)
        opt.step([np.array([1e-4])])
        assert abs(w[0] + 0.1) < 0.01

    def test_state_dict_roundtrip_shape(self):
        w = np.zeros(4)
        opt = Adam([w], lr=0.1)
        opt.step([np.ones(4)])
        state = opt.state_dict()
        assert state["t"] == 1
        assert state["m"][0].shape == (4,)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(1)], beta1=1.0)


def test_sgd_matches_lstsq_on_screener_objective(small_task):
    """Algorithm 1's SGD converges toward the closed-form optimum."""
    from repro.core import ScreeningConfig, train_screener

    features = small_task.sample_features(256, rng=7)
    config = ScreeningConfig(projection_dim=16, quantization_bits=None)
    exact, exact_report = train_screener(
        small_task.classifier, features, config=config,
        solver="lstsq", rng=3, return_report=True,
    )
    sgd, sgd_report = train_screener(
        small_task.classifier, features, config=config,
        solver="adam", lr=0.02, epochs=60, rng=3, return_report=True,
    )
    assert sgd_report.losses[-1] < 2.0 * exact_report.final_loss + 1e-9
