import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import SyntheticTask, SyntheticTaskConfig, make_task


class TestConfig:
    def test_rejects_rank_above_dim(self):
        with pytest.raises(ValueError):
            SyntheticTaskConfig(
                num_categories=10, hidden_dim=8, effective_rank=16
            )

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SyntheticTaskConfig(num_categories=0, hidden_dim=8)


class TestTaskGeometry:
    def test_classifier_shape(self, small_task):
        assert small_task.classifier.weight.shape == (2000, 64)

    def test_low_effective_rank(self, small_task):
        """The weight spectrum decays: top-r singular values carry most
        of the energy (the property screening exploits)."""
        sv = np.linalg.svd(small_task.classifier.weight, compute_uv=False)
        r = small_task.config.effective_rank
        energy_top = np.sum(sv[:r] ** 2)
        assert energy_top / np.sum(sv**2) > 0.5

    def test_zipf_bias(self, small_task):
        bias = small_task.classifier.bias
        # Head categories get larger prior bias than tail.
        assert bias[0] > bias[-1]
        assert np.all(np.diff(bias) <= 1e-12)

    def test_features_unit_rms(self, small_task):
        features = small_task.sample_features(64)
        rms = np.sqrt(np.mean(features**2, axis=1))
        assert np.allclose(rms, 1.0)

    def test_top_heavy_softmax(self, small_task):
        """Samples produce peaked output distributions, like real LMs."""
        features, _ = small_task.sample(32)
        proba = small_task.classifier.predict_proba(features)
        top10 = np.sort(proba, axis=1)[:, -10:].sum(axis=1)
        # 10 of 2000 categories (0.5%) carry >25% of the mass.
        assert np.mean(top10) > 0.25

    def test_labels_achievable(self, small_task):
        """The exact classifier beats chance by a wide margin."""
        features, labels = small_task.sample(128)
        accuracy = np.mean(small_task.classifier.predict(features) == labels)
        assert accuracy > 50.0 / 2000


class TestSampling:
    def test_reproducible_with_rng(self, small_task):
        a, la = small_task.sample(16, rng=9)
        b, lb = small_task.sample(16, rng=9)
        assert np.array_equal(a, b)
        assert np.array_equal(la, lb)

    def test_zipf_label_skew(self, small_task):
        labels = small_task.sample_labels(2000, rng=0)
        head = np.mean(labels < 200)  # top 10% of categories
        assert head > 0.4

    def test_multilabel_shapes(self):
        task = make_task(
            500, 32, rng=0, normalization="sigmoid", labels_per_sample=5
        )
        features, labels = task.sample(8)
        assert features.shape == (8, 32)
        assert labels.shape == (8, 5)

    def test_features_for_labels_aligned(self, small_task):
        labels = np.array([3, 700])
        features = small_task.features_for_labels(labels, rng=1)
        logits = small_task.classifier.logits(features)
        # Own-label logit should rank high.
        ranks = (logits > logits[np.arange(2), labels][:, None]).sum(axis=1)
        # Head label ranks near the top; the tail label (Zipf-penalized
        # bias) still lands in the top quartile of 2000 categories.
        assert ranks[0] < 50
        assert ranks[1] < 500

    @given(st.integers(1, 32))
    @settings(max_examples=10, deadline=None)
    def test_sample_count(self, count):
        task = make_task(100, 16, rng=0)
        features, labels = task.sample(count)
        assert features.shape == (count, 16)
        assert labels.shape == (count,)


def test_make_task_defaults():
    task = make_task(1000, 128, rng=0)
    assert task.config.effective_rank == 32
