import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.topk import (
    calibrate_threshold,
    select_above_threshold,
    top_k_indices,
)

score_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(2, 32)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestTopK:
    def test_sorted_descending(self):
        scores = np.array([1.0, 9.0, 3.0, 7.0])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_unsorted_same_set(self):
        scores = np.random.default_rng(0).standard_normal(50)
        sorted_idx = set(top_k_indices(scores, 5, sort=True).tolist())
        unsorted_idx = set(top_k_indices(scores, 5, sort=False).tolist())
        assert sorted_idx == unsorted_idx

    def test_batched(self):
        scores = np.array([[1.0, 2.0], [5.0, 0.0]])
        out = top_k_indices(scores, 1)
        assert out.tolist() == [[1], [0]]

    def test_k_equals_dim(self):
        scores = np.array([3.0, 1.0, 2.0])
        assert top_k_indices(scores, 3).tolist() == [0, 2, 1]

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 4)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 0)

    @given(score_arrays, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_contains_max_value(self, scores, k):
        # Value-based (ties may resolve to any index holding the max).
        k = min(k, scores.shape[1])
        picked = top_k_indices(scores, k, sort=False)
        for row in range(scores.shape[0]):
            assert scores[row].max() in scores[row, picked[row]]

    @given(score_arrays, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_selected_dominate_unselected(self, scores, k):
        k = min(k, scores.shape[1])
        picked = top_k_indices(scores, k, sort=False)
        for row in range(scores.shape[0]):
            chosen = set(picked[row].tolist())
            rest = [scores[row, j] for j in range(scores.shape[1])
                    if j not in chosen]
            if rest:
                assert min(scores[row, j] for j in chosen) >= max(rest) - 1e-12


class TestThresholdSelect:
    def test_strict_inequality(self):
        out = select_above_threshold(np.array([1.0, 2.0, 3.0]), 2.0)
        assert out[0].tolist() == [2]

    def test_per_row_ragged(self):
        scores = np.array([[5.0, 0.0], [5.0, 5.0]])
        out = select_above_threshold(scores, 1.0)
        assert out[0].tolist() == [0]
        assert out[1].tolist() == [0, 1]

    def test_empty_selection(self):
        out = select_above_threshold(np.array([1.0]), 10.0)
        assert out[0].size == 0

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            select_above_threshold(np.zeros((2, 2, 2)), 0.0)


class TestCalibrate:
    def test_hits_target_on_uniform(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, size=(64, 1000))
        threshold = calibrate_threshold(scores, 50)
        counts = [row.size for row in select_above_threshold(scores, threshold)]
        assert 35 < np.mean(counts) < 65

    def test_target_exceeding_dim_selects_all(self):
        scores = np.array([[1.0, 2.0, 3.0]])
        threshold = calibrate_threshold(scores, 10)
        assert all(
            row.size == 3 for row in select_above_threshold(scores, threshold)
        )

    @given(score_arrays)
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotone_in_budget(self, scores):
        small = calibrate_threshold(scores, 1)
        large = calibrate_threshold(scores, scores.shape[1] - 1)
        assert large <= small + 1e-12
