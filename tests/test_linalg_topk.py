import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.topk import (
    BlockwiseThreshold,
    BlockwiseTopM,
    calibrate_threshold,
    select_above_threshold,
    stable_top_m_indices,
    top_k_indices,
)
from repro.utils.memory import Workspace

score_arrays = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 5), st.integers(2, 32)),
    elements=st.floats(-1e6, 1e6, allow_nan=False),
)


class TestTopK:
    def test_sorted_descending(self):
        scores = np.array([1.0, 9.0, 3.0, 7.0])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_unsorted_same_set(self):
        scores = np.random.default_rng(0).standard_normal(50)
        sorted_idx = set(top_k_indices(scores, 5, sort=True).tolist())
        unsorted_idx = set(top_k_indices(scores, 5, sort=False).tolist())
        assert sorted_idx == unsorted_idx

    def test_batched(self):
        scores = np.array([[1.0, 2.0], [5.0, 0.0]])
        out = top_k_indices(scores, 1)
        assert out.tolist() == [[1], [0]]

    def test_k_equals_dim(self):
        scores = np.array([3.0, 1.0, 2.0])
        assert top_k_indices(scores, 3).tolist() == [0, 2, 1]

    def test_k_too_large_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 4)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            top_k_indices(np.zeros(3), 0)

    @given(score_arrays, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_contains_max_value(self, scores, k):
        # Value-based (ties may resolve to any index holding the max).
        k = min(k, scores.shape[1])
        picked = top_k_indices(scores, k, sort=False)
        for row in range(scores.shape[0]):
            assert scores[row].max() in scores[row, picked[row]]

    @given(score_arrays, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_selected_dominate_unselected(self, scores, k):
        k = min(k, scores.shape[1])
        picked = top_k_indices(scores, k, sort=False)
        for row in range(scores.shape[0]):
            chosen = set(picked[row].tolist())
            rest = [scores[row, j] for j in range(scores.shape[1])
                    if j not in chosen]
            if rest:
                assert min(scores[row, j] for j in chosen) >= max(rest) - 1e-12


class TestThresholdSelect:
    def test_strict_inequality(self):
        out = select_above_threshold(np.array([1.0, 2.0, 3.0]), 2.0)
        assert out[0].tolist() == [2]

    def test_per_row_ragged(self):
        scores = np.array([[5.0, 0.0], [5.0, 5.0]])
        out = select_above_threshold(scores, 1.0)
        assert out[0].tolist() == [0]
        assert out[1].tolist() == [0, 1]

    def test_empty_selection(self):
        out = select_above_threshold(np.array([1.0]), 10.0)
        assert out[0].size == 0

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            select_above_threshold(np.zeros((2, 2, 2)), 0.0)


def reference_stable_top_m(scores, m):
    """Oracle: full lexicographic sort by (score desc, index asc)."""
    out = []
    for row in scores:
        order = np.lexsort((np.arange(row.size), -row))
        out.append(np.sort(order[: min(m, row.size)]))
    return np.array(out)


class TestStableTopM:
    def test_basic(self):
        scores = np.array([[1.0, 9.0, 3.0, 7.0]])
        assert stable_top_m_indices(scores, 2).tolist() == [[1, 3]]

    def test_ties_break_to_lowest_index(self):
        scores = np.array([[5.0, 5.0, 5.0, 5.0]])
        assert stable_top_m_indices(scores, 2).tolist() == [[0, 1]]

    def test_ties_straddling_the_cut(self):
        scores = np.array([[3.0, 7.0, 7.0, 7.0, 1.0]])
        assert stable_top_m_indices(scores, 2).tolist() == [[1, 2]]

    def test_m_at_least_n_selects_everything(self):
        scores = np.array([[2.0, 1.0], [0.0, 3.0]])
        assert stable_top_m_indices(scores, 5).tolist() == [[0, 1], [0, 1]]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            stable_top_m_indices(np.zeros(4), 2)

    @given(score_arrays, st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_matches_lexsort_oracle(self, scores, m):
        m = min(m, scores.shape[1])
        assert np.array_equal(
            stable_top_m_indices(scores, m), reference_stable_top_m(scores, m)
        )

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 24)),
            elements=st.floats(-3, 3, allow_nan=False).map(round),
        ),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle_under_heavy_ties(self, scores, m):
        """Integer-valued scores force massive ties — the regime the
        deterministic tie-break exists for."""
        m = min(m, scores.shape[1])
        assert np.array_equal(
            stable_top_m_indices(scores, m), reference_stable_top_m(scores, m)
        )


class TestBlockwiseReducers:
    def run_blocked(self, reducer, scores, boundaries):
        start = 0
        for stop in list(boundaries) + [scores.shape[1]]:
            reducer.update(start, scores[:, start:stop])
            start = stop
        return reducer.finalize()

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 24)),
            elements=st.floats(-100, 100, allow_nan=False).map(
                lambda value: round(value, 1)
            ),
        ),
        st.integers(1, 6),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_top_m_partition_invariant(self, scores, m, data):
        """Any block partition reproduces the dense stable selection."""
        batch, n = scores.shape
        m = min(m, n)
        boundaries = sorted(
            data.draw(
                st.lists(st.integers(1, n - 1), max_size=4, unique=True)
            )
        )
        reducer = BlockwiseTopM(batch, m)
        counts, cols, values = self.run_blocked(reducer, scores, boundaries)
        expected = stable_top_m_indices(scores, m)
        assert np.array_equal(counts, np.full(batch, m))
        assert np.array_equal(cols.reshape(batch, m), expected)
        assert np.array_equal(
            values.reshape(batch, m),
            np.take_along_axis(scores, expected, axis=1),
        )

    @given(
        arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 24)),
            elements=st.floats(-100, 100, allow_nan=False),
        ),
        st.floats(-50, 50, allow_nan=False),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_threshold_partition_invariant(self, scores, threshold, data):
        batch, n = scores.shape
        boundaries = sorted(
            data.draw(
                st.lists(st.integers(1, n - 1), max_size=4, unique=True)
            )
        )
        reducer = BlockwiseThreshold(batch, threshold)
        counts, cols, values = self.run_blocked(reducer, scores, boundaries)
        expected = select_above_threshold(scores, threshold)
        assert np.array_equal(counts, [row.size for row in expected])
        assert np.array_equal(cols, np.concatenate(expected))
        rows = np.repeat(np.arange(batch), counts)
        assert np.array_equal(values, scores[rows, cols])

    def test_top_m_reuses_workspace(self):
        workspace = Workspace()
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((4, 40))
        for round_index in range(4):
            reducer = BlockwiseTopM(4, 5, workspace=workspace)
            self.run_blocked(reducer, scores, [10, 20, 30])
            if round_index == 0:
                settled = workspace.allocations
        assert workspace.allocations == settled

    def test_threshold_requires_threshold(self):
        with pytest.raises(ValueError):
            BlockwiseThreshold(2, None)

    def test_float32_values_stay_float32(self):
        scores = np.random.default_rng(1).standard_normal((2, 16)).astype(
            np.float32
        )
        reducer = BlockwiseTopM(2, 3, dtype=np.float32)
        reducer.update(0, scores)
        _, cols, values = reducer.finalize()
        assert values.dtype == np.float32
        assert np.array_equal(
            values.reshape(2, 3),
            np.take_along_axis(
                scores, stable_top_m_indices(scores, 3), axis=1
            ),
        )


class TestCalibrate:
    def test_hits_target_on_uniform(self):
        rng = np.random.default_rng(0)
        scores = rng.uniform(0, 1, size=(64, 1000))
        threshold = calibrate_threshold(scores, 50)
        counts = [row.size for row in select_above_threshold(scores, threshold)]
        assert 35 < np.mean(counts) < 65

    def test_target_exceeding_dim_selects_all(self):
        scores = np.array([[1.0, 2.0, 3.0]])
        threshold = calibrate_threshold(scores, 10)
        assert all(
            row.size == 3 for row in select_above_threshold(scores, threshold)
        )

    @given(score_arrays)
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotone_in_budget(self, scores):
        small = calibrate_threshold(scores, 1)
        large = calibrate_threshold(scores, scores.shape[1] - 1)
        assert large <= small + 1e-12
