"""Experiment-harness tests: structure and paper-shape invariants.

Full-scale fig11 runs live in the benchmark suite; here we run reduced
configurations and assert the *qualitative* results the paper reports.
"""

import pytest

from repro.data.registry import get_workload
from repro.experiments import (
    ALL_EXPERIMENTS,
    fig04_breakdown,
    fig05_motivation,
    fig11_quality,
    fig12_sensitivity,
    fig13_performance,
    fig14_energy,
    fig15_scalability,
    table4_budget,
    table5_area_power,
)
from repro.experiments.common import geometric_mean, prepare_workload


class TestFig4:
    def test_classification_dominates_at_scale(self):
        rows = {r.workload: r for r in fig04_breakdown.run()}
        assert rows["XMLCNN-670K"].param_fraction > 0.5

    def test_all_workloads_present(self):
        rows = fig04_breakdown.run(include_synthetic=True)
        assert len(rows) == 7

    def test_transformer_time_share_matches_intro_claim(self):
        """Intro: "the final classification layer consumes 50% of
        overall model inference time" for the Transformer LM."""
        rows = {r.workload: r for r in fig04_breakdown.run_time_breakdown()}
        share = rows["Transformer-W268K"].classification_share
        assert 0.35 < share < 0.65

    def test_recommendation_time_dominated_by_classification(self):
        rows = {r.workload: r for r in fig04_breakdown.run_time_breakdown()}
        assert rows["XMLCNN-670K"].classification_share > 0.7


class TestFig5:
    def test_footprint_linear(self):
        rows = fig05_motivation.run_scaling(categories=(10_000, 100_000))
        assert rows[1].footprint_bytes == 10 * rows[0].footprint_bytes

    def test_cpu_time_monotone(self):
        rows = fig05_motivation.run_scaling()
        times = [r.cpu_seconds for r in rows]
        assert times == sorted(times)

    def test_s100m_footprint_190gb(self):
        rows = fig05_motivation.run_scaling(categories=(100_000_000,))
        assert rows[0].footprint_bytes == pytest.approx(190e9, rel=0.1)

    def test_roofline_classification_memory_bound(self):
        points = fig05_motivation.run_roofline(batch_sizes=(1,))
        by_kernel = {p.kernel: p for p in points}
        assert by_kernel["full-classification"].bound == "memory"
        assert by_kernel["approximate-screening"].bound == "memory"
        assert by_kernel["candidate-only"].bound == "memory"
        assert by_kernel["front-end-dnn"].bound == "compute"


class TestFig11Reduced:
    @pytest.fixture(scope="class")
    def points(self):
        return fig11_quality.run(
            fractions=(0.02, 0.13),
            workloads=[get_workload("LSTM-W33K")],
            scale=128,
            max_categories=2048,
        )

    def test_as_beats_svd_speedup_at_same_budget(self, points):
        as_points = {p.candidate_fraction: p for p in points if p.method == "AS"}
        svd_points = {p.candidate_fraction: p for p in points if p.method == "SVD"}
        for fraction in as_points:
            assert as_points[fraction].speedup > svd_points[fraction].speedup

    def test_as_quality_improves_with_budget(self, points):
        as_points = sorted(
            (p for p in points if p.method == "AS"),
            key=lambda p: p.candidate_fraction,
        )
        assert as_points[-1].quality_retention >= as_points[0].quality_retention - 0.02

    def test_fgd_poor_on_perplexity(self, points):
        """FGD has no tail estimates, so LM perplexity collapses —
        the paper's argument that approximation methods must cover the
        whole output distribution."""
        fgd = [p for p in points if p.method == "FGD"]
        assert all(p.quality_retention < 0.5 for p in fgd)

    def test_quality_retention_near_one_at_paper_budget(self, points):
        at_13 = [
            p for p in points
            if p.method == "AS" and p.candidate_fraction == 0.13
        ]
        assert at_13[0].quality_retention > 0.9


class TestFig12Reduced:
    def test_error_decreases_with_scale(self):
        points = fig12_sensitivity.run_parameter_scales(
            scales=(0.0625, 0.25), task_scale=256
        )
        assert points[1].relative_error < points[0].relative_error

    def test_int4_close_to_fp32(self):
        points = fig12_sensitivity.run_quantization_levels(
            bits_levels=(2, 4, None), task_scale=256
        )
        by_bits = {p.quantization_bits: p for p in points}
        fp32 = by_bits[None].relative_error
        assert by_bits[4].relative_error < 1.5 * fp32 + 0.02
        assert by_bits[2].relative_error > by_bits[4].relative_error


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig13_performance.run(batch_sizes=(1,))

    def test_enmc_fastest_everywhere(self, rows):
        for row in rows:
            assert row.seconds["ENMC"] == min(row.seconds.values())

    def test_paper_ordering(self, rows):
        for row in rows:
            assert row.speedup("TensorDIMM") > row.speedup("NDA") \
                > row.speedup("Chameleon")

    def test_nmp_beats_cpu_screening(self, rows):
        for row in rows:
            assert row.speedup("TensorDIMM") > row.speedup("CPU+AS")

    def test_summary_ratios_in_paper_ballpark(self):
        rows = fig13_performance.run()
        summary = fig13_performance.summarize(rows)
        # Paper: ENMC ≈ 2.7×/3.5×/5.6× over TD/NDA/Chameleon.
        assert 2.0 < summary["ENMC"] / summary["TensorDIMM"] < 6.0
        assert 3.0 < summary["ENMC"] / summary["NDA"] < 9.0
        assert 5.0 < summary["ENMC"] / summary["Chameleon"] < 14.0

    def test_enmc_average_over_cpu(self):
        rows = fig13_performance.run()
        summary = fig13_performance.summarize(rows)
        # Paper reports 56.5× average; same order of magnitude required.
        assert 30 < summary["ENMC"] < 150


class TestFig14:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig14_energy.run()

    def test_enmc_lowest_energy(self, rows):
        by_workload = {}
        for row in rows:
            by_workload.setdefault(row.workload, {})[row.scheme] = row.total
        for schemes in by_workload.values():
            assert schemes["ENMC"] == min(schemes.values())

    def test_reduction_ratios(self, rows):
        summary = fig14_energy.summarize(rows)
        # Paper: 5.0× and 8.4×; require the same order and Large ≥ TD.
        assert 3.0 < summary["TensorDIMM"] < 20.0
        assert summary["TensorDIMM-Large"] > summary["TensorDIMM"]

    def test_static_energy_reduced(self, rows):
        """Shorter execution slashes DRAM background energy (paper:
        9.3× vs TensorDIMM)."""
        enmc = next(r for r in rows if r.scheme == "ENMC")
        td = next(
            r for r in rows
            if r.scheme == "TensorDIMM" and r.workload == enmc.workload
        )
        assert td.breakdown.dram_static / enmc.breakdown.dram_static > 3.0


class TestFig15:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig15_scalability.run()

    def test_advantage_grows_with_scale(self, rows):
        ratios = [
            row.seconds["TensorDIMM"] / row.seconds["ENMC"] for row in rows
        ]
        assert ratios == sorted(ratios)

    def test_enmc_fastest_at_every_scale(self, rows):
        for row in rows:
            assert row.seconds["ENMC"] == min(row.seconds.values())

    def test_speedup_over_cpu_grows(self, rows):
        speedups = [row.speedup("ENMC") for row in rows]
        assert speedups[-1] > speedups[0]


class TestTables:
    def test_table4_runs(self):
        table = table4_budget.run()
        assert set(table) == {"NDA", "Chameleon", "TensorDIMM", "ENMC"}
        assert table4_budget.budget_spread() < 1.2

    def test_table5_runs(self):
        assert len(table5_area_power.run()) == 6

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "fig4", "fig5", "fig11", "fig12", "fig13", "fig14", "fig15",
            "table4", "table5", "summary",
        }

    def test_all_reports_render(self):
        # Fast experiments render end-to-end (fig11/fig12 covered above
        # in reduced form).
        for name in ("fig4", "fig5", "fig13", "fig14", "fig15",
                     "table4", "table5"):
            text = ALL_EXPERIMENTS[name].report()
            assert len(text) > 100


class TestCommon:
    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_prepare_workload(self):
        prepared = prepare_workload(
            get_workload("GNMT-E32K"), scale=256, max_categories=512,
            train_samples=128,
        )
        assert prepared.classifier.num_categories <= 512
        model = prepared.screened(16)
        assert model.selector.num_candidates == 16
