import numpy as np
import pytest

from repro.metrics import (
    bleu,
    perplexity,
    perplexity_from_proba,
    precision_at_k,
    recall_at_k,
    sentence_bleu,
)


class TestPerplexity:
    def test_uniform_distribution(self):
        # Uniform over V: perplexity = V.
        proba = np.full((10, 8), 1.0 / 8)
        targets = np.zeros(10, dtype=int)
        assert perplexity_from_proba(proba, targets) == pytest.approx(8.0)

    def test_perfect_prediction(self):
        proba = np.zeros((5, 4))
        proba[:, 2] = 1.0
        assert perplexity_from_proba(proba, np.full(5, 2)) == pytest.approx(1.0)

    def test_zero_probability_floored(self):
        proba = np.zeros((1, 4))
        proba[0, 0] = 1.0
        value = perplexity_from_proba(proba, np.array([3]))
        assert np.isfinite(value)
        assert value > 1e10

    def test_from_log_probs(self):
        assert perplexity(np.log([0.5, 0.5])) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            perplexity(np.array([]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            perplexity_from_proba(np.ones((3, 4)), np.zeros(2, dtype=int))

    def test_negative_target_rejected(self):
        # Regression: -1 used to wrap to the last vocab entry via fancy
        # indexing and silently score the wrong token.
        proba = np.full((3, 4), 0.25)
        with pytest.raises(ValueError, match=r"targets\[1\] = -1"):
            perplexity_from_proba(proba, np.array([0, -1, 2]))

    def test_target_at_vocab_rejected(self):
        proba = np.full((3, 4), 0.25)
        with pytest.raises(ValueError, match=r"\[0, 4\)"):
            perplexity_from_proba(proba, np.array([0, 1, 4]))

    def test_boundary_targets_accepted(self):
        proba = np.full((2, 4), 0.25)
        assert perplexity_from_proba(proba, np.array([0, 3])) == pytest.approx(4.0)


class TestBleu:
    def test_identical_is_one(self):
        seq = [1, 2, 3, 4, 5, 6]
        assert bleu([seq], [seq]) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        assert bleu([[1, 2, 3, 4, 5]], [[6, 7, 8, 9, 10]]) == 0.0

    def test_partial_overlap_between(self):
        score = bleu([[1, 2, 3, 4, 9]], [[1, 2, 3, 4, 5]], smoothing=1.0)
        assert 0.0 < score < 1.0

    def test_brevity_penalty(self):
        reference = [1, 2, 3, 4, 5, 6, 7, 8]
        short = bleu([[1, 2, 3, 4]], [reference], smoothing=1.0)
        full = bleu([reference], [reference], smoothing=1.0)
        assert short < full

    def test_corpus_aggregation(self):
        # Corpus BLEU pools n-gram counts, not sentence averages.
        refs = [[1, 2, 3, 4], [5, 6, 7, 8]]
        cands = [[1, 2, 3, 4], [9, 9, 9, 9]]
        score = bleu(cands, refs, smoothing=1.0)
        assert 0.0 < score < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bleu([[1]], [[1], [2]])

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            bleu([], [])

    def test_sentence_bleu_smoothed(self):
        assert sentence_bleu([1, 2], [1, 2]) > 0.0

    def test_one_token_candidates_not_inflated(self):
        """Orders with zero candidate n-grams are undefined, not
        perfect: with smoothing the old code scored each empty order as
        smoothing/smoothing = 1.0, lifting a wrong one-token candidate
        to 0.5**(1/4) ≈ 0.84 at max_order=4.  Effective-order BLEU
        averages over the orders that exist, so the score is the plain
        unigram precision."""
        score = bleu([[1]], [[2]], max_order=4, smoothing=1.0)
        assert score == pytest.approx(0.5)  # (0+1)/(1+1), orders 2-4 skipped

    def test_one_token_exact_match_is_one(self):
        assert bleu([[7]], [[7]], max_order=4, smoothing=1.0) == pytest.approx(1.0)

    def test_clipping(self):
        # Candidate repeats a reference unigram; clipping caps credit.
        score_rep = bleu([[1, 1, 1, 1]], [[1, 2, 3, 4]], smoothing=1.0)
        score_once = bleu([[1, 2, 3, 4]], [[1, 2, 3, 4]], smoothing=1.0)
        assert score_rep < score_once


class TestMultilabel:
    def test_precision_perfect(self):
        scores = np.array([[0.1, 0.9, 0.2]])
        assert precision_at_k(scores, [[1]], k=1) == 1.0

    def test_precision_at_5(self):
        scores = np.zeros((1, 10))
        scores[0, [2, 4, 6]] = 1.0
        # top-5 includes the 3 true labels plus 2 misses
        assert precision_at_k(scores, [[2, 4, 6]], k=5) == pytest.approx(3 / 5)

    def test_recall_at_k(self):
        scores = np.zeros((1, 10))
        scores[0, [2, 4]] = 1.0
        assert recall_at_k(scores, [[2, 4, 6]], k=2) == pytest.approx(2 / 3)

    def test_multilabel_rows(self):
        scores = np.array([[0.9, 0.1], [0.1, 0.9]])
        labels = [[0], [0]]
        assert precision_at_k(scores, labels, k=1) == pytest.approx(0.5)

    def test_k_exceeding_categories_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(np.ones((1, 3)), [[0]], k=4)

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(np.ones((2, 3)), [[0]], k=1)

    def test_no_labels_recall_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.ones((1, 3)), [[]], k=1)

    def test_recall_k_exceeding_categories_rejected(self):
        # Regression: recall_at_k used to clamp k = min(k, categories)
        # and silently report R@categories under the requested name,
        # while precision_at_k raised for the same input.
        with pytest.raises(ValueError, match="exceeds category count"):
            recall_at_k(np.ones((1, 3)), [[0]], k=4)

    def test_recall_k_equal_categories_accepted(self):
        scores = np.array([[0.3, 0.2, 0.1]])
        assert recall_at_k(scores, [[0, 2]], k=3) == 1.0

    def test_recall_skips_empty_label_rows(self):
        # A row with no positives contributes neither hits nor total;
        # only the labelled row's recall is reported.
        scores = np.array([[0.9, 0.1, 0.0], [0.9, 0.1, 0.0]])
        assert recall_at_k(scores, [[0], []], k=1) == 1.0
        assert recall_at_k(scores, [[], [1, 2]], k=1) == 0.0

    def test_numpy_labels_accepted(self):
        scores = np.array([[0.1, 0.9]])
        assert precision_at_k(scores, np.array([[1]]), k=1) == 1.0
