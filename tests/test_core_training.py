import numpy as np
import pytest

from repro.core import FullClassifier, ScreeningConfig, train_screener
from repro.core.training import TrainingReport


@pytest.fixture(scope="module")
def setup(small_task=None):
    from repro.data import make_task

    task = make_task(num_categories=500, hidden_dim=32, rng=5)
    features = task.sample_features(256)
    return task.classifier, features


class TestTrainScreener:
    def test_lstsq_single_epoch(self, setup):
        classifier, features = setup
        screener, report = train_screener(
            classifier, features, solver="lstsq", rng=0, return_report=True
        )
        assert report.epochs == 1
        assert report.solver == "lstsq"

    def test_lstsq_is_optimal(self, setup):
        """No other (W̃, b̃) on the same projection does better on the
        training objective — perturbations only increase loss."""
        classifier, features = setup
        config = ScreeningConfig(projection_dim=8, quantization_bits=None)
        screener = train_screener(
            classifier, features, config=config, solver="lstsq", rng=0
        )
        targets = classifier.logits(features)
        projected = screener.project(features)

        def loss(weight, bias):
            pred = projected @ weight.T + bias
            return np.mean(np.sum((pred - targets) ** 2, axis=1))

        base = loss(screener.weight, screener.bias)
        rng = np.random.default_rng(1)
        for _ in range(5):
            dw = rng.standard_normal(screener.weight.shape) * 0.01
            db = rng.standard_normal(screener.bias.shape) * 0.01
            assert loss(screener.weight + dw, screener.bias + db) >= base

    def test_sgd_decreases_loss(self, setup):
        classifier, features = setup
        _, report = train_screener(
            classifier, features,
            config=ScreeningConfig(projection_dim=8),
            solver="sgd", lr=0.001, epochs=10, rng=0, return_report=True,
        )
        assert report.losses[-1] < report.losses[0]

    def test_adam_decreases_loss(self, setup):
        classifier, features = setup
        _, report = train_screener(
            classifier, features,
            config=ScreeningConfig(projection_dim=8),
            solver="adam", lr=0.01, epochs=15, rng=0, return_report=True,
        )
        assert report.losses[-1] < 0.5 * report.losses[0]

    def test_default_config_is_quarter_scale(self, setup):
        classifier, features = setup
        screener = train_screener(classifier, features, solver="lstsq", rng=0)
        assert screener.projection_dim == classifier.hidden_dim // 4

    def test_classifier_frozen(self, setup):
        classifier, features = setup
        before = classifier.weight.copy()
        train_screener(classifier, features, solver="lstsq", rng=0)
        assert np.array_equal(classifier.weight, before)

    def test_rejects_unknown_solver(self, setup):
        classifier, features = setup
        with pytest.raises(ValueError, match="solver"):
            train_screener(classifier, features, solver="lbfgs")

    def test_rejects_wrong_feature_dim(self, setup):
        classifier, _ = setup
        with pytest.raises(ValueError):
            train_screener(classifier, np.zeros((10, 7)), solver="lstsq")

    def test_returns_screener_only_by_default(self, setup):
        classifier, features = setup
        result = train_screener(classifier, features, solver="lstsq", rng=0)
        from repro.core.screener import ScreeningModule

        assert isinstance(result, ScreeningModule)

    def test_quantized_view_refreshed_after_training(self, setup):
        classifier, features = setup
        screener = train_screener(
            classifier, features,
            config=ScreeningConfig(projection_dim=8, quantization_bits=4),
            solver="lstsq", rng=0,
        )
        # The quantized view reflects the trained weights, not the init.
        assert np.allclose(
            screener._weight_deq,
            np.sign(screener.weight) * np.abs(screener._weight_deq),
            atol=np.abs(screener.weight).max(),
        )
        approx = screener.approximate_logits(features[:8])
        exact = classifier.logits(features[:8])
        correlation = np.corrcoef(approx.ravel(), exact.ravel())[0, 1]
        assert correlation > 0.8


class TestShuffleVectorization:
    """The per-epoch gather + contiguous-slice mini-batching must not
    change a single bit of the training trajectory relative to the
    original per-step fancy-indexed slicing."""

    def reference_train(self, classifier, features, solver, epochs, batch_size, lr, rng):
        """The pre-vectorization SGD loop: fancy-index every step."""
        from repro.core.screener import initialize_screener
        from repro.core.training import TrainingReport, _mse_and_grads
        from repro.linalg.sgd import SGD, Adam
        from repro.utils.rng import ensure_rng

        config = ScreeningConfig(projection_dim=8)
        generator = ensure_rng(rng)
        screener = initialize_screener(
            classifier.num_categories, classifier.hidden_dim, config,
            rng=generator,
        )
        targets = classifier.logits(features)
        projected = screener.project(features)
        if solver == "sgd":
            optimizer = SGD([screener.weight, screener.bias], lr=lr, momentum=0.9)
        else:
            optimizer = Adam([screener.weight, screener.bias], lr=lr)
        report = TrainingReport(solver=solver)
        num_samples = features.shape[0]
        for _ in range(epochs):
            order = generator.permutation(num_samples)
            epoch_loss, num_batches = 0.0, 0
            for start in range(0, num_samples, batch_size):
                take = order[start : start + batch_size]
                loss, grad_w, grad_b = _mse_and_grads(
                    screener, projected[take], targets[take]
                )
                optimizer.step([grad_w, grad_b])
                epoch_loss += loss
                num_batches += 1
            report.losses.append(epoch_loss / max(num_batches, 1))
            if report.converged:
                break
        screener._refresh_quantized_weight()
        return screener, report

    @pytest.mark.parametrize("solver", ["sgd", "adam"])
    @pytest.mark.parametrize("batch_size", [64, 100])  # 100 leaves a ragged tail
    def test_trajectory_bit_identical(self, setup, solver, batch_size):
        classifier, features = setup
        screener, report = train_screener(
            classifier, features,
            config=ScreeningConfig(projection_dim=8),
            solver=solver, lr=0.001, epochs=5, batch_size=batch_size,
            rng=3, return_report=True,
        )
        expected_screener, expected_report = self.reference_train(
            classifier, features, solver, epochs=5, batch_size=batch_size,
            lr=0.001, rng=3,
        )
        assert report.losses == expected_report.losses
        assert np.array_equal(screener.weight, expected_screener.weight)
        assert np.array_equal(screener.bias, expected_screener.bias)


class TestTrainingReport:
    def test_final_loss_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingReport().final_loss

    def test_converged_logic(self):
        report = TrainingReport(losses=[10.0, 9.99])
        assert report.converged
        report2 = TrainingReport(losses=[10.0, 5.0])
        assert not report2.converged
