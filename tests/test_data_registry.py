import numpy as np
import pytest

from repro.data.registry import (
    SCALABILITY_ABBRS,
    TABLE2_ABBRS,
    WORKLOADS,
    get_workload,
    iter_workloads,
    scaled_task,
)


class TestTable2:
    def test_paper_category_counts(self):
        assert get_workload("LSTM-W33K").num_categories == 33_278
        assert get_workload("Transformer-W268K").num_categories == 267_744
        assert get_workload("GNMT-E32K").num_categories == 32_317
        assert get_workload("XMLCNN-670K").num_categories == 670_091

    def test_paper_hidden_dims(self):
        assert get_workload("LSTM-W33K").hidden_dim == 1500
        assert get_workload("Transformer-W268K").hidden_dim == 512
        assert get_workload("GNMT-E32K").hidden_dim == 1024
        assert get_workload("XMLCNN-670K").hidden_dim == 512

    def test_xmlcnn_is_sigmoid(self):
        assert get_workload("XMLCNN-670K").normalization == "sigmoid"

    def test_synthetic_scaling_points(self):
        assert get_workload("S1M").num_categories == 1_000_000
        assert get_workload("S10M").num_categories == 10_000_000
        assert get_workload("S100M").num_categories == 100_000_000

    def test_s100m_footprint_matches_paper_claim(self):
        # "around 190GB memory" for 100M categories at hidden 512.
        footprint = get_workload("S100M").classifier_bytes
        assert 180e9 < footprint < 220e9

    def test_iter_default_excludes_synthetic(self):
        abbrs = [w.abbr for w in iter_workloads()]
        assert abbrs == list(TABLE2_ABBRS)

    def test_iter_with_synthetic(self):
        abbrs = [w.abbr for w in iter_workloads(include_synthetic=True)]
        assert set(abbrs) == set(WORKLOADS)

    def test_scalability_sweep_ordered(self):
        counts = [get_workload(a).num_categories for a in SCALABILITY_ABBRS]
        assert counts == sorted(counts)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("BERT-1M")

    def test_default_candidates(self):
        workload = get_workload("XMLCNN-670K")
        expected = round(670_091 * workload.candidate_fraction)
        assert workload.default_candidates == expected

    def test_lm_budgets_exceed_topk_budgets(self):
        """Perplexity needs a bigger candidate fraction than P@k."""
        assert (
            get_workload("LSTM-W33K").candidate_fraction
            > get_workload("XMLCNN-670K").candidate_fraction
        )


class TestScaledTask:
    def test_scale_divides_categories(self):
        workload = get_workload("LSTM-W33K")
        task = scaled_task(workload, scale=32)
        assert task.num_categories == 33_278 // 32

    def test_cap_applies(self):
        workload = get_workload("XMLCNN-670K")
        task = scaled_task(workload, scale=2, max_categories=1000)
        assert task.num_categories == 1000

    def test_hidden_dim_preserved(self):
        workload = get_workload("LSTM-W33K")
        task = scaled_task(workload, scale=64)
        assert task.hidden_dim == 1500

    def test_normalization_carried(self):
        task = scaled_task(get_workload("XMLCNN-670K"), scale=128)
        assert task.classifier.normalization == "sigmoid"

    def test_deterministic_across_calls(self):
        workload = get_workload("GNMT-E32K")
        a = scaled_task(workload, scale=64)
        b = scaled_task(workload, scale=64)
        assert np.array_equal(a.classifier.weight, b.classifier.weight)

    def test_different_scales_different_seeds(self):
        workload = get_workload("GNMT-E32K")
        a = scaled_task(workload, scale=64, max_categories=500)
        b = scaled_task(workload, scale=32, max_categories=500)
        assert not np.array_equal(a.classifier.weight, b.classifier.weight)

    def test_minimum_floor(self):
        task = scaled_task(get_workload("GNMT-E32K"), scale=10_000)
        assert task.num_categories >= 64
