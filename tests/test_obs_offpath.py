"""Observability must be free when off and honest when on.

The off-path contract: with the default :data:`NULL_RECORDER` — and
equally with a live recorder attached — instrumentation changes **no
output bit** of the screening pipeline or the parallel engine, and the
streaming workspace's steady-state zero-allocation contract still
holds.  The on-path contract: the counters a recording engine reports
reconcile exactly with the requests it served, per shard and in total,
and the trace contains the nested per-tile streaming spans.
"""

import numpy as np
import pytest

from repro.core import ApproximateScreeningClassifier, ScreeningConfig, train_screener
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.obs import NULL_RECORDER, Recorder, validate_chrome_events

pytestmark = pytest.mark.timeout(600)

NUM_CATEGORIES = 600
HIDDEN_DIM = 32
PROJECTION_DIM = 8
NUM_CANDIDATES = 12
BLOCK = 100


@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(16, rng=6)


@pytest.fixture(scope="module")
def screener(task):
    return train_screener(
        task.classifier,
        task.sample_features(256, rng=7),
        config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        rng=5,
    )


def build_pipeline(task, screener, recorder=None):
    return ApproximateScreeningClassifier(
        task.classifier,
        screener,
        num_candidates=NUM_CANDIDATES,
        recorder=recorder,
    )


def assert_streamed_identical(actual, expected):
    assert actual.candidates.counts.tolist() == expected.candidates.counts.tolist()
    for mine, theirs in zip(actual.candidates, expected.candidates):
        assert np.array_equal(mine, theirs)
    assert np.array_equal(actual.exact_values, expected.exact_values)
    assert np.array_equal(actual.approximate_values, expected.approximate_values)


class TestBitIdentityOffAndOn:
    def test_default_recorder_is_null(self, task, screener):
        model = build_pipeline(task, screener)
        assert model.recorder is NULL_RECORDER
        assert model.screener.recorder is NULL_RECORDER

    def test_forward_bits_unchanged_by_recording(self, task, screener, features):
        silent = build_pipeline(task, screener).forward(features)
        recorded_model = build_pipeline(
            task, screener, recorder=Recorder(trace=True)
        )
        recorded = recorded_model.forward(features)
        assert recorded.logits.dtype == silent.logits.dtype
        assert np.array_equal(recorded.logits, silent.logits)
        assert np.array_equal(
            recorded.approximate_logits, silent.approximate_logits
        )
        for mine, theirs in zip(recorded.candidates, silent.candidates):
            assert np.array_equal(mine, theirs)
        # Restore the shared screener's recorder for sibling tests.
        recorded_model.set_recorder(NULL_RECORDER)

    def test_streaming_bits_unchanged_by_recording(self, task, screener, features):
        silent = build_pipeline(task, screener).forward_streaming(
            features, block_categories=BLOCK
        )
        recorded_model = build_pipeline(
            task, screener, recorder=Recorder(trace=True)
        )
        recorded = recorded_model.forward_streaming(
            features, block_categories=BLOCK
        )
        assert_streamed_identical(recorded, silent)
        recorded_model.set_recorder(NULL_RECORDER)

    @pytest.mark.parametrize("recording", [False, True])
    def test_streaming_steady_state_allocations_flat(
        self, task, screener, features, recording
    ):
        """The zero-allocation steady state survives instrumentation:
        after warm-up, repeated streaming calls take every buffer from
        the workspace arena — recorder on or off."""
        recorder = Recorder(trace=True) if recording else None
        model = build_pipeline(task, screener, recorder=recorder)
        model.forward_streaming(features, block_categories=BLOCK)  # warm-up
        allocations = model.workspace.allocations
        requests_before = model.workspace.requests
        for _ in range(5):
            model.forward_streaming(features, block_categories=BLOCK)
        assert model.workspace.allocations == allocations
        assert model.workspace.requests > requests_before
        if recording:
            snap = model.recorder.snapshot()
            assert snap["gauges"]["pipeline.workspace_allocations"] == allocations
            model.set_recorder(NULL_RECORDER)

    def test_streaming_trace_has_nested_tile_spans(self, task, screener, features):
        recorder = Recorder(trace=True)
        model = build_pipeline(task, screener, recorder=recorder)
        model.forward_streaming(features, block_categories=BLOCK)
        names = recorder.tracer.span_names()
        # One screen/select span pair per *canonical column tile* (the
        # GEMM granularity that makes streaming bit-identical to dense),
        # regardless of the selection block size.
        tiles = len(model.screener.tile_bounds())
        assert tiles >= 1
        assert names.count("streaming.screen_tile") == tiles
        assert names.count("streaming.select_tile") == tiles
        assert names.count("streaming.exact") == 1
        assert names.count("forward_streaming") == 1
        events = validate_chrome_events(recorder.tracer.chrome_events())
        outer = next(e for e in events if e["name"] == "forward_streaming")
        for event in events:
            if event["name"].startswith("streaming."):
                assert event["ts"] >= outer["ts"]
                assert event["ts"] + event["dur"] <= (
                    outer["ts"] + outer["dur"] + 1e-6
                )
        assert recorder.tracer.open_spans() == 0
        model.set_recorder(NULL_RECORDER)


class TestEngineReconciliation:
    @pytest.fixture(scope="class")
    def model(self, task):
        model = ShardedClassifier(
            task.classifier,
            num_shards=2,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        model.train(
            task.sample_features(256, rng=7), candidates_per_shard=8, rng=5
        )
        return model

    def test_engine_outputs_unchanged_by_recording(self, model, features):
        sequential = model.forward(features)
        with model.parallel(trace=True) as engine:
            parallel = engine.forward(features)
        assert np.array_equal(parallel.logits, sequential.logits)

    def test_counters_reconcile_with_requests(self, model, features):
        requests = 3
        with model.parallel(trace=True) as engine:
            for _ in range(requests):
                engine.forward(features)
            stats = engine.stats()
        assert stats["recording"] is True
        assert stats["requests"] == requests
        assert stats["retries"] == 0
        assert stats["respawns"] == 0
        assert stats["degraded_requests"] == 0
        assert stats["deadline_overruns"] == 0
        assert stats["stale_replies"] == 0
        counters = stats["metrics"]["counters"]
        assert counters["parallel.requests"] == requests
        # Every serving request fans out to every shard exactly once on
        # a clean run: the per-shard answered counts sum to
        # requests x num_shards, and each shard's latency histogram saw
        # exactly one observation per request.
        per_shard = [shard["requests"] for shard in stats["shards"]]
        assert sum(per_shard) == requests * engine.num_shards
        for shard in stats["shards"]:
            assert shard["requests"] == requests
            summary = shard["latency_s"]
            assert summary["count"] == requests
            assert 0.0 <= summary["p50"] <= summary["p95"] <= summary["p99"]
            assert not shard["dead"]
            assert shard["respawns"] == 0
        # The posted-request protocol counter agrees with the fan-out.
        assert counters["workers.posted"] == requests * engine.num_shards

    def test_stats_available_without_recorder(self, model, features):
        with model.parallel() as engine:
            engine.forward(features)
            stats = engine.stats()
        assert stats["recording"] is False
        assert "metrics" not in stats
        assert stats["requests"] == 1
        assert stats["shards"][0]["respawns"] == 0
        assert "latency_s" not in stats["shards"][0]

    def test_engine_trace_exports_valid_chrome_json(
        self, model, features, tmp_path
    ):
        with model.parallel(trace=True) as engine:
            engine.forward(features)
            engine.top_k(features, k=5)
            path = tmp_path / "engine_trace.json"
            count = engine.write_trace(path)
        assert count > 0
        import json

        events = validate_chrome_events(json.loads(path.read_text()))
        names = [event["name"] for event in events]
        assert "engine.forward" in names
        assert "engine.top_k" in names
        assert "engine.scatter_gather" in names
        assert "engine.merge" in names

    def test_write_trace_without_tracer_raises(self, model, features):
        with model.parallel() as engine:
            with pytest.raises(RuntimeError, match="no tracer"):
                engine.write_trace("/dev/null")
