import numpy as np
import pytest

from repro.core.screener import (
    ScreeningConfig,
    ScreeningModule,
    initialize_screener,
)
from repro.linalg.projection import SparseRandomProjection


class TestScreeningConfig:
    def test_from_scale_quarter(self):
        config = ScreeningConfig.from_scale(512, 0.25)
        assert config.projection_dim == 128

    def test_from_scale_minimum_one(self):
        config = ScreeningConfig.from_scale(8, 0.01)
        assert config.projection_dim == 1

    def test_from_scale_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ScreeningConfig.from_scale(512, 0.0)
        with pytest.raises(ValueError):
            ScreeningConfig.from_scale(512, 1.5)

    def test_rejects_non_positive_dim(self):
        with pytest.raises(ValueError):
            ScreeningConfig(projection_dim=0)


class TestScreeningModule:
    def _module(self, l=50, d=32, k=8, bits=4):
        projection = SparseRandomProjection(d, k, rng=0)
        rng = np.random.default_rng(1)
        return ScreeningModule(
            projection,
            rng.standard_normal((l, k)),
            rng.standard_normal(l),
            quantization_bits=bits,
        )

    def test_shapes(self):
        module = self._module()
        assert module.num_categories == 50
        assert module.hidden_dim == 32
        assert module.projection_dim == 8

    def test_rejects_weight_projection_mismatch(self):
        projection = SparseRandomProjection(32, 8, rng=0)
        with pytest.raises(ValueError):
            ScreeningModule(projection, np.zeros((10, 9)), np.zeros(10))

    def test_rejects_bias_mismatch(self):
        projection = SparseRandomProjection(32, 8, rng=0)
        with pytest.raises(ValueError):
            ScreeningModule(projection, np.zeros((10, 8)), np.zeros(9))

    def test_forward_shape(self):
        module = self._module()
        out = module.approximate_logits(np.zeros((4, 32)))
        assert out.shape == (4, 50)

    def test_fp32_mode_matches_manual(self):
        module = self._module(bits=None)
        feature = np.random.default_rng(2).standard_normal(32)
        expected = module.weight @ module.projection(feature[None, :])[0] + module.bias
        assert np.allclose(module.approximate_logits(feature)[0], expected)

    def test_quantized_differs_from_fp32_but_close(self):
        fp = self._module(bits=None)
        q = ScreeningModule(fp.projection, fp.weight, fp.bias, quantization_bits=4)
        feature = np.random.default_rng(3).standard_normal(32)
        a = fp.approximate_logits(feature)
        b = q.approximate_logits(feature)
        assert not np.allclose(a, b)
        # INT4 stays within ~20% relative error on well-scaled data.
        assert np.linalg.norm(a - b) / np.linalg.norm(a) < 0.5

    def test_nbytes_counts_quantized_weight(self):
        module = self._module(l=100, d=32, k=8, bits=4)
        expected = 100 * 8 * 0.5 + 100 * 4 + module.projection.nbytes
        assert module.nbytes == expected

    def test_parameter_scale(self):
        module = self._module(l=100, d=32, k=8)
        assert module.parameter_scale() == pytest.approx(8 / 32)

    def test_batch_rows_quantized_independently(self):
        # A huge row must not destroy a small row's resolution.
        module = self._module(bits=4)
        rng = np.random.default_rng(4)
        small = rng.standard_normal(32) * 0.01
        large = rng.standard_normal(32) * 100.0
        batch_out = module.approximate_logits(np.stack([small, large]))
        single_out = module.approximate_logits(small)
        assert np.allclose(batch_out[0], single_out[0])


class TestComputeDtype:
    def _module(self, compute_dtype=np.float64):
        projection = SparseRandomProjection(32, 8, rng=0)
        rng = np.random.default_rng(1)
        return ScreeningModule(
            projection,
            rng.standard_normal((50, 8)),
            rng.standard_normal(50),
            quantization_bits=4,
            compute_dtype=compute_dtype,
        )

    def test_default_is_float64(self):
        module = self._module()
        features = np.random.default_rng(2).standard_normal((3, 32))
        assert module.compute_dtype == np.float64
        assert module.approximate_logits(features).dtype == np.float64

    def test_float32_output_dtype(self):
        module = self._module(compute_dtype=np.float32)
        features = np.random.default_rng(2).standard_normal((3, 32))
        assert module.approximate_logits(features).dtype == np.float32

    def test_float32_close_to_float64(self):
        features = np.random.default_rng(2).standard_normal((4, 32))
        wide = self._module().approximate_logits(features)
        narrow = self._module(compute_dtype=np.float32).approximate_logits(features)
        assert np.allclose(wide, narrow, rtol=1e-5, atol=1e-5)

    def test_set_compute_dtype_rebuilds_state(self):
        module = self._module()
        features = np.random.default_rng(2).standard_normal((2, 32))
        module.set_compute_dtype(np.float32)
        assert module.approximate_logits(features).dtype == np.float32
        module.set_compute_dtype(np.float64)
        assert module.approximate_logits(features).dtype == np.float64

    def test_rejects_unsupported_dtype(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            self._module(compute_dtype=np.int32)
        with pytest.raises(ValueError, match="float32 or float64"):
            ScreeningConfig(projection_dim=8, compute_dtype="int8")

    def test_dequantized_weight_stays_float64(self):
        # The compiler's tile lowering consumes _weight_deq directly and
        # must keep bit-level agreement with the DIMM simulator.
        module = self._module(compute_dtype=np.float32)
        assert module._weight_deq.dtype == np.float64

    def test_config_carries_compute_dtype(self):
        config = ScreeningConfig(projection_dim=8, compute_dtype="float32")
        module = initialize_screener(50, 32, config, rng=0)
        assert module.compute_dtype == np.float32


class TestInitializeScreener:
    def test_shapes_from_config(self):
        module = initialize_screener(
            100, 64, ScreeningConfig(projection_dim=16), rng=0
        )
        assert module.weight.shape == (100, 16)
        assert module.bias.shape == (100,)
        assert np.all(module.bias == 0)

    def test_reproducible(self):
        a = initialize_screener(50, 32, ScreeningConfig(projection_dim=8), rng=3)
        b = initialize_screener(50, 32, ScreeningConfig(projection_dim=8), rng=3)
        assert np.array_equal(a.weight, b.weight)
        assert np.array_equal(a.projection.ternary, b.projection.ternary)
