"""Differential suite for Zipfian-aware (skew-balanced) sharding.

Three layers of guarantees:

* **Plan construction** — :class:`ShardPlan` invariants (contiguous
  step-1 cover of ``[0, l)``), the minimax frequency balancer against a
  brute-force reference, degenerate skew (one category carrying 90% of
  the mass, single-category shards), and the uniform fallbacks.
* **Merge machinery, cross-plan** — slicing one reference global output
  into *any* contiguous plan and merging back is bit-exact, so global
  column indexing cannot depend on where the shard boundaries fall.
* **Backends, per plan** — for every plan shape × candidate selector ×
  compute dtype, the process-parallel engine is bit-identical to the
  sequential backend (the cross-backend contract extended from uniform
  plans in ``tests/test_distributed_parallel.py`` to skewed ones).

Cross-plan bit-identity of *trained model outputs* is deliberately not
claimed: each shard trains its own screener from a per-shard spawned
rng and runs GEMMs whose shapes depend on the plan, so different plans
produce different (all individually correct) approximate scores.  What
is plan-independent — and pinned here — is the merge/reduce machinery
and the exactness of candidate entries against the full classifier.
"""

import numpy as np
import pytest

from repro.core import ScreeningConfig
from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.pipeline import ScreenedOutput, StreamedOutput
from repro.data import make_task
from repro.distributed import (
    ShardPlan,
    ShardedClassifier,
    observed_category_frequencies,
    reduce_top_k,
    shard_ranges,
    shard_top_k,
)
from repro.distributed.sharding import (
    _minimax_contiguous_partition,
    merge_shard_outputs,
    merge_streamed_outputs,
)

pytestmark = pytest.mark.timeout(600)

NUM_CATEGORIES = 300
HIDDEN_DIM = 24
PROJECTION_DIM = 8
CANDIDATES_PER_SHARD = 8
TRAIN_RNG = 5

SELECTORS = ("top_m", "threshold")
DTYPES = ("float64", "float32")
PLAN_KINDS = ("uniform", "balanced", "hot")


def zipf_frequencies(num_categories, s=1.1):
    ranks = np.arange(1, num_categories + 1, dtype=np.float64)
    return ranks**-s


def make_plan(kind, num_categories=NUM_CATEGORIES):
    if kind == "uniform":
        return ShardPlan.uniform(num_categories, 3)
    if kind == "balanced":
        return ShardPlan.balanced(zipf_frequencies(num_categories), 3)
    if kind == "hot":
        # Hand-built extreme skew: two tiny hot shards bracketing one
        # huge cold shard.
        return ShardPlan.from_ranges(
            [
                range(0, 4),
                range(4, num_categories - 4),
                range(num_categories - 4, num_categories),
            ]
        )
    raise AssertionError(kind)


# ----------------------------------------------------------------------
# plan construction and validation
# ----------------------------------------------------------------------
class TestShardPlanInvariants:
    def test_uniform_matches_shard_ranges(self):
        plan = ShardPlan.uniform(100, 3)
        assert list(plan.ranges) == shard_ranges(100, 3)
        assert plan.source == "uniform"
        assert plan.num_shards == 3
        assert plan.num_categories == 100
        assert sum(plan.loads) == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "bad_ranges, message",
        [
            ([], "at least one"),
            ([range(1, 5)], "starts at 1"),
            ([range(0, 3), range(4, 6)], "starts at 4"),
            ([range(0, 3), range(2, 6)], "starts at 2"),
            ([range(0, 3), range(3, 3)], "empty"),
            ([range(0, 6, 2)], "step"),
            ([range(3, 0, -1)], "step"),
        ],
    )
    def test_invalid_ranges_rejected(self, bad_ranges, message):
        with pytest.raises(ValueError, match=message):
            ShardPlan(bad_ranges)

    def test_loads_validated_and_normalized(self):
        ranges = [range(0, 2), range(2, 6)]
        plan = ShardPlan(ranges, loads=[3.0, 1.0])
        assert plan.loads == (0.75, 0.25)
        assert plan.imbalance == pytest.approx(1.5)
        with pytest.raises(ValueError, match="2 shards"):
            ShardPlan(ranges, loads=[1.0])
        with pytest.raises(ValueError, match="finite"):
            ShardPlan(ranges, loads=[1.0, -0.5])
        with pytest.raises(ValueError, match="finite"):
            ShardPlan(ranges, loads=[1.0, float("nan")])
        # All-zero loads carry no signal: fall back to uniform loads.
        assert ShardPlan(ranges, loads=[0.0, 0.0]).loads == (0.5, 0.5)

    def test_default_loads_are_size_fractions(self):
        plan = ShardPlan([range(0, 1), range(1, 4)])
        assert plan.loads == (0.25, 0.75)

    def test_immutable_and_hashable(self):
        plan = ShardPlan.uniform(10, 2)
        with pytest.raises(AttributeError):
            plan.ranges = ()
        assert plan == ShardPlan.uniform(10, 2)
        assert hash(plan) == hash(ShardPlan.uniform(10, 2))
        assert plan != ShardPlan.uniform(10, 5)
        assert len({plan, ShardPlan.uniform(10, 2)}) == 1


class TestBalancedPlanning:
    def test_minimax_matches_brute_force(self):
        """The binary-search packer finds the optimal cap on every tiny
        instance a brute force can enumerate."""
        rng = np.random.default_rng(0)

        def brute_force(costs, k):
            n = costs.size
            best = np.inf
            # Choose k-1 cut points out of n-1 gaps.
            from itertools import combinations

            for cuts in combinations(range(1, n), k - 1):
                bounds = (0,) + cuts + (n,)
                worst = max(
                    float(costs[a:b].sum()) for a, b in zip(bounds, bounds[1:])
                )
                best = min(best, worst)
            return best

        for _ in range(150):
            n = int(rng.integers(1, 9))
            k = int(rng.integers(1, n + 1))
            costs = rng.random(n) * rng.choice([1.0, 100.0])
            ranges = _minimax_contiguous_partition(costs, k)
            assert len(ranges) == k
            assert all(len(r) > 0 for r in ranges)
            assert ranges[0].start == 0 and ranges[-1].stop == n
            achieved = max(float(costs[r.start : r.stop].sum()) for r in ranges)
            assert achieved <= brute_force(costs, k) * (1 + 1e-9)

    def test_balanced_beats_uniform_on_zipf(self):
        frequencies = zipf_frequencies(NUM_CATEGORIES)
        balanced = ShardPlan.balanced(frequencies, 4)
        uniform = ShardPlan.uniform(NUM_CATEGORIES, 4)
        cost = frequencies / frequencies.mean()

        def worst(plan):
            return max(float(cost[r.start : r.stop].sum()) for r in plan.ranges)

        assert worst(balanced) < worst(uniform)
        assert balanced.source == "balanced"
        # The head shard is much smaller than the tail shard.
        assert len(balanced.ranges[0]) < len(balanced.ranges[-1])

    def test_hot_category_isolated(self):
        """One category carrying 90% of the mass gets (nearly) a shard
        of its own, and every other shard still exists."""
        frequencies = np.ones(100)
        frequencies[37] = 9.0 * frequencies.sum()  # ~90% of total mass
        plan = ShardPlan.balanced(frequencies, 4)
        assert plan.num_shards == 4
        assert all(len(r) > 0 for r in plan.ranges)
        owner = next(r for r in plan.ranges if 37 in r)
        assert len(owner) <= 2
        assert plan.loads[plan.ranges.index(owner)] > 0.85

    def test_single_category_shards(self):
        """num_shards == num_categories degenerates to one category per
        shard, whatever the frequencies say."""
        plan = ShardPlan.balanced(np.array([5.0, 1.0, 3.0]), 3)
        assert [len(r) for r in plan.ranges] == [1, 1, 1]

    def test_screening_weight_pushes_toward_uniform(self):
        frequencies = zipf_frequencies(120)
        skewed = ShardPlan.balanced(frequencies, 3, screening_weight=0.0)
        flat = ShardPlan.balanced(frequencies, 3, screening_weight=1e6)
        sizes = [len(r) for r in flat.ranges]
        assert max(sizes) - min(sizes) <= 1  # ~uniform split
        assert len(skewed.ranges[0]) < len(flat.ranges[0])

    @pytest.mark.parametrize("frequencies", [None, [], np.zeros(50)])
    def test_no_signal_falls_back_to_uniform(self, frequencies):
        plan = ShardPlan.balanced(frequencies, 5, num_categories=50)
        assert list(plan.ranges) == shard_ranges(50, 5)

    def test_empty_frequencies_without_num_categories_rejected(self):
        with pytest.raises(ValueError, match="num_categories"):
            ShardPlan.balanced(None, 5)

    @pytest.mark.parametrize(
        "frequencies, message",
        [
            (np.ones((5, 2)), "1-D"),
            (np.full(10, np.nan), "finite"),
            (np.array([1.0, -2.0] * 5), "finite"),
            (np.ones(7), "7 frequencies"),
        ],
    )
    def test_bad_frequencies_rejected(self, frequencies, message):
        with pytest.raises(ValueError, match=message):
            ShardPlan.balanced(frequencies, 2, num_categories=10)

    def test_negative_screening_weight_rejected(self):
        with pytest.raises(ValueError, match="screening_weight"):
            ShardPlan.balanced(np.ones(10), 2, screening_weight=-1.0)

    def test_suggest_replicas_targets_hot_shards(self):
        plan = ShardPlan(
            [range(0, 1), range(1, 2), range(2, 3), range(3, 4)],
            loads=[0.7, 0.1, 0.1, 0.1],
        )
        assert plan.suggest_replicas(0) == {0: 1, 1: 1, 2: 1, 3: 1}
        counts = plan.suggest_replicas(3)
        assert counts == {0: 4, 1: 1, 2: 1, 3: 1}
        assert sum(counts.values()) == plan.num_shards + 3
        with pytest.raises(ValueError, match=">= 0"):
            plan.suggest_replicas(-1)

    def test_suggest_replicas_even_loads_round_robin(self):
        plan = ShardPlan.uniform(30, 3)
        assert plan.suggest_replicas(3) == {0: 2, 1: 2, 2: 2}


class TestShardCountExceedsCategories:
    """``num_shards > num_categories`` raises everywhere — an empty
    shard would train no screener and answer no request, so the
    contract is pinned end-to-end through every plan source."""

    def test_shard_ranges_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            shard_ranges(3, 5)

    def test_uniform_plan_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            ShardPlan.uniform(3, 5)

    def test_balanced_plan_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            ShardPlan.balanced(np.ones(3), 5)

    def test_balanced_fallback_raises(self):
        with pytest.raises(ValueError, match="exceed"):
            ShardPlan.balanced(None, 5, num_categories=3)

    def test_sharded_classifier_raises(self, task):
        with pytest.raises(ValueError, match="exceed"):
            ShardedClassifier(task.classifier, num_shards=NUM_CATEGORIES + 1)
        with pytest.raises(ValueError, match="exceed"):
            ShardedClassifier(
                task.classifier,
                num_shards=NUM_CATEGORIES + 1,
                frequencies=zipf_frequencies(NUM_CATEGORIES),
            )


# ----------------------------------------------------------------------
# merge machinery: cross-plan bit-exactness
# ----------------------------------------------------------------------
def random_reference_output(rng, batch, num_categories):
    """A synthetic global ScreenedOutput with random candidates."""
    logits = rng.standard_normal((batch, num_categories))
    indices = [
        np.sort(
            rng.choice(num_categories, size=int(rng.integers(0, 9)), replace=False)
        ).astype(np.intp)
        for _ in range(batch)
    ]
    candidates = CandidateSet(indices=indices)
    rows, cols = candidates.flat()
    saved = rng.standard_normal(rows.size)
    return ScreenedOutput(
        logits=logits, candidates=candidates, restore=(rows, cols, saved)
    )


def slice_screened(reference, shard_range):
    """One shard's view of the reference output (what that node would
    have produced had the plan given it this category stripe)."""
    logits = reference.logits[:, shard_range.start : shard_range.stop].copy()
    rows, cols, saved = reference.candidate_restore()
    mask = (cols >= shard_range.start) & (cols < shard_range.stop)
    local_rows = rows[mask]
    local_cols = cols[mask] - shard_range.start
    counts = np.bincount(local_rows, minlength=reference.batch_size).astype(
        np.intp
    )
    return ScreenedOutput(
        logits=logits,
        candidates=CandidateSet.from_flat(counts, local_cols),
        restore=(local_rows, local_cols, saved[mask].copy()),
    )


def slice_streamed(reference, shard_range):
    rows, cols = reference.candidates.flat()
    mask = (cols >= shard_range.start) & (cols < shard_range.stop)
    counts = np.bincount(rows[mask], minlength=reference.batch_size).astype(
        np.intp
    )
    return StreamedOutput(
        candidates=CandidateSet.from_flat(counts, cols[mask] - shard_range.start),
        exact_values=reference.exact_values[mask].copy(),
        approximate_values=reference.approximate_values[mask].copy(),
        num_categories=len(shard_range),
    )


@pytest.mark.parametrize("kind", PLAN_KINDS)
class TestCrossPlanMergeExactness:
    """Slice one global output along *any* plan, merge back, and every
    plane/candidate list/value record is bit-identical to the original
    — the merge cannot depend on where the boundaries fall."""

    def test_screened_roundtrip(self, kind):
        rng = np.random.default_rng(11)
        reference = random_reference_output(rng, batch=7, num_categories=NUM_CATEGORIES)
        plan = make_plan(kind)
        merged = merge_shard_outputs(
            [slice_screened(reference, r) for r in plan.ranges], plan.ranges
        )
        assert np.array_equal(merged.logits, reference.logits)
        assert np.array_equal(
            merged.approximate_logits, reference.approximate_logits
        )
        for mine, theirs in zip(merged.candidates, reference.candidates):
            assert np.array_equal(mine, theirs)

    def test_streamed_roundtrip(self, kind):
        rng = np.random.default_rng(13)
        rows_candidates = CandidateSet(
            indices=[
                np.sort(
                    rng.choice(NUM_CATEGORIES, size=6, replace=False)
                ).astype(np.intp)
                for _ in range(5)
            ]
        )
        flat_rows, _ = rows_candidates.flat()
        reference = StreamedOutput(
            candidates=rows_candidates,
            exact_values=rng.standard_normal(flat_rows.size),
            approximate_values=rng.standard_normal(flat_rows.size),
            num_categories=NUM_CATEGORIES,
        )
        plan = make_plan(kind)
        merged = merge_streamed_outputs(
            [slice_streamed(reference, r) for r in plan.ranges], plan.ranges
        )
        assert merged.num_categories == NUM_CATEGORIES
        assert np.array_equal(merged.exact_values, reference.exact_values)
        assert np.array_equal(
            merged.approximate_values, reference.approximate_values
        )
        for mine, theirs in zip(merged.candidates, reference.candidates):
            assert np.array_equal(mine, theirs)

    def test_top_k_reduce_roundtrip(self, kind):
        """Per-shard top-k + reduce over any plan equals the dense
        global top-k of the same logits."""
        rng = np.random.default_rng(17)
        reference = random_reference_output(rng, batch=6, num_categories=NUM_CATEGORIES)
        plan = make_plan(kind)
        parts = [
            shard_top_k(slice_screened(reference, r), r, k=9) for r in plan.ranges
        ]
        indices, scores = reduce_top_k(
            [p[0] for p in parts], [p[1] for p in parts], k=9
        )
        expected = np.argsort(-reference.logits, axis=1)[:, :9]
        assert np.array_equal(indices, expected)
        rows = np.arange(reference.batch_size)[:, None]
        assert np.array_equal(scores, reference.logits[rows, expected])


# ----------------------------------------------------------------------
# backends over skewed plans
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def task():
    return make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)


@pytest.fixture(scope="module")
def features(task):
    return task.sample_features(8, rng=6)


@pytest.fixture(scope="module")
def calibration(task):
    return task.sample_features(96, rng=9)


@pytest.fixture(scope="module")
def train_features(task):
    return task.sample_features(160, rng=7)


@pytest.fixture(scope="module")
def model_zoo(task, calibration, train_features):
    """Trained sequential models, one per (plan kind, dtype, selector)."""
    zoo = {}
    for kind in PLAN_KINDS:
        for dtype in DTYPES:
            for selector_mode in SELECTORS:
                model = ShardedClassifier(
                    task.classifier,
                    plan=make_plan(kind),
                    config=ScreeningConfig(
                        projection_dim=PROJECTION_DIM, compute_dtype=dtype
                    ),
                )
                model.train(
                    train_features,
                    candidates_per_shard=CANDIDATES_PER_SHARD,
                    rng=TRAIN_RNG,
                )
                if selector_mode == "threshold":
                    for shard in model.shards:
                        selector = CandidateSelector(
                            mode="threshold",
                            num_candidates=CANDIDATES_PER_SHARD,
                        )
                        selector.calibrate(
                            shard.screener.approximate_logits(calibration)
                        )
                        shard.selector = selector
                zoo[(kind, dtype, selector_mode)] = model
    return zoo


def assert_outputs_identical(actual, expected):
    assert actual.logits.dtype == expected.logits.dtype
    assert np.array_equal(actual.logits, expected.logits)
    assert np.array_equal(actual.approximate_logits, expected.approximate_logits)
    for mine, theirs in zip(actual.candidates, expected.candidates):
        assert np.array_equal(mine, theirs)
    assert actual.exact_count == expected.exact_count


@pytest.mark.parametrize("kind", PLAN_KINDS)
@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("selector_mode", SELECTORS)
class TestParallelMatchesSequentialOnSkewedPlans:
    def test_bit_identical(self, model_zoo, features, kind, dtype, selector_mode):
        model = model_zoo[(kind, dtype, selector_mode)]
        assert model.plan == make_plan(kind)
        sequential = model.forward(features)
        streamed = model.forward_streaming(features)
        with model.parallel() as engine:
            assert_outputs_identical(engine.forward(features), sequential)

            par_streamed = engine.forward_streaming(features)
            assert np.array_equal(par_streamed.exact_values, streamed.exact_values)
            assert np.array_equal(
                par_streamed.approximate_values, streamed.approximate_values
            )
            for mine, theirs in zip(
                par_streamed.candidates, streamed.candidates
            ):
                assert np.array_equal(mine, theirs)

            seq_indices, seq_scores = model.top_k(features, k=7)
            par_indices, par_scores = engine.top_k(features, k=7)
            assert np.array_equal(par_indices, seq_indices)
            assert np.array_equal(par_scores, seq_scores)
            assert np.array_equal(engine.predict(features), model.predict(features))


class TestSkewedPlanSemantics:
    def test_candidate_entries_match_exact_classifier(
        self, task, features, model_zoo
    ):
        """On every plan shape, candidate entries equal the exact
        full-classifier scores at global indices (allclose: sharded
        pipelines compute them from sliced planes)."""
        exact = task.classifier.logits(features)
        for kind in PLAN_KINDS:
            output = model_zoo[(kind, "float64", "top_m")].forward(features)
            for row, indices in enumerate(output.candidates):
                assert np.allclose(
                    output.logits[row, indices],
                    exact[row, indices],
                    rtol=1e-10,
                    atol=1e-10,
                )

    def test_replicated_hot_shard_bit_identical(self, model_zoo, features):
        """Replica workers serve the same bits as the lone worker, and
        the per-shard answer counts reconcile with the request count."""
        model = model_zoo[("balanced", "float64", "threshold")]
        sequential = model.forward(features)
        with model.parallel(replicas={0: 2}) as engine:
            for _ in range(3):
                assert_outputs_identical(engine.forward(features), sequential)
            stats = engine.stats()
            assert stats["replica_counts"] == [2, 1, 1]
            assert stats["plan_source"] == "balanced"
            for shard_stats in stats["shards"]:
                assert shard_stats["answered"] == stats["requests"]
            group = engine.replica_groups[0]
            assert sorted(group.served) == [1, 2]  # least-loaded spread

    def test_frequencies_argument_builds_balanced_plan(
        self, task, train_features, features
    ):
        """End-to-end: observe candidate frequencies from a trained
        model, rebuild with ``frequencies=``, and serve through both
        backends bit-identically."""
        seed_model = ShardedClassifier(
            task.classifier,
            num_shards=3,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        seed_model.train(
            train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=TRAIN_RNG
        )
        outputs = [seed_model.forward(features[i : i + 4]) for i in range(0, 8, 4)]
        frequencies = observed_category_frequencies(outputs, NUM_CATEGORIES)
        assert frequencies.sum() == sum(o.exact_count for o in outputs)

        model = ShardedClassifier(
            task.classifier,
            num_shards=3,
            frequencies=frequencies,
            config=ScreeningConfig(projection_dim=PROJECTION_DIM),
        )
        assert model.plan.source == "balanced"
        assert model.plan.num_categories == NUM_CATEGORIES
        model.train(
            train_features, candidates_per_shard=CANDIDATES_PER_SHARD, rng=TRAIN_RNG
        )
        sequential = model.forward(features)
        with model.parallel() as engine:
            assert_outputs_identical(engine.forward(features), sequential)

    def test_plan_argument_validation(self, task):
        plan = ShardPlan.uniform(NUM_CATEGORIES, 3)
        with pytest.raises(ValueError, match="not both"):
            ShardedClassifier(
                task.classifier, plan=plan, frequencies=np.ones(NUM_CATEGORIES)
            )
        with pytest.raises(ValueError, match="conflicts"):
            ShardedClassifier(task.classifier, num_shards=4, plan=plan)
        with pytest.raises(ValueError, match="covers"):
            ShardedClassifier(
                task.classifier, plan=ShardPlan.uniform(NUM_CATEGORIES - 1, 3)
            )
        with pytest.raises(ValueError, match="require num_shards"):
            ShardedClassifier(
                task.classifier, frequencies=np.ones(NUM_CATEGORIES)
            )
        with pytest.raises(ValueError, match="num_shards, frequencies or plan"):
            ShardedClassifier(task.classifier)

    def test_weights_scale_observed_frequencies(self):
        candidates = CandidateSet(indices=[np.array([1, 3], dtype=np.intp)])
        output = StreamedOutput(
            candidates=candidates,
            exact_values=np.zeros(2),
            approximate_values=np.zeros(2),
            num_categories=5,
        )
        counts = observed_category_frequencies([output, output], 5, weights=[1.0, 3.0])
        assert np.array_equal(counts, np.array([0.0, 4.0, 0.0, 4.0, 0.0]))
        with pytest.raises(ValueError, match="weights"):
            observed_category_frequencies([output], 5, weights=[1.0, 2.0])
