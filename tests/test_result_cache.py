"""Property, fuzz and thread-hammer tests for the quantized result cache.

The load-bearing claim (``repro.serving.cache``): with verification on
(the default), serving **with** the cache is bit-identical to serving
**without** it, for any request sequence — a key hit only short-circuits
when the raw float row matches the stored one, so INT4 key collisions
degrade to misses, never to wrong answers.  The suite pins

* the key function itself (collisions exactly when the INT4 codes *and*
  scale coincide, fuzzed against an independent recomputation),
* the verified/approximate hit semantics and the collision counter,
* LRU eviction order (via the ``keys()`` test hook),
* cache-on vs cache-off replay bit-identity through a real
  :class:`~repro.serving.frontdoor.FrontDoor` over a trained backend,
* "degraded results are never cached",
* bounded size + consistent counters under a multi-thread hammer
  (same tight-switch-interval pattern as ``tests/test_obs_threadsafety.py``).
"""

import sys
import threading

import numpy as np
import pytest

from repro.core import ScreeningConfig
from repro.core.candidates import CandidateSet
from repro.core.pipeline import DegradedOutput, ScreenedOutput, ShardFailure
from repro.data import make_task
from repro.distributed import ShardedClassifier
from repro.linalg.quantize import _qrange
from repro.obs import Recorder
from repro.serving import FrontDoor, ResultCache, quantized_key

pytestmark = pytest.mark.timeout(300)

NUM_CATEGORIES = 120
HIDDEN_DIM = 16


@pytest.fixture()
def tight_switching():
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def reference_key(row, bits=4):
    """Independent recomputation of the INT4 representation."""
    array = np.asarray(row, dtype=np.float64).reshape(-1)
    qmin, qmax = _qrange(bits)
    max_abs = float(np.max(np.abs(array))) if array.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    codes = np.clip(np.round(array / scale), qmin, qmax).astype(np.int8)
    return codes, scale


# ----------------------------------------------------------------------
# the key function
# ----------------------------------------------------------------------
class TestQuantizedKey:
    def test_deterministic_and_shape_insensitive(self):
        row = np.linspace(-1.0, 1.0, 8)
        assert quantized_key(row) == quantized_key(row.copy())
        assert quantized_key(row) == quantized_key(row[np.newaxis, :])

    def test_scale_is_part_of_the_key(self):
        """x and 2x share INT4 codes; only the scale separates them."""
        row = np.linspace(-1.0, 1.0, 8)
        codes_1, scale_1, _ = quantized_key(row)
        codes_2, scale_2, _ = quantized_key(2.0 * row)
        assert codes_1 == codes_2
        assert scale_2 == pytest.approx(2.0 * scale_1)
        assert quantized_key(row) != quantized_key(2.0 * row)

    def test_length_is_part_of_the_key(self):
        assert quantized_key(np.ones(4)) != quantized_key(np.ones(5))

    def test_zero_vector_has_a_key(self):
        codes, scale, length = quantized_key(np.zeros(6))
        assert codes == b"\x00" * 6
        assert scale == 1.0
        assert length == 6

    def test_near_duplicate_within_code_boundary_collides(self):
        """A perturbation too small to move any coordinate across a
        rounding boundary (and not on the max-abs coordinate) leaves the
        key unchanged — the designed near-duplicate aliasing."""
        row = np.array([1.0, 0.5, -0.25, 0.125])
        _, scale, _ = quantized_key(row)
        nudged = row.copy()
        nudged[2] += scale * 0.2  # well inside the code's half-width
        assert quantized_key(nudged) == quantized_key(row)
        moved = row.copy()
        moved[2] += scale * 1.2  # across at least one boundary
        assert quantized_key(moved) != quantized_key(row)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_rows_have_no_key(self, bad):
        """NaN/inf has no INT8 code: ``np.round`` and the cast are
        platform-dependent there, so the key function refuses instead
        of silently producing an unstable key."""
        row = np.linspace(-1.0, 1.0, 8)
        row[3] = bad
        with pytest.raises(ValueError, match="finite"):
            quantized_key(row)

    def test_all_nan_row_has_no_key(self):
        with pytest.raises(ValueError, match="finite"):
            quantized_key(np.full(4, np.nan))

    def test_fuzz_key_equality_iff_codes_and_scale_match(self):
        """500 random pairs: the packed key compares equal exactly when
        the independently recomputed (codes, scale) pair does."""
        rng = np.random.default_rng(42)
        for _ in range(500):
            a = rng.standard_normal(HIDDEN_DIM)
            # Mix of unrelated vectors, tiny perturbations and rescales
            # so both collision and non-collision branches are exercised.
            mode = rng.integers(3)
            if mode == 0:
                b = rng.standard_normal(HIDDEN_DIM)
            elif mode == 1:
                b = a + rng.standard_normal(HIDDEN_DIM) * 10.0 ** rng.integers(
                    -6, 0
                )
            else:
                b = a * float(rng.choice([1.0, 1.0 + 1e-9, 2.0]))
            codes_a, scale_a = reference_key(a)
            codes_b, scale_b = reference_key(b)
            same = np.array_equal(codes_a, codes_b) and scale_a == scale_b
            assert (quantized_key(a) == quantized_key(b)) == same


# ----------------------------------------------------------------------
# cache semantics
# ----------------------------------------------------------------------
class TestResultCacheSemantics:
    def test_basic_hit_miss_and_stats(self):
        recorder = Recorder()
        cache = ResultCache(capacity=4, recorder=recorder)
        row = np.arange(6.0)
        assert cache.get("forward", {}, row) is None
        cache.put("forward", {}, row, "value")
        assert cache.get("forward", {}, row) == "value"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)
        assert stats["size"] == 1 and stats["capacity"] == 4
        assert recorder.registry.counter("serving.cache.hits").value == 1
        assert recorder.registry.counter("serving.cache.misses").value == 1

    def test_op_and_kwargs_partition_the_key_space(self):
        cache = ResultCache(capacity=8)
        row = np.arange(6.0)
        cache.put("top_k", {"k": 5}, row, "k5")
        cache.put("top_k", {"k": 9}, row, "k9")
        cache.put("forward", {}, row, "fwd")
        assert cache.get("top_k", {"k": 5}, row) == "k5"
        assert cache.get("top_k", {"k": 9}, row) == "k9"
        assert cache.get("forward", {}, row) == "fwd"
        assert cache.get("predict", {}, row) is None

    def test_verified_collision_served_as_miss(self):
        """Two byte-different rows with identical INT4 codes and scale:
        verify=True refuses the hit and counts a collision."""
        cache = ResultCache(capacity=4, verify=True)
        row = np.array([1.0, 0.5, -0.25, 0.125])
        _, scale, _ = quantized_key(row)
        near = row.copy()
        near[2] += scale * 0.2
        assert quantized_key(near) == quantized_key(row)
        cache.put("forward", {}, row, "original")
        assert cache.get("forward", {}, near) is None
        assert cache.collisions == 1
        assert cache.misses == 1
        # The original row still hits.
        assert cache.get("forward", {}, row) == "original"

    def test_unverified_mode_serves_near_duplicates(self):
        cache = ResultCache(capacity=4, verify=False)
        row = np.array([1.0, 0.5, -0.25, 0.125])
        _, scale, _ = quantized_key(row)
        near = row.copy()
        near[2] += scale * 0.2
        cache.put("forward", {}, row, "original")
        assert cache.get("forward", {}, near) == "original"
        assert cache.collisions == 0

    def test_stored_row_is_a_copy(self):
        cache = ResultCache(capacity=4)
        row = np.arange(4.0)
        cache.put("forward", {}, row, "value")
        row[0] = 99.0  # caller mutates its buffer after the put
        assert cache.get("forward", {}, np.array([0.0, 1.0, 2.0, 3.0])) == "value"

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_rows_bypass_the_cache(self, bad):
        """A NaN/inf row is served uncached: ``get`` misses without
        raising, ``put`` stores nothing, and the bypass is counted
        separately from ordinary misses."""
        recorder = Recorder()
        cache = ResultCache(capacity=4, recorder=recorder)
        row = np.arange(6.0)
        row[2] = bad
        assert cache.get("forward", {}, row) is None
        cache.put("forward", {}, row, "poison")
        assert cache.get("forward", {}, row) is None
        assert len(cache) == 0
        stats = cache.stats()
        assert stats["non_finite"] == 3
        # Bypasses are not lookups: the ordinary miss counter is
        # untouched, so hit-rate math stays about cacheable traffic.
        assert stats["misses"] == 0 and stats["hits"] == 0
        count = recorder.registry.counter("serving.cache.non_finite").value
        assert count == 3
        # Finite traffic is unaffected before and after.
        finite = np.arange(6.0)
        cache.put("forward", {}, finite, "value")
        assert cache.get("forward", {}, finite) == "value"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestEvictionOrder:
    def rows(self, n):
        return [np.full(4, float(i + 1)) for i in range(n)]

    def test_lru_eviction_is_oldest_first(self):
        cache = ResultCache(capacity=3)
        rows = self.rows(4)
        for i in range(3):
            cache.put("forward", {}, rows[i], i)
        keys_before = cache.keys()
        cache.put("forward", {}, rows[3], 3)
        assert cache.evictions == 1
        assert len(cache) == 3
        # The oldest key fell out; insertion order is preserved.
        assert cache.keys() == keys_before[1:] + [
            ("forward", (), quantized_key(rows[3]))
        ]
        assert cache.get("forward", {}, rows[0]) is None

    def test_hit_refreshes_lru_position(self):
        cache = ResultCache(capacity=3)
        rows = self.rows(4)
        for i in range(3):
            cache.put("forward", {}, rows[i], i)
        assert cache.get("forward", {}, rows[0]) == 0  # refresh oldest
        cache.put("forward", {}, rows[3], 3)  # evicts rows[1], not rows[0]
        assert cache.get("forward", {}, rows[0]) == 0
        assert cache.get("forward", {}, rows[1]) is None

    def test_re_put_refreshes_and_replaces(self):
        cache = ResultCache(capacity=3)
        rows = self.rows(4)
        for i in range(3):
            cache.put("forward", {}, rows[i], i)
        cache.put("forward", {}, rows[0], "updated")  # refresh + replace
        cache.put("forward", {}, rows[3], 3)
        assert cache.get("forward", {}, rows[0]) == "updated"
        assert cache.get("forward", {}, rows[1]) is None
        assert len(cache) == 3

    def test_clear_empties_but_keeps_counters(self):
        cache = ResultCache(capacity=3)
        cache.put("forward", {}, np.ones(4), "v")
        assert cache.get("forward", {}, np.ones(4)) == "v"
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.get("forward", {}, np.ones(4)) is None


# ----------------------------------------------------------------------
# thread hammer
# ----------------------------------------------------------------------
class TestThreadSafety:
    THREADS = 8
    ROUNDS = 400

    def test_hammer_bounded_size_and_consistent_counters(self, tight_switching):
        """8 threads get/put over a shared pool much larger than the
        capacity while a reader polls the size.  Invariants: size never
        exceeds capacity (torn OrderedDict state would), every get is
        accounted as exactly one hit or miss, and the cache still
        behaves after the storm."""
        capacity = 16
        cache = ResultCache(capacity=capacity)
        pool = [np.full(4, float(i + 1)) for i in range(64)]
        gets = [0] * self.THREADS
        violations = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                size = len(cache)
                if size > capacity:  # pragma: no cover - failure path
                    violations.append(size)

        def work(index):
            rng = np.random.default_rng(index)
            for _ in range(self.ROUNDS):
                row = pool[int(rng.integers(len(pool)))]
                if cache.get("forward", {}, row) is None:
                    cache.put("forward", {}, row, float(row[0]))
                gets[index] += 1

        poller = threading.Thread(target=reader)
        poller.start()
        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        poller.join()

        assert not violations
        stats = cache.stats()
        assert stats["size"] <= capacity
        assert stats["hits"] + stats["misses"] == sum(gets)
        assert stats["collisions"] == 0  # pool rows are byte-distinct
        assert stats["evictions"] > 0  # the pool overflowed capacity
        # Every surviving entry still round-trips to its own value.
        for row in pool:
            value = cache.get("forward", {}, row)
            assert value is None or value == float(row[0])


# ----------------------------------------------------------------------
# front-door integration: replay bit-identity
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def backend():
    task = make_task(num_categories=NUM_CATEGORIES, hidden_dim=HIDDEN_DIM, rng=4)
    model = ShardedClassifier(
        task.classifier, num_shards=2, config=ScreeningConfig(projection_dim=8)
    )
    model.train(task.sample_features(128, rng=7), candidates_per_shard=8, rng=5)
    return task, model


def zipfian_replay(task, unique=12, length=60, seed=3):
    """A request stream with Zipfian repeats over a small query pool."""
    pool = task.sample_features(unique, rng=11)
    rng = np.random.default_rng(seed)
    weights = np.arange(1, unique + 1, dtype=np.float64) ** -1.2
    weights /= weights.sum()
    return [pool[int(i)] for i in rng.choice(unique, size=length, p=weights)]


class TestFrontDoorReplayIdentity:
    def test_cache_on_equals_cache_off(self, backend):
        """The headline property: replies to an identical replayed
        request stream are bit-identical with and without the cache,
        and the cached run actually hit."""
        task, model = backend
        replay = zipfian_replay(task)
        cache = ResultCache(capacity=64)
        with FrontDoor(model, max_batch=4, flush_window_s=0.001) as plain:
            baseline = [plain.call(row, timeout=30.0) for row in replay]
        with FrontDoor(
            model, max_batch=4, flush_window_s=0.001, cache=cache
        ) as cached_door:
            cached = [cached_door.call(row, timeout=30.0) for row in replay]
            stats = cached_door.stats()

        assert stats["cached_replies"] > 0
        assert stats["cache"]["hits"] == stats["cached_replies"]
        assert stats["submitted"] == stats["served"] == len(replay)
        hit_one = False
        for mine, theirs in zip(cached, baseline):
            assert not mine.degraded and not theirs.degraded
            assert np.array_equal(mine.value.logits, theirs.value.logits)
            assert np.array_equal(mine.value.candidates, theirs.value.candidates)
            if mine.cached:
                hit_one = True
                assert mine.batch_id == -1
                assert mine.batch_size == 1
        assert hit_one

    def test_top_k_replay_identity(self, backend):
        task, model = backend
        replay = zipfian_replay(task, unique=6, length=24, seed=9)
        cache = ResultCache(capacity=32)
        with FrontDoor(model, max_batch=4, flush_window_s=0.001) as plain:
            baseline = [
                plain.call(row, "top_k", k=5, timeout=30.0) for row in replay
            ]
        with FrontDoor(
            model, max_batch=4, flush_window_s=0.001, cache=cache
        ) as door:
            cached = [door.call(row, "top_k", k=5, timeout=30.0) for row in replay]
        assert cache.hits > 0
        for mine, theirs in zip(cached, baseline):
            assert np.array_equal(mine.value[0], theirs.value[0])
            assert np.array_equal(mine.value[1], theirs.value[1])

    def test_first_occurrences_always_miss(self, backend):
        task, model = backend
        pool = task.sample_features(8, rng=13)
        cache = ResultCache(capacity=32)
        with FrontDoor(
            model, max_batch=2, flush_window_s=0.0005, cache=cache
        ) as door:
            for row in pool:
                assert not door.call(row, timeout=30.0).cached
            for row in pool:
                assert door.call(row, timeout=30.0).cached
        assert cache.misses == len(pool)
        assert cache.hits == len(pool)


class _DegradedBackend:
    """Minimal EngineBackend whose every answer is degraded."""

    hidden_dim = 4
    num_categories = 6

    def forward(self, features):
        batch = features.shape[0]
        logits = np.zeros((batch, self.num_categories))
        empty = np.empty(0, dtype=np.intp)
        output = ScreenedOutput(
            logits=logits,
            candidates=CandidateSet.from_flat(
                np.zeros(batch, dtype=np.intp), empty
            ),
            restore=(empty, empty.copy(), np.empty(0)),
        )
        failure = ShardFailure(0, range(0, 3), "died", "test")
        return DegradedOutput(output, (failure,), self.num_categories)

    def close(self):
        pass


class TestDegradedNeverCached:
    def test_degraded_results_do_not_populate(self):
        cache = ResultCache(capacity=8)
        row = np.ones(4)
        with FrontDoor(
            _DegradedBackend(), max_batch=1, flush_window_s=0.0, cache=cache
        ) as door:
            first = door.call(row, timeout=30.0)
            second = door.call(row, timeout=30.0)
        assert first.degraded and second.degraded
        assert not first.cached and not second.cached
        assert len(cache) == 0
        assert cache.hits == 0
