import numpy as np
import pytest

from repro.enmc.buffers import BufferSet
from repro.enmc.config import DEFAULT_CONFIG
from repro.enmc.executor_unit import ExecutorUnit
from repro.enmc.screener_unit import ScreenerUnit
from repro.isa.opcodes import BufferId, Opcode


@pytest.fixture()
def buffers():
    return BufferSet(DEFAULT_CONFIG.screener_buffer_bytes)


@pytest.fixture()
def screener_unit(buffers):
    return ScreenerUnit(DEFAULT_CONFIG, buffers)


@pytest.fixture()
def executor_unit(buffers):
    return ExecutorUnit(DEFAULT_CONFIG, buffers)


class TestScreenerUnit:
    def test_mac_result(self, screener_unit, buffers):
        buffers[BufferId.FEATURE_INT4].write(np.array([1.0, 2.0]))
        buffers[BufferId.WEIGHT_INT4].write(np.array([[1.0, 1.0], [2.0, -1.0]]))
        cycles = screener_unit.multiply_accumulate()
        assert cycles >= 1
        assert np.allclose(buffers[BufferId.PSUM_INT4].data, [3.0, 0.0])

    def test_accumulation(self, screener_unit, buffers):
        buffers[BufferId.FEATURE_INT4].write(np.ones(2))
        buffers[BufferId.WEIGHT_INT4].write(np.ones((2, 2)))
        screener_unit.multiply_accumulate()
        screener_unit.multiply_accumulate()
        assert np.allclose(buffers[BufferId.PSUM_INT4].data, [4.0, 4.0])

    def test_cycle_count_scales_with_tile(self, screener_unit, buffers):
        buffers[BufferId.FEATURE_INT4].write(np.ones(4))
        buffers[BufferId.WEIGHT_INT4].write(np.ones((64, 4)))
        cycles = screener_unit.multiply_accumulate()
        # 256 MACs / 128 lanes = 2 cycles.
        assert cycles == 2

    def test_filter_indices_and_base(self, screener_unit, buffers):
        buffers[BufferId.PSUM_INT4].write(np.array([5.0, -1.0, 3.0]))
        result = screener_unit.filter(threshold=2.0, base_index=100)
        assert result.indices.tolist() == [100, 102]
        assert result.cycles >= 1
        assert buffers[BufferId.INDEX].data.tolist() == [100, 102]

    def test_filter_records_candidates(self, screener_unit, buffers):
        buffers[BufferId.PSUM_INT4].write(np.array([5.0]))
        screener_unit.filter(threshold=0.0)
        assert screener_unit.filtered_candidates == [0]

    def test_busy_cycles_accumulate(self, screener_unit, buffers):
        buffers[BufferId.FEATURE_INT4].write(np.ones(2))
        buffers[BufferId.WEIGHT_INT4].write(np.ones((2, 2)))
        screener_unit.multiply_accumulate()
        before = screener_unit.busy_cycles
        buffers[BufferId.PSUM_INT4].write(np.ones(4))
        screener_unit.filter(0.0)
        assert screener_unit.busy_cycles > before


class TestExecutorUnit:
    def test_mac_result(self, executor_unit, buffers):
        buffers[BufferId.FEATURE_FP32].write(np.array([0.5, 2.0]))
        buffers[BufferId.WEIGHT_FP32].write(np.array([[2.0, 1.0]]))
        cycles = executor_unit.multiply_accumulate()
        assert cycles >= 1
        assert np.allclose(buffers[BufferId.PSUM_FP32].data, [3.0])

    def test_cycle_count(self, executor_unit, buffers):
        buffers[BufferId.FEATURE_FP32].write(np.ones(4))
        buffers[BufferId.WEIGHT_FP32].write(np.ones((16, 4)))
        # 64 MACs / 16 lanes = 4 cycles.
        assert executor_unit.multiply_accumulate() == 4

    def test_softmax(self, executor_unit, buffers):
        buffers[BufferId.PSUM_FP32].write(np.array([1.0, 2.0, 0.0]))
        cycles = executor_unit.special_function(Opcode.SOFTMAX)
        assert cycles >= 1
        assert buffers[BufferId.PSUM_FP32].data.sum() == pytest.approx(1.0)

    def test_sigmoid(self, executor_unit, buffers):
        buffers[BufferId.PSUM_FP32].write(np.array([0.0]))
        executor_unit.special_function(Opcode.SIGMOID)
        assert buffers[BufferId.PSUM_FP32].data[0] == pytest.approx(0.5, abs=0.01)

    def test_rejects_non_sfu_opcode(self, executor_unit, buffers):
        buffers[BufferId.PSUM_FP32].write(np.array([0.0]))
        with pytest.raises(ValueError):
            executor_unit.special_function(Opcode.ADD_FP32)

    def test_shape_mismatch_rejected(self, executor_unit, buffers):
        buffers[BufferId.FEATURE_FP32].write(np.ones(3))
        buffers[BufferId.WEIGHT_FP32].write(np.ones((2, 4)))
        with pytest.raises(RuntimeError, match="tile width"):
            executor_unit.multiply_accumulate()
