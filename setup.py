"""Shim so editable installs work in offline environments without the
``wheel`` package (``python setup.py develop``).  Normal installs should
use ``pip install -e .`` which reads pyproject.toml."""

from setuptools import setup

setup()
