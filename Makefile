# Convenience targets for the repro-enmc repository.

PYTHON ?= python

.PHONY: install test bench experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

examples:
	@for script in examples/*.py; do \
		echo "=== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
