# Convenience targets for the repro-enmc repository.

PYTHON ?= python

.PHONY: install test bench bench-streaming bench-streaming-quant bench-trace bench-parallel bench-parallel-faults bench-serving bench-serving-zipf bench-serving-elastic bench-suite experiments examples clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest tests/

# Hot-path microbenchmark: seed pipeline vs vectorized engine.
# Writes BENCH_pipeline.json (the perf record future changes regress against).
bench:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_pipeline.py BENCH_pipeline.json

# Blocked streaming forward vs the dense engine at extreme l (670K).
# Writes BENCH_streaming.json (wall-clock + peak incremental memory).
bench-streaming:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_pipeline.py --streaming BENCH_streaming.json

# Block-quantized exact-weight store vs FP64 residency at extreme l.
# Merges a "quantized_exact" section into BENCH_streaming.json, keeping
# the existing streaming-vs-dense numbers.
bench-streaming-quant:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_pipeline.py --quantized-exact BENCH_streaming.json

# Observability overhead (recorder off / metrics / metrics+trace) on the
# streaming forward.  Merges a "telemetry" block into BENCH_pipeline.json
# (keeping existing timings) and writes a schema-validated Chrome trace
# to BENCH_trace.json (open in chrome://tracing or Perfetto).
bench-trace:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_pipeline.py --trace BENCH_pipeline.json

# Process-parallel sharded serving vs the sequential backend.
# Writes BENCH_parallel.json (records host cpu count; speedup needs cores).
bench-parallel:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_parallel.py BENCH_parallel.json

# Availability and latency under a deterministic fault schedule (kill,
# delay, raise, wedge) against a degraded-mode fleet.  Merges a "faults"
# section into BENCH_parallel.json, keeping existing throughput numbers.
bench-parallel-faults:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_parallel.py --faults BENCH_parallel.json

# Serving front door under open-loop Zipfian load: throughput vs p99
# across micro-batch flush-window settings.  Writes BENCH_serving.json.
bench-serving:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_serving.py BENCH_serving.json

# Zipfian-aware serving comparison: uniform sharding vs a skew-balanced
# plan from observed candidate frequencies vs balanced + hot-shard
# replicas + the quantized result cache.  Merges a "skew" section into
# BENCH_serving.json, keeping the existing window sweep.
bench-serving-zipf:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_serving.py --zipf BENCH_serving.json

# Elastic replica scaling under a drifting Zipf mix: a statically
# provisioned fleet vs the AutoScaler following the load at equal
# worker budget.  Merges an "elastic" section into BENCH_serving.json
# with scale-event accounting (scale-ups/-downs, re-plans).
bench-serving-elastic:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) benchmarks/bench_serving.py --elastic BENCH_serving.json

# Paper-figure benchmark suite (pytest-benchmark).
bench-suite:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.experiments.runner

examples:
	@for script in examples/*.py; do \
		echo "=== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
