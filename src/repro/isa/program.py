"""Instruction sequences with static checking and traffic accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.isa.encoding import EncodedCommand, encode
from repro.isa.instruction import Instruction, Load, Return, Store
from repro.isa.opcodes import Opcode


@dataclass
class Program:
    """A validated ENMC instruction stream.

    Programs are what the compiler emits and the DIMM simulator
    executes; they also know their own command-bus footprint, which the
    host model charges to the memory channel.
    """

    instructions: List[Instruction]

    def __post_init__(self) -> None:
        if not self.instructions:
            raise ValueError("program is empty")

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index):
        return self.instructions[index]

    # ------------------------------------------------------------------
    def encoded(self) -> List[EncodedCommand]:
        """The wire-format command stream."""
        return [encode(instruction) for instruction in self.instructions]

    def count(self, opcode: Opcode) -> int:
        """Number of instructions with the given opcode."""
        return sum(1 for i in self.instructions if i.opcode is opcode)

    @property
    def command_bus_beats(self) -> int:
        """C/A + DQ beats consumed delivering this program to the DIMM.

        Each instruction costs one PRECHARGE slot; instructions with a
        DQ payload add one 8-beat burst (the 64-bit word rides one
        burst as Fig. 8 describes).
        """
        beats = 0
        for instruction in self.instructions:
            beats += 1
            if instruction.carries_data:
                beats += 8
        return beats

    @property
    def dram_loads(self) -> List[Load]:
        return [i for i in self.instructions if isinstance(i, Load)]

    @property
    def dram_stores(self) -> List[Store]:
        return [i for i in self.instructions if isinstance(i, Store)]

    def validate(self) -> None:
        """Static checks: programs must end with RETURN and every
        compute instruction must be reachable before it."""
        if not any(isinstance(i, Return) for i in self.instructions):
            raise ValueError("program never RETURNs results to the host")
        last_return = max(
            idx for idx, i in enumerate(self.instructions) if isinstance(i, Return)
        )
        tail = self.instructions[last_return + 1 :]
        if any(i.opcode.is_compute for i in tail):
            raise ValueError("compute instructions after the final RETURN are dead")
