"""Typed instruction classes for the ENMC ISA (Table 1).

Each class knows its opcode and operand layout; :mod:`repro.isa.encoding`
maps instances to/from the 13-bit + 64-bit wire format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.opcodes import BufferId, Opcode, RegisterId

_MASK_64 = (1 << 64) - 1


class Instruction:
    """Base class; concrete instructions are frozen dataclasses."""

    opcode: Opcode

    @property
    def carries_data(self) -> bool:
        return self.opcode.carries_data

    def data_word(self) -> Optional[int]:
        """The 64-bit DQ payload, or ``None`` if the command is 13-bit only."""
        return None


@dataclass(frozen=True)
class Init(Instruction):
    """INIT reg, data — write a controller status register."""

    register: RegisterId
    value: int
    opcode: Opcode = Opcode.REG

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MASK_64:
            raise ValueError(f"INIT value {self.value} exceeds 64 bits")

    def data_word(self) -> int:
        return self.value


@dataclass(frozen=True)
class Query(Instruction):
    """QUERY reg — read back a controller status register."""

    register: RegisterId
    opcode: Opcode = Opcode.REG

    def data_word(self) -> Optional[int]:
        return None  # data flows DIMM → host on the following burst


@dataclass(frozen=True)
class Load(Instruction):
    """LDR buffer, addr — fill an on-DIMM buffer from DRAM."""

    buffer: BufferId
    address: int
    opcode: Opcode = Opcode.LDR

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _MASK_64:
            raise ValueError(f"LDR address {self.address:#x} exceeds 64 bits")

    def data_word(self) -> int:
        return self.address


@dataclass(frozen=True)
class Store(Instruction):
    """STR buffer, addr — spill an on-DIMM buffer to DRAM."""

    buffer: BufferId
    address: int
    opcode: Opcode = Opcode.STR

    def __post_init__(self) -> None:
        if not 0 <= self.address <= _MASK_64:
            raise ValueError(f"STR address {self.address:#x} exceeds 64 bits")

    def data_word(self) -> int:
        return self.address


@dataclass(frozen=True)
class Move(Instruction):
    """MOVE dst, src — transfer between two on-DIMM buffers."""

    destination: BufferId
    source: BufferId
    opcode: Opcode = Opcode.MOVE


@dataclass(frozen=True)
class Compute(Instruction):
    """ADD/MUL/MUL_ADD at INT4 or FP32 over two buffers.

    MUL_ADD accumulates into the matching-precision PSUM buffer, which
    is implicit in the opcode (the hardware hard-wires it).
    """

    opcode: Opcode
    buffer_a: BufferId
    buffer_b: BufferId

    def __post_init__(self) -> None:
        if not self.opcode.is_compute:
            raise ValueError(f"{self.opcode.name} is not a compute opcode")
        int_op = self.opcode in (
            Opcode.ADD_INT4, Opcode.MUL_INT4, Opcode.MUL_ADD_INT4
        )
        for buffer in (self.buffer_a, self.buffer_b):
            if buffer in (BufferId.INDEX, BufferId.OUTPUT):
                raise ValueError(f"compute cannot target {buffer.name}")
            if int_op != buffer.is_integer:
                raise ValueError(
                    f"{self.opcode.name} operand {buffer.name} has wrong precision"
                )


@dataclass(frozen=True)
class Filter(Instruction):
    """FILTER buffer — threshold the PSUM buffer into the index buffer."""

    buffer: BufferId
    opcode: Opcode = Opcode.FILTER

    def __post_init__(self) -> None:
        if self.buffer not in (BufferId.PSUM_INT4, BufferId.PSUM_FP32):
            raise ValueError("FILTER operates on a PSUM buffer")


@dataclass(frozen=True)
class SpecialFunction(Instruction):
    """SOFTMAX / SIGMOID over the FP32 PSUM buffer (Executor SFU)."""

    opcode: Opcode

    def __post_init__(self) -> None:
        if self.opcode not in (Opcode.SOFTMAX, Opcode.SIGMOID):
            raise ValueError(f"{self.opcode.name} is not a special function")


@dataclass(frozen=True)
class Barrier(Instruction):
    """BARRIER — wait for outstanding memory/compute/moves."""

    opcode: Opcode = Opcode.BARRIER


@dataclass(frozen=True)
class Nop(Instruction):
    """NOP — pipeline bubble."""

    opcode: Opcode = Opcode.NOP


@dataclass(frozen=True)
class Return(Instruction):
    """RETURN — send the output buffer back to the host."""

    opcode: Opcode = Opcode.RETURN


@dataclass(frozen=True)
class Clear(Instruction):
    """CLR — reset all buffers and status registers."""

    opcode: Opcode = Opcode.CLR
