"""Wire encoding of ENMC instructions (Fig. 8).

Layout of the 13-bit command word (A0 is bit 0):

* bits [4:0]  — 5-bit opcode;
* generic form (Fig. 8a): bits [8:5] operand 0, bits [12:9] operand 1
  (two 4-bit buffer IDs);
* register form (Fig. 8b/c, opcode REG): bit 5 = R/W (1 = write),
  bits [10:6] = 5-bit register ID.

Instructions whose :attr:`Opcode.carries_data` is true are followed by
one 64-bit DQ word (address or immediate).  A command word of zero is a
*normal* PRECHARGE — the all-row-bits-low pattern — so the encoder
guarantees every instruction encodes to a non-zero word (NOP sets a
marker bit in the operand field).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.isa.instruction import (
    Barrier,
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId

_COMMAND_BITS = 13
_COMMAND_MASK = (1 << _COMMAND_BITS) - 1
#: Marker bit distinguishing an encoded NOP from a normal PRECHARGE.
_NOP_MARKER = 1 << 5


@dataclass(frozen=True)
class EncodedCommand:
    """One instruction on the wire: 13 command bits + optional DQ word."""

    command: int
    data: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 < self.command <= _COMMAND_MASK:
            raise ValueError(
                f"command word {self.command:#x} outside 13-bit non-zero range"
            )

    @property
    def opcode(self) -> Opcode:
        return Opcode(self.command & 0b11111)

    @property
    def row_address_bits(self) -> str:
        """The A12..A0 pattern as driven on the C/A bus."""
        return format(self.command, f"0{_COMMAND_BITS}b")


def _pack(opcode: Opcode, op0: int = 0, op1: int = 0) -> int:
    if not 0 <= op0 < 16 or not 0 <= op1 < 16:
        raise ValueError(f"operands must fit 4 bits: {op0}, {op1}")
    return int(opcode) | (op0 << 5) | (op1 << 9)


def _pack_reg(write: bool, register: RegisterId) -> int:
    return int(Opcode.REG) | (int(write) << 5) | (int(register) << 6)


def encode(instruction: Instruction) -> EncodedCommand:
    """Encode a typed instruction into its wire format."""
    if isinstance(instruction, Init):
        return EncodedCommand(
            command=_pack_reg(True, instruction.register),
            data=instruction.value,
        )
    if isinstance(instruction, Query):
        return EncodedCommand(command=_pack_reg(False, instruction.register))
    if isinstance(instruction, Load):
        return EncodedCommand(
            command=_pack(Opcode.LDR, int(instruction.buffer)),
            data=instruction.address,
        )
    if isinstance(instruction, Store):
        return EncodedCommand(
            command=_pack(Opcode.STR, int(instruction.buffer)),
            data=instruction.address,
        )
    if isinstance(instruction, Move):
        return EncodedCommand(
            command=_pack(
                Opcode.MOVE, int(instruction.destination), int(instruction.source)
            )
        )
    if isinstance(instruction, Compute):
        return EncodedCommand(
            command=_pack(
                instruction.opcode, int(instruction.buffer_a), int(instruction.buffer_b)
            )
        )
    if isinstance(instruction, Filter):
        return EncodedCommand(command=_pack(Opcode.FILTER, int(instruction.buffer)))
    if isinstance(instruction, SpecialFunction):
        return EncodedCommand(command=_pack(instruction.opcode, 1))
    if isinstance(instruction, Barrier):
        return EncodedCommand(command=_pack(Opcode.BARRIER, 1))
    if isinstance(instruction, Return):
        return EncodedCommand(command=_pack(Opcode.RETURN, 1))
    if isinstance(instruction, Clear):
        return EncodedCommand(command=_pack(Opcode.CLR, 1))
    if isinstance(instruction, Nop):
        return EncodedCommand(command=int(Opcode.NOP) | _NOP_MARKER)
    raise TypeError(f"cannot encode {type(instruction).__name__}")


def decode(encoded: EncodedCommand) -> Instruction:
    """Decode a wire command back to a typed instruction."""
    word = encoded.command
    opcode = Opcode(word & 0b11111)
    op0 = (word >> 5) & 0b1111
    op1 = (word >> 9) & 0b1111

    if opcode is Opcode.REG:
        write = bool((word >> 5) & 1)
        register = RegisterId((word >> 6) & 0b11111)
        if write:
            if encoded.data is None:
                raise ValueError("INIT requires a DQ data word")
            return Init(register=register, value=encoded.data)
        return Query(register=register)
    if opcode is Opcode.LDR:
        if encoded.data is None:
            raise ValueError("LDR requires a DQ address word")
        return Load(buffer=BufferId(op0), address=encoded.data)
    if opcode is Opcode.STR:
        if encoded.data is None:
            raise ValueError("STR requires a DQ address word")
        return Store(buffer=BufferId(op0), address=encoded.data)
    if opcode is Opcode.MOVE:
        return Move(destination=BufferId(op0), source=BufferId(op1))
    if opcode.is_compute:
        return Compute(opcode=opcode, buffer_a=BufferId(op0), buffer_b=BufferId(op1))
    if opcode is Opcode.FILTER:
        return Filter(buffer=BufferId(op0))
    if opcode in (Opcode.SOFTMAX, Opcode.SIGMOID):
        return SpecialFunction(opcode=opcode)
    if opcode is Opcode.BARRIER:
        return Barrier()
    if opcode is Opcode.RETURN:
        return Return()
    if opcode is Opcode.CLR:
        return Clear()
    if opcode is Opcode.NOP:
        return Nop()
    raise ValueError(f"cannot decode opcode {opcode!r}")
