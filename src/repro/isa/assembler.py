"""Text assembly for ENMC programs.

The assembler accepts the mnemonic syntax the paper uses in Table 1 and
Fig. 8, one instruction per line, ``#`` comments::

    INIT vocab_size, 33278
    LDR feature_int4, 0x1000
    MUL_ADD_INT4 feature_int4, weight_int4
    FILTER psum_int4
    RETURN

Buffer and register operands may be written by name (case-insensitive)
or numerically.
"""

from __future__ import annotations

from typing import List

from repro.isa.instruction import (
    Barrier,
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId


class AssemblerError(ValueError):
    """Raised with the offending line number and text."""

    def __init__(self, line_number: int, line: str, message: str):
        super().__init__(f"line {line_number}: {message!s} in {line!r}")
        self.line_number = line_number
        self.line = line


def _parse_int(token: str) -> int:
    return int(token, 0)


def _parse_buffer(token: str) -> BufferId:
    token = token.strip()
    try:
        return BufferId(_parse_int(token))
    except ValueError:
        pass
    try:
        return BufferId[token.upper()]
    except KeyError:
        raise ValueError(f"unknown buffer {token!r}") from None


def _parse_register(token: str) -> RegisterId:
    token = token.strip()
    try:
        return RegisterId(_parse_int(token))
    except ValueError:
        pass
    try:
        return RegisterId[token.upper()]
    except KeyError:
        raise ValueError(f"unknown register {token!r}") from None


def _parse_line(line: str) -> Instruction:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.upper()
    operands = [tok.strip() for tok in rest.split(",") if tok.strip()]

    def need(count: int) -> None:
        if len(operands) != count:
            raise ValueError(f"{mnemonic} expects {count} operand(s), got {len(operands)}")

    if mnemonic == "INIT":
        need(2)
        return Init(register=_parse_register(operands[0]), value=_parse_int(operands[1]))
    if mnemonic == "QUERY":
        need(1)
        return Query(register=_parse_register(operands[0]))
    if mnemonic == "LDR":
        need(2)
        return Load(buffer=_parse_buffer(operands[0]), address=_parse_int(operands[1]))
    if mnemonic == "STR":
        need(2)
        return Store(buffer=_parse_buffer(operands[0]), address=_parse_int(operands[1]))
    if mnemonic == "MOVE":
        need(2)
        return Move(
            destination=_parse_buffer(operands[0]), source=_parse_buffer(operands[1])
        )
    if mnemonic in ("ADD_INT4", "MUL_INT4", "ADD_FP32", "MUL_FP32",
                    "MUL_ADD_INT4", "MUL_ADD_FP32"):
        need(2)
        return Compute(
            opcode=Opcode[mnemonic],
            buffer_a=_parse_buffer(operands[0]),
            buffer_b=_parse_buffer(operands[1]),
        )
    if mnemonic == "FILTER":
        need(1)
        return Filter(buffer=_parse_buffer(operands[0]))
    if mnemonic in ("SOFTMAX", "SIGMOID"):
        need(0)
        return SpecialFunction(opcode=Opcode[mnemonic])
    if mnemonic == "BARRIER":
        need(0)
        return Barrier()
    if mnemonic == "NOP":
        need(0)
        return Nop()
    if mnemonic == "RETURN":
        need(0)
        return Return()
    if mnemonic == "CLR":
        need(0)
        return Clear()
    raise ValueError(f"unknown mnemonic {mnemonic!r}")


def assemble(source: str) -> List[Instruction]:
    """Assemble multi-line source text into instruction objects."""
    instructions: List[Instruction] = []
    for number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            instructions.append(_parse_line(line))
        except ValueError as exc:
            raise AssemblerError(number, raw, exc) from exc
    return instructions


def disassemble(instructions: List[Instruction]) -> str:
    """Render instructions back to canonical assembly text."""
    lines = []
    for instruction in instructions:
        if isinstance(instruction, Init):
            lines.append(
                f"INIT {instruction.register.name.lower()}, {instruction.value}"
            )
        elif isinstance(instruction, Query):
            lines.append(f"QUERY {instruction.register.name.lower()}")
        elif isinstance(instruction, Load):
            lines.append(
                f"LDR {instruction.buffer.name.lower()}, {instruction.address:#x}"
            )
        elif isinstance(instruction, Store):
            lines.append(
                f"STR {instruction.buffer.name.lower()}, {instruction.address:#x}"
            )
        elif isinstance(instruction, Move):
            lines.append(
                f"MOVE {instruction.destination.name.lower()}, "
                f"{instruction.source.name.lower()}"
            )
        elif isinstance(instruction, Compute):
            lines.append(
                f"{instruction.opcode.name} {instruction.buffer_a.name.lower()}, "
                f"{instruction.buffer_b.name.lower()}"
            )
        elif isinstance(instruction, Filter):
            lines.append(f"FILTER {instruction.buffer.name.lower()}")
        elif isinstance(instruction, SpecialFunction):
            lines.append(instruction.opcode.name)
        elif isinstance(instruction, (Barrier, Nop, Return, Clear)):
            lines.append(instruction.opcode.name)
        else:
            raise TypeError(f"cannot disassemble {type(instruction).__name__}")
    return "\n".join(lines)
