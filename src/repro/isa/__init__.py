"""The ENMC instruction set (paper Table 1 and Fig. 8).

Instructions ride on DDR4 PRECHARGE commands: a normal PRECHARGE drives
all row-address bits low, so a PRECHARGE with row-address bits set is
recognized by the DIMM as an ENMC instruction.  The command occupies
13 bits (A0-A12); instructions carrying immediate data or addresses add
one 64-bit DQ-bus word.
"""

from repro.isa.opcodes import BufferId, Opcode, RegisterId
from repro.isa.instruction import (
    Barrier,
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
)
from repro.isa.encoding import EncodedCommand, decode, encode
from repro.isa.assembler import assemble, disassemble
from repro.isa.program import Program

__all__ = [
    "Opcode",
    "BufferId",
    "RegisterId",
    "Instruction",
    "Init",
    "Load",
    "Store",
    "Move",
    "Compute",
    "Filter",
    "SpecialFunction",
    "Barrier",
    "Nop",
    "Query",
    "Return",
    "Clear",
    "EncodedCommand",
    "encode",
    "decode",
    "assemble",
    "disassemble",
    "Program",
]
