"""Opcode, buffer and register identifier spaces.

The command format (Fig. 8) gives 5 bits of opcode and 8 bits of
operand space (two 4-bit buffer IDs, or 1 R/W bit + 5-bit register ID).
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """5-bit primary opcodes covering Table 1."""

    NOP = 0
    LDR = 1
    MUL_ADD_FP32 = 2  # Fig. 8(a) pins this to opcode 2
    STR = 3
    MOVE = 4
    ADD_INT4 = 5
    MUL_INT4 = 6
    ADD_FP32 = 7
    MUL_FP32 = 8
    REG = 9  # Fig. 8(b/c): QUERY and INIT share opcode 9
    MUL_ADD_INT4 = 10
    FILTER = 11
    SIGMOID = 12
    SOFTMAX = 13
    BARRIER = 14
    RETURN = 15
    CLR = 16

    @property
    def is_compute(self) -> bool:
        return self in _COMPUTE_OPCODES

    @property
    def carries_data(self) -> bool:
        """Whether the instruction is followed by a 64-bit DQ word."""
        return self in (Opcode.LDR, Opcode.STR, Opcode.REG)


_COMPUTE_OPCODES = frozenset(
    {
        Opcode.ADD_INT4,
        Opcode.MUL_INT4,
        Opcode.ADD_FP32,
        Opcode.MUL_FP32,
        Opcode.MUL_ADD_INT4,
        Opcode.MUL_ADD_FP32,
    }
)


class BufferId(enum.IntEnum):
    """4-bit on-DIMM buffer identifiers.

    The Screener owns the INT4 feature/weight/psum buffers, the
    Executor the FP32 set; INDEX carries filtered candidate indices and
    OUTPUT stages results for RETURN.
    """

    FEATURE_INT4 = 0
    WEIGHT_INT4 = 1
    PSUM_INT4 = 2
    FEATURE_FP32 = 3
    WEIGHT_FP32 = 4
    PSUM_FP32 = 5
    INDEX = 6
    OUTPUT = 7

    @property
    def is_integer(self) -> bool:
        return self in (BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4, BufferId.PSUM_INT4)


class RegisterId(enum.IntEnum):
    """5-bit status-register file of the ENMC controller."""

    FEATURE_BASE = 0  # DRAM address of input features
    FEATURE_SIZE = 1
    WEIGHT_BASE = 2  # DRAM address of the full classifier W
    WEIGHT_SIZE = 3
    SCREEN_WEIGHT_BASE = 4  # DRAM address of W̃
    SCREEN_WEIGHT_SIZE = 5
    VOCAB_SIZE = 6
    HIDDEN_DIM = 7
    PROJECTION_DIM = 8
    BATCH_SIZE = 9
    THRESHOLD = 10  # candidate filter threshold (fixed-point)
    TILE_ROWS = 11
    INSTRUCTION_COUNT = 12
    STATUS = 13  # busy/done flags
    CANDIDATE_COUNT = 14
    OUTPUT_BASE = 15
    #: Category-space offset of the tile currently in the PSUM buffer;
    #: the compiler sets it before each FILTER so tile-local comparator
    #: indices become global candidate ids.
    FILTER_BASE = 16
    #: Which batch row the current screening pass belongs to.  The
    #: Screener forwards ``(batch_id, candidate_id)`` pairs to the
    #: instruction generator (paper Section 5.2).
    BATCH_ID = 17
