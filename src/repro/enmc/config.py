"""ENMC hardware configuration (paper Table 3).

One note on the INT4 MAC count: Table 3 lists 128 INT4 MACs while the
prose in Section 6.2 says 64; we default to the table (128) and expose
the knob so the ablation bench can sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ENMCConfig:
    """Per-rank ENMC logic plus the DIMM-level memory organization."""

    # ENMC logic (per rank)
    frequency_hz: float = 400e6  # 28 nm synthesis point
    int4_macs: int = 128
    fp32_macs: int = 16
    screener_buffer_bytes: int = 256  # feature + weight, each
    executor_buffer_bytes: int = 256
    psum_buffer_bytes: int = 256
    output_buffer_bytes: int = 256
    sfu_taylor_order: int = 4
    sfu_elements_per_cycle: int = 4

    # memory organization
    timing: DDR4Timing = field(default_factory=lambda: DDR4_2400)
    channels: int = 8
    ranks_per_channel: int = 8

    # datapath precisions
    screener_bits: int = 4
    executor_bits: int = 32

    def __post_init__(self) -> None:
        for name in ("frequency_hz", "int4_macs", "fp32_macs", "channels",
                     "ranks_per_channel"):
            check_positive(name, getattr(self, name))

    # ------------------------------------------------------------------
    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def rank_bandwidth(self) -> float:
        """Internal bandwidth available to one rank's ENMC logic (B/s).

        Non-intrusive rank-level NMP sees the full channel rate while
        its rank drives the bus; aggregate internal bandwidth scales
        with ranks because each rank's logic accesses its own devices.
        """
        return self.timing.peak_bandwidth

    @property
    def aggregate_internal_bandwidth(self) -> float:
        """Sum of rank-level bandwidth across the system (the NMP win)."""
        return self.rank_bandwidth * self.total_ranks

    @property
    def dram_cycles_per_logic_cycle(self) -> float:
        """DRAM command clocks per ENMC logic clock (1200/400 = 3)."""
        return self.timing.clock_hz / self.frequency_hz

    # ------------------------------------------------------------------
    def int4_macs_per_second(self) -> float:
        return self.int4_macs * self.frequency_hz

    def fp32_macs_per_second(self) -> float:
        return self.fp32_macs * self.frequency_hz


#: The paper's evaluated configuration.
DEFAULT_CONFIG = ENMCConfig()
