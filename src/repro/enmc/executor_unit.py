"""The Executor unit: FP32 MAC array + special-function unit.

"The Executor computes candidate-only classification under
full-precision ... it applies floating-point MAC array and has an extra
special-function unit that performs the non-linear activation such as
Softmax and Sigmoid."
"""

from __future__ import annotations

import numpy as np

from repro.enmc.buffers import BufferSet
from repro.enmc.config import ENMCConfig
from repro.enmc.mac import MACArray, SpecialFunctionUnit
from repro.isa.opcodes import BufferId, Opcode


class ExecutorUnit:
    """Full-precision candidates-only compute over on-DIMM buffers."""

    def __init__(self, config: ENMCConfig, buffers: BufferSet):
        self.config = config
        self.buffers = buffers
        self.mac = MACArray(lanes=config.fp32_macs, bits=config.executor_bits)
        self.sfu = SpecialFunctionUnit(
            taylor_order=config.sfu_taylor_order,
            elements_per_cycle=config.sfu_elements_per_cycle,
        )
        self.busy_cycles = 0

    # ------------------------------------------------------------------
    def multiply_accumulate(self) -> int:
        """MUL_ADD_FP32: psum += weight_rows @ feature."""
        weight = self.buffers[BufferId.WEIGHT_FP32].data
        feature = self.buffers[BufferId.FEATURE_FP32].data
        if weight.ndim != 2:
            raise RuntimeError(f"weight tile must be 2-D, got shape {weight.shape}")
        if feature.shape[-1] != weight.shape[1]:
            raise RuntimeError(
                f"feature length {feature.shape[-1]} != tile width {weight.shape[1]}"
            )
        partial = self.mac.matvec(weight, np.atleast_1d(feature))
        psum_buffer = self.buffers[BufferId.PSUM_FP32]
        if psum_buffer.empty:
            psum_buffer.write(partial)
        else:
            psum_buffer.write(psum_buffer.data + partial)
        cycles = self.mac.cycles_for(weight.size)
        self.busy_cycles += cycles
        return cycles

    def special_function(self, opcode: Opcode) -> int:
        """SOFTMAX / SIGMOID over the FP32 PSUM buffer, in place."""
        psum_buffer = self.buffers[BufferId.PSUM_FP32]
        values = psum_buffer.data
        if opcode is Opcode.SOFTMAX:
            psum_buffer.write(self.sfu.softmax(values))
        elif opcode is Opcode.SIGMOID:
            psum_buffer.write(self.sfu.sigmoid(values))
        else:
            raise ValueError(f"{opcode.name} is not a special function")
        cycles = self.sfu.cycles_for(values.size)
        self.busy_cycles += cycles
        return cycles
