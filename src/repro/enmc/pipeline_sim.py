"""Tile-level discrete-event simulation of the dual-module pipeline.

Between the functional controller (per-instruction, exact values) and
the analytic model (closed-form steady state) sits this event-driven
simulator: the screening of each weight tile and the candidate
execution it triggers are events with cycle costs drawn from the DRAM
and MAC models, scheduled under the true dependency — tile *i*'s
candidate work can only start after tile *i* is screened, and the two
units contend for their own resources but not each other's.

It answers the questions the analytic model assumes away: pipeline
fill/drain, bursty candidate arrivals (screened tiles yield uneven
candidate counts), and Executor backlog when the candidate budget is
large.  ``tests/test_pipeline_sim.py`` checks it against the analytic
model's steady state and against hand-built schedules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.dram.analytic import AnalyticDRAMModel
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TileWork:
    """One screening tile's workload: its size and candidate yield."""

    rows: int
    projection_dim: int
    candidates: int  # exact computations this tile triggers

    def __post_init__(self) -> None:
        check_positive("rows", self.rows)
        check_positive("projection_dim", self.projection_dim)
        if self.candidates < 0:
            raise ValueError(f"candidates must be >= 0, got {self.candidates}")


@dataclass
class TileTrace:
    """Scheduled times (ENMC logic cycles) of one tile's two stages."""

    index: int
    screen_start: float
    screen_end: float
    execute_start: float
    execute_end: float

    @property
    def screen_cycles(self) -> float:
        return self.screen_end - self.screen_start

    @property
    def execute_cycles(self) -> float:
        return self.execute_end - self.execute_start


@dataclass
class PipelineResult:
    """Full schedule of a tiled screened classification on one rank."""

    tiles: List[TileTrace] = field(default_factory=list)
    hidden_dim: int = 0

    @property
    def total_cycles(self) -> float:
        if not self.tiles:
            return 0.0
        return max(t.execute_end for t in self.tiles)

    @property
    def screener_busy_cycles(self) -> float:
        return sum(t.screen_cycles for t in self.tiles)

    @property
    def executor_busy_cycles(self) -> float:
        return sum(t.execute_cycles for t in self.tiles)

    @property
    def overlap_efficiency(self) -> float:
        """How close the schedule is to perfect overlap: serialized
        work divided by achieved makespan (1.0 = ideal)."""
        total = self.total_cycles
        if total == 0:
            return 1.0
        return (self.screener_busy_cycles + self.executor_busy_cycles) / total

    def seconds(self, frequency_hz: float) -> float:
        check_positive("frequency_hz", frequency_hz)
        return self.total_cycles / frequency_hz


class DualModulePipeline:
    """Event-driven schedule of Screener/Executor over a tile stream.

    Per tile:

    * screening cost = max(DRAM stream of the INT4 tile, INT4 MACs),
      charged to the Screener, which processes tiles in order;
    * candidate cost = max(DRAM gather of candidate rows, FP32 MACs),
      charged to the Executor, which may only start a tile's candidates
      after that tile's screening ends, and after its own previous
      work drains (single execution port, in-order — matching the
      instruction generator's FIFO).
    """

    def __init__(self, config: ENMCConfig = DEFAULT_CONFIG):
        self.config = config
        self._dram = AnalyticDRAMModel(
            config.timing, channels=1, ranks_per_channel=1
        )

    # ------------------------------------------------------------------
    def _screen_cycles(self, tile: TileWork) -> float:
        config = self.config
        tile_bytes = tile.rows * tile.projection_dim * config.screener_bits / 8.0
        dram = self._dram.stream(tile_bytes).cycles / config.dram_cycles_per_logic_cycle
        macs = tile.rows * tile.projection_dim
        compute = math.ceil(macs / config.int4_macs)
        # Streamed execution: bursts feed the MAC array; take the max.
        return max(dram, compute)

    def _execute_cycles(self, tile: TileWork, hidden_dim: int) -> float:
        if tile.candidates == 0:
            return 0.0
        config = self.config
        row_bytes = hidden_dim * 4.0
        dram = (
            self._dram.gather(tile.candidates, row_bytes).cycles
            / config.dram_cycles_per_logic_cycle
        )
        macs = tile.candidates * hidden_dim
        compute = math.ceil(macs / config.fp32_macs)
        return max(dram, compute)

    # ------------------------------------------------------------------
    def run(self, tiles: Sequence[TileWork], hidden_dim: int) -> PipelineResult:
        """Schedule the tile stream; returns the full timeline."""
        check_positive("hidden_dim", hidden_dim)
        if not tiles:
            raise ValueError("no tiles to schedule")

        result = PipelineResult(hidden_dim=hidden_dim)
        screener_free = 0.0
        executor_free = 0.0
        for index, tile in enumerate(tiles):
            screen_start = screener_free
            screen_end = screen_start + self._screen_cycles(tile)
            screener_free = screen_end

            execute_start = max(screen_end, executor_free)
            execute_end = execute_start + self._execute_cycles(tile, hidden_dim)
            executor_free = execute_end

            result.tiles.append(
                TileTrace(
                    index=index,
                    screen_start=screen_start,
                    screen_end=screen_end,
                    execute_start=execute_start,
                    execute_end=execute_end,
                )
            )
        return result

    # ------------------------------------------------------------------
    def run_uniform(
        self,
        num_categories: int,
        hidden_dim: int,
        projection_dim: Optional[int] = None,
        total_candidates: int = 0,
        tile_rows: int = 512,
        candidate_skew: float = 0.0,
        rng=None,
    ) -> PipelineResult:
        """Convenience: build a tile stream for one rank's shard.

        ``candidate_skew`` > 0 concentrates candidates on few tiles
        (Zipf-like), the realistic case — screened scores cluster, so
        candidate work arrives in bursts.
        """
        check_positive("num_categories", num_categories)
        check_positive("tile_rows", tile_rows)
        k = projection_dim or max(1, hidden_dim // 4)
        num_tiles = math.ceil(num_categories / tile_rows)

        if candidate_skew > 0 and total_candidates > 0:
            import numpy as np

            generator = rng if rng is not None else np.random.default_rng(0)
            weights = (
                np.arange(1, num_tiles + 1, dtype=float) ** -candidate_skew
            )
            generator.shuffle(weights)
            weights /= weights.sum()
            counts = np.floor(weights * total_candidates).astype(int)
            counts[0] += total_candidates - counts.sum()
        else:
            base, remainder = divmod(total_candidates, num_tiles)
            counts = [base + (1 if i < remainder else 0) for i in range(num_tiles)]

        tiles = []
        remaining = num_categories
        for i in range(num_tiles):
            rows = min(tile_rows, remaining)
            remaining -= rows
            tiles.append(
                TileWork(rows=rows, projection_dim=k, candidates=int(counts[i]))
            )
        return self.run(tiles, hidden_dim)
