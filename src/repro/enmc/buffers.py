"""On-DIMM SRAM buffer models.

Buffers are functional (they hold numpy arrays) and enforce their
capacity, which is the constraint that forces the compiler to tile:
256 B holds 512 INT4 values or 64 FP32 values.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.isa.opcodes import BufferId
from repro.utils.validation import check_positive

#: Storage width per element by buffer, in bits.
_BUFFER_BITS: Dict[BufferId, int] = {
    BufferId.FEATURE_INT4: 4,
    BufferId.WEIGHT_INT4: 4,
    BufferId.PSUM_INT4: 32,  # accumulators are wide even on the INT4 path
    BufferId.FEATURE_FP32: 32,
    BufferId.WEIGHT_FP32: 32,
    BufferId.PSUM_FP32: 32,
    BufferId.INDEX: 16,
    BufferId.OUTPUT: 32,
}


class BufferOverflowError(RuntimeError):
    """Raised when a write exceeds a buffer's capacity."""


class Buffer:
    """One SRAM buffer: capacity-checked numpy storage."""

    def __init__(self, buffer_id: BufferId, capacity_bytes: int):
        check_positive("capacity_bytes", capacity_bytes)
        self.buffer_id = buffer_id
        self.capacity_bytes = capacity_bytes
        self.element_bits = _BUFFER_BITS[buffer_id]
        self._data: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def capacity_elements(self) -> int:
        return self.capacity_bytes * 8 // self.element_bits

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise RuntimeError(f"{self.buffer_id.name} buffer is empty")
        return self._data

    @property
    def occupancy_bytes(self) -> float:
        if self._data is None:
            return 0.0
        return self._data.size * self.element_bits / 8.0

    @property
    def empty(self) -> bool:
        return self._data is None

    # ------------------------------------------------------------------
    def write(self, values: np.ndarray) -> None:
        array = np.asarray(values)
        needed = array.size * self.element_bits / 8.0
        if needed > self.capacity_bytes:
            raise BufferOverflowError(
                f"{array.size} elements ({needed:.0f} B) exceed "
                f"{self.buffer_id.name} capacity {self.capacity_bytes} B"
            )
        self._data = array.copy()

    def clear(self) -> None:
        self._data = None


class BufferSet:
    """All eight architectural buffers of one ENMC rank."""

    def __init__(self, capacity_bytes: int = 256):
        self._buffers: Dict[BufferId, Buffer] = {
            buffer_id: Buffer(buffer_id, capacity_bytes) for buffer_id in BufferId
        }

    def __getitem__(self, buffer_id: BufferId) -> Buffer:
        return self._buffers[buffer_id]

    def clear_all(self) -> None:
        for buffer in self._buffers.values():
            buffer.clear()

    @property
    def total_occupancy_bytes(self) -> float:
        return sum(b.occupancy_bytes for b in self._buffers.values())
