"""MAC-array and special-function-unit timing/functional models."""

from __future__ import annotations

import math

import numpy as np

from repro.linalg.functional import taylor_exp
from repro.utils.validation import check_positive


class MACArray:
    """A bank of multiply-accumulate lanes at a fixed precision.

    Throughput is one MAC per lane per cycle (the synthesized arrays
    are fully pipelined); ``cycles_for`` converts a MAC count into
    occupancy cycles.
    """

    def __init__(self, lanes: int, bits: int):
        check_positive("lanes", lanes)
        check_positive("bits", bits)
        self.lanes = lanes
        self.bits = bits
        self.total_macs = 0

    def cycles_for(self, macs: float) -> int:
        """Occupancy cycles to perform ``macs`` multiply-accumulates."""
        if macs < 0:
            raise ValueError(f"macs must be non-negative, got {macs}")
        self.total_macs += macs
        return math.ceil(macs / self.lanes)

    def matvec(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
        """Functional matrix-vector product (the array's dataflow)."""
        return np.asarray(matrix) @ np.asarray(vector)

    def __repr__(self) -> str:
        return f"MACArray(lanes={self.lanes}, bits={self.bits})"


class SpecialFunctionUnit:
    """The Executor's non-linear unit: Taylor-expanded exp, sigmoid.

    Section 6.2: "we approximate the exponential function with Taylor
    expansion to the 4th order".  The unit processes
    ``elements_per_cycle`` values per cycle.
    """

    def __init__(self, taylor_order: int = 4, elements_per_cycle: int = 4):
        check_positive("taylor_order", taylor_order)
        check_positive("elements_per_cycle", elements_per_cycle)
        self.taylor_order = taylor_order
        self.elements_per_cycle = elements_per_cycle

    def cycles_for(self, elements: int) -> int:
        if elements < 0:
            raise ValueError(f"elements must be non-negative, got {elements}")
        return math.ceil(elements / self.elements_per_cycle)

    def softmax(self, values: np.ndarray) -> np.ndarray:
        """Max-shifted softmax with the Taylor-approximated exponential."""
        array = np.asarray(values, dtype=np.float64)
        shifted = array - np.max(array, axis=-1, keepdims=True)
        exp = taylor_exp(shifted, order=self.taylor_order)
        total = np.sum(exp, axis=-1, keepdims=True)
        total = np.where(total > 0, total, 1.0)
        return exp / total

    def sigmoid(self, values: np.ndarray) -> np.ndarray:
        """Sigmoid via the same exp unit: 1 / (1 + exp(-x)).

        Arguments are clamped to the series' accurate range; outside it
        the hardware saturates to 0/1, matching a real SFU's behaviour.
        """
        array = np.asarray(values, dtype=np.float64)
        clamped = np.clip(array, -4.0, 4.0)
        approx = 1.0 / (1.0 + taylor_exp(-clamped, order=self.taylor_order))
        return np.where(
            np.abs(array) <= 4.0, approx, np.where(array > 0, 1.0, 0.0)
        )
