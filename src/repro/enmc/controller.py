"""The ENMC controller: decodes instruction streams and drives the units.

This is the functional half of the DIMM model.  It executes a
:class:`repro.isa.program.Program` against a bound memory image,
dispatching to the Screener and Executor units, while charging cycles
to an :class:`ExecutionTrace`:

* DRAM access cycles come from the analytic DRAM model (one rank's
  view), converted to ENMC logic cycles;
* compute cycles come from the MAC-array and SFU occupancy models;
* every decoded instruction costs one controller cycle (the decoder
  processes one instruction per cycle from the FIFO).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dram.analytic import AnalyticDRAMModel
from repro.enmc.buffers import BufferSet
from repro.enmc.config import ENMCConfig
from repro.enmc.executor_unit import ExecutorUnit
from repro.enmc.screener_unit import ScreenerUnit
from repro.isa.instruction import (
    Barrier,
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Nop,
    Query,
    Return,
    SpecialFunction,
    Store,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId
from repro.isa.program import Program


class MemoryImage:
    """Address-indexed tile storage backing LDR/STR.

    Each entry records the tile array and its storage width in bits so
    traffic is charged at the precision actually stored in DRAM.
    """

    def __init__(self) -> None:
        self._tiles: Dict[int, Tuple[np.ndarray, int]] = {}

    def bind(self, address: int, array: np.ndarray, bits: int) -> None:
        if address in self._tiles:
            raise ValueError(f"address {address:#x} already bound")
        self._tiles[address] = (np.asarray(array), bits)

    def fetch(self, address: int) -> Tuple[np.ndarray, int]:
        try:
            return self._tiles[address]
        except KeyError:
            raise KeyError(f"no tile bound at {address:#x}") from None

    def store(self, address: int, array: np.ndarray, bits: int = 32) -> None:
        self._tiles[address] = (np.asarray(array).copy(), bits)

    def __len__(self) -> int:
        return len(self._tiles)


@dataclass
class ExecutionTrace:
    """Cycle and event accounting for one program execution."""

    controller_cycles: int = 0
    dram_cycles: float = 0.0
    screener_cycles: int = 0
    executor_cycles: int = 0
    sfu_cycles: int = 0
    dram_bytes: float = 0.0
    dram_activations: float = 0.0
    instructions_executed: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)
    outputs: List[np.ndarray] = field(default_factory=list)
    candidate_indices: List[int] = field(default_factory=list)
    #: ``(category index, exact score)`` pairs computed by the Executor
    #: from generator-issued candidate work.
    exact_results: List[Tuple[int, float]] = field(default_factory=list)
    #: The same results tagged with the BATCH_ID register — the
    #: ``(batch_id, candidate_id)`` interface of Section 5.2, used by
    #: batched programs.
    tagged_results: List[Tuple[int, int, float]] = field(default_factory=list)
    #: ``(batch_id, candidate index)`` pairs from FILTER.
    tagged_candidates: List[Tuple[int, int]] = field(default_factory=list)
    generated_instructions: int = 0
    register_reads: List[Tuple[str, int]] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """Serialized upper bound: controller + DRAM + compute.

        The dual-module performance model in
        :mod:`repro.enmc.simulator` overlaps these; the functional
        trace keeps them separate so tests can assert each pool.
        """
        return (
            self.controller_cycles
            + self.dram_cycles
            + self.screener_cycles
            + self.executor_cycles
            + self.sfu_cycles
        )

    def count(self, opcode: Opcode) -> int:
        return self.opcode_counts.get(opcode.name, 0)


class ENMCController:
    """Instruction decode and dispatch for one rank's ENMC logic."""

    def __init__(self, config: ENMCConfig, memory: Optional[MemoryImage] = None):
        self.config = config
        self.memory = memory or MemoryImage()
        self.buffers = BufferSet(config.screener_buffer_bytes)
        self.screener = ScreenerUnit(config, self.buffers)
        self.executor = ExecutorUnit(config, self.buffers)
        self.registers: Dict[RegisterId, int] = {reg: 0 for reg in RegisterId}
        self._explicit_filter_base = False
        self._dram = AnalyticDRAMModel(
            config.timing, channels=1, ranks_per_channel=1
        )

    # ------------------------------------------------------------------
    def _dram_cycles_for(self, num_bytes: float) -> float:
        """Stream ``num_bytes`` from this rank, in ENMC logic cycles."""
        if num_bytes <= 0:
            return 0.0
        estimate = self._dram.stream(num_bytes)
        return estimate.cycles / self.config.dram_cycles_per_logic_cycle

    def _threshold(self) -> float:
        """The preloaded filter threshold (fixed-point register).

        Stored as a signed 16.16 fixed-point value in the 64-bit reg.
        """
        raw = self.registers[RegisterId.THRESHOLD]
        if raw >= 1 << 63:
            raw -= 1 << 64
        return raw / 65536.0

    @staticmethod
    def encode_threshold(value: float) -> int:
        """Host-side helper: float → the THRESHOLD register encoding."""
        raw = int(round(value * 65536.0))
        if raw < 0:
            raw += 1 << 64
        return raw

    # ------------------------------------------------------------------
    def execute(self, program: Program) -> ExecutionTrace:
        """Run ``program`` to completion; returns the trace."""
        trace = ExecutionTrace()
        filter_base = 0
        for instruction in program:
            trace.instructions_executed += 1
            trace.controller_cycles += 1
            name = instruction.opcode.name
            trace.opcode_counts[name] = trace.opcode_counts.get(name, 0) + 1
            filter_base = self._dispatch(instruction, trace, filter_base)
        return trace

    def _dispatch(
        self, instruction: Instruction, trace: ExecutionTrace, filter_base: int
    ) -> int:
        if isinstance(instruction, Init):
            self.registers[instruction.register] = instruction.value
            if instruction.register is RegisterId.FILTER_BASE:
                # Explicit tile addressing (batched programs) overrides
                # the implicit sequential-tile accumulation.
                self._explicit_filter_base = True
            return filter_base

        if isinstance(instruction, Query):
            value = self.registers[instruction.register]
            trace.register_reads.append((instruction.register.name, value))
            return filter_base

        if isinstance(instruction, Load):
            array, bits = self.memory.fetch(instruction.address)
            self.buffers[instruction.buffer].write(array)
            trace.dram_bytes += array.size * bits / 8.0
            trace.dram_cycles += self._dram_cycles_for(array.size * bits / 8.0)
            trace.dram_activations += math.ceil(
                array.size * bits / 8.0 / self.config.timing.row_bytes
            )
            return filter_base

        if isinstance(instruction, Store):
            buffer = self.buffers[instruction.buffer]
            self.memory.store(instruction.address, buffer.data)
            num_bytes = buffer.occupancy_bytes
            trace.dram_bytes += num_bytes
            trace.dram_cycles += self._dram_cycles_for(num_bytes)
            return filter_base

        if isinstance(instruction, Move):
            source = self.buffers[instruction.source]
            self.buffers[instruction.destination].write(source.data)
            return filter_base

        if isinstance(instruction, Compute):
            return self._dispatch_compute(instruction, trace, filter_base)

        if isinstance(instruction, Filter):
            base = (
                self.registers[RegisterId.FILTER_BASE]
                if self._explicit_filter_base
                else filter_base
            )
            batch_id = self.registers[RegisterId.BATCH_ID]
            result = self.screener.filter(self._threshold(), base_index=base)
            trace.screener_cycles += result.cycles
            trace.candidate_indices.extend(result.indices.tolist())
            trace.tagged_candidates.extend(
                (batch_id, int(idx)) for idx in result.indices
            )
            self.registers[RegisterId.CANDIDATE_COUNT] = len(trace.candidate_indices)
            # The instruction generator turns filtered indices into
            # Executor candidate work (Section 5.2: "The instruction
            # generator receives the indices of classification
            # candidates from the Screener ... and generates the
            # corresponding instruction for candidate-only computation").
            if self.registers[RegisterId.WEIGHT_BASE]:
                self._generate_candidate_work(result.indices, trace)
            # Consume the tile: advance the base and clear the PSUM for
            # the next tile's accumulation.
            tile_rows = self.buffers[BufferId.PSUM_INT4].data.size
            self.buffers[BufferId.PSUM_INT4].clear()
            return filter_base + tile_rows

        if isinstance(instruction, SpecialFunction):
            trace.sfu_cycles += self.executor.special_function(instruction.opcode)
            return filter_base

        if isinstance(instruction, Barrier) or isinstance(instruction, Nop):
            return filter_base

        if isinstance(instruction, Return):
            output = self.buffers[BufferId.OUTPUT]
            if not output.empty:
                trace.outputs.append(output.data.copy())
                output.clear()
            return filter_base

        if isinstance(instruction, Clear):
            self.buffers.clear_all()
            for register in self.registers:
                self.registers[register] = 0
            self._explicit_filter_base = False
            return 0

        raise TypeError(f"cannot execute {type(instruction).__name__}")

    def _generate_candidate_work(
        self, indices: np.ndarray, trace: ExecutionTrace
    ) -> None:
        """Execute generator-issued candidate-only computation.

        For each candidate index the Executor gathers the bias-augmented
        weight row ``[W_i | b_i]`` from DRAM and dots it with the
        bias-augmented feature ``[h | 1]`` bound at FEATURE_BASE.  The
        256 B Executor buffers are time-multiplexed over ``d``-length
        rows in 64-float chunks; the chunking shows up as extra
        controller cycles and DRAM bursts, while the functional result
        is the full dot product.
        """
        feature_base = self.registers[RegisterId.FEATURE_BASE]
        feature, _ = self.memory.fetch(feature_base)
        weight_base = self.registers[RegisterId.WEIGHT_BASE]
        row_elements = self.registers[RegisterId.HIDDEN_DIM]
        if row_elements == 0:
            raise RuntimeError("HIDDEN_DIM register not initialized")
        row_stride = row_elements * 4
        chunk = self.buffers[BufferId.FEATURE_FP32].capacity_elements
        chunks_per_row = math.ceil(row_elements / chunk)

        for index in indices.tolist():
            address = weight_base + index * row_stride
            row, bits = self.memory.fetch(address)
            row_bytes = row.size * bits / 8.0
            trace.dram_bytes += row_bytes
            trace.dram_cycles += self._dram_cycles_for(row_bytes)
            trace.dram_activations += 1  # candidate rows are scattered
            trace.executor_cycles += self.executor.mac.cycles_for(row.size)
            # Generated LDR/MUL_ADD pairs per chunk plus one MOVE.
            generated = 2 * chunks_per_row + 1
            trace.generated_instructions += generated
            trace.controller_cycles += generated
            value = float(row @ feature)
            trace.exact_results.append((index, value))
            trace.tagged_results.append(
                (self.registers[RegisterId.BATCH_ID], index, value)
            )

    def _dispatch_compute(
        self, instruction: Compute, trace: ExecutionTrace, filter_base: int
    ) -> int:
        opcode = instruction.opcode
        if opcode is Opcode.MUL_ADD_INT4:
            trace.screener_cycles += self.screener.multiply_accumulate()
        elif opcode is Opcode.MUL_ADD_FP32:
            trace.executor_cycles += self.executor.multiply_accumulate()
        else:
            # Plain elementwise ADD/MUL between two buffers.
            a = self.buffers[instruction.buffer_a]
            b = self.buffers[instruction.buffer_b]
            if a.data.shape != b.data.shape:
                raise RuntimeError(
                    f"{opcode.name} shape mismatch {a.data.shape} vs {b.data.shape}"
                )
            result = a.data + b.data if "ADD" in opcode.name else a.data * b.data
            a.write(result)
            lanes = (
                self.config.int4_macs
                if instruction.buffer_a.is_integer
                else self.config.fp32_macs
            )
            cycles = max(1, -(-a.data.size // lanes))
            if instruction.buffer_a.is_integer:
                trace.screener_cycles += cycles
            else:
                trace.executor_cycles += cycles
        return filter_base
