"""The ENMC DIMM microarchitecture (paper Section 5, Table 3).

Two complementary models:

* **Functional** — :class:`ENMCDimm` executes real ENMC instruction
  streams (from :mod:`repro.compiler`) against buffer/MAC/SFU models,
  byte-accurate against the numpy algorithm; used to validate the
  compiler and ISA.
* **Performance** — :class:`ENMCSimulator` computes cycle counts for
  paper-size workloads using the MAC-array throughput model and the
  analytic DRAM model, with the Screener/Executor running in parallel
  as the dual-module design intends.
"""

from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.buffers import Buffer, BufferSet
from repro.enmc.mac import MACArray, SpecialFunctionUnit
from repro.enmc.screener_unit import ScreenerUnit
from repro.enmc.executor_unit import ExecutorUnit
from repro.enmc.controller import ENMCController, ExecutionTrace
from repro.enmc.dimm import ENMCDimm
from repro.enmc.simulator import ENMCSimulator, PhaseBreakdown, SimulationResult
from repro.enmc.pipeline_sim import (
    DualModulePipeline,
    PipelineResult,
    TileTrace,
    TileWork,
)
from repro.enmc.trace_driven import TraceReplayResult, replay_kernel_on_dram

__all__ = [
    "ENMCConfig",
    "DEFAULT_CONFIG",
    "Buffer",
    "BufferSet",
    "MACArray",
    "SpecialFunctionUnit",
    "ScreenerUnit",
    "ExecutorUnit",
    "ENMCController",
    "ExecutionTrace",
    "ENMCDimm",
    "ENMCSimulator",
    "PhaseBreakdown",
    "SimulationResult",
    "DualModulePipeline",
    "PipelineResult",
    "TileWork",
    "TileTrace",
    "replay_kernel_on_dram",
    "TraceReplayResult",
]
