"""The Screener unit: INT4 MAC array + threshold filter (Section 5.2).

"The Screener processes the approximate screening phase ... with
fixed-point precision.  We put two input buffers (feature buffer and
screening weight buffer), a fixed-point MAC array, a PSUM buffer, a
threshold filter, and an instruction translator in the Screener."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.enmc.buffers import BufferSet
from repro.enmc.config import ENMCConfig
from repro.enmc.mac import MACArray
from repro.isa.opcodes import BufferId


@dataclass
class FilterResult:
    """Indices the comparator array kept, plus its cycle cost."""

    indices: np.ndarray
    cycles: int


class ScreenerUnit:
    """Fixed-point screening over on-DIMM buffers."""

    def __init__(self, config: ENMCConfig, buffers: BufferSet):
        self.config = config
        self.buffers = buffers
        self.mac = MACArray(lanes=config.int4_macs, bits=config.screener_bits)
        self.busy_cycles = 0
        self.filtered_candidates: List[int] = []

    # ------------------------------------------------------------------
    def multiply_accumulate(self) -> int:
        """MUL_ADD_INT4: psum += weight_tile @ feature.

        The weight buffer holds a ``(rows, k_tile)`` INT4 tile and the
        feature buffer the matching ``k_tile`` slice; results accumulate
        into the (wide) INT4-path PSUM buffer.  Returns occupancy cycles.
        """
        weight = self.buffers[BufferId.WEIGHT_INT4].data
        feature = self.buffers[BufferId.FEATURE_INT4].data
        if weight.ndim != 2:
            raise RuntimeError(f"weight tile must be 2-D, got shape {weight.shape}")
        if feature.shape[-1] != weight.shape[1]:
            raise RuntimeError(
                f"feature length {feature.shape[-1]} != tile width {weight.shape[1]}"
            )
        partial = self.mac.matvec(weight, np.atleast_1d(feature))
        psum_buffer = self.buffers[BufferId.PSUM_INT4]
        if psum_buffer.empty:
            psum_buffer.write(partial)
        else:
            psum_buffer.write(psum_buffer.data + partial)
        cycles = self.mac.cycles_for(weight.size)
        self.busy_cycles += cycles
        return cycles

    def filter(self, threshold: float, base_index: int = 0) -> FilterResult:
        """FILTER: comparator array over the PSUM buffer.

        Keeps indices whose value exceeds ``threshold``; ``base_index``
        offsets tile-local indices into the global category space.  The
        comparator array matches MAC width, so one pass costs
        ``ceil(rows / lanes)`` cycles.
        """
        psum = self.buffers[BufferId.PSUM_INT4].data
        kept = np.flatnonzero(psum > threshold) + base_index
        self.buffers[BufferId.INDEX].write(kept.astype(np.int64))
        cycles = max(1, -(-psum.size // self.config.int4_macs))
        self.busy_cycles += cycles
        self.filtered_candidates.extend(kept.tolist())
        return FilterResult(indices=kept, cycles=cycles)
