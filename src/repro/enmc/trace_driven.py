"""Trace-driven DRAM validation: compiled kernels → cycle-level DDR4.

The paper "builds a cycle-accurate simulator for the ENMC DIMM that
interfaces with Ramulator to derive the DRAM timing information".  This
module closes the same loop in our stack: it converts a
:class:`~repro.compiler.lowering.CompiledKernel`'s memory behaviour
(tile LDRs from the program + candidate row gathers from an executed
trace) into a burst-level request stream and replays it on the
cycle-accurate :class:`~repro.dram.dram_system.DRAMSystem` — giving a
measured DRAM cycle count for real compiled programs, used to validate
the analytic per-rank timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.dram.dram_system import DRAMStats, DRAMSystem
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import ExecutionTrace
from repro.isa.opcodes import RegisterId

if TYPE_CHECKING:  # avoid the enmc ↔ compiler import cycle at runtime
    from repro.compiler.lowering import CompiledKernel


@dataclass(frozen=True)
class TraceReplayResult:
    """Cycle-model DRAM stats plus derived per-phase byte counts."""

    stats: DRAMStats
    screen_bytes: float
    gather_bytes: float

    @property
    def dram_cycles(self) -> int:
        return self.stats.cycles

    def logic_cycles(self, config: ENMCConfig) -> float:
        """DRAM cycles converted to ENMC logic cycles."""
        return self.stats.cycles / config.dram_cycles_per_logic_cycle


def replay_kernel_on_dram(
    kernel: "CompiledKernel",
    trace: ExecutionTrace,
    config: ENMCConfig = DEFAULT_CONFIG,
) -> TraceReplayResult:
    """Replay a compiled kernel's memory behaviour on the cycle model.

    The request stream is one rank's view (channels=1, ranks=1 —
    matching the per-rank analytic model):

    * every program LDR becomes a sequential burst stream of the tile's
      stored bytes at its bound address;
    * every generator-issued candidate row becomes a gather of the
      row's bytes at its weight-table address.
    """
    system = DRAMSystem(config.timing, channels=1, ranks_per_channel=1)

    screen_bytes = 0.0
    for load in kernel.program.dram_loads:
        array, bits = kernel.memory.fetch(load.address)
        num_bytes = max(64, int(array.size * bits / 8.0))
        system.stream_read(load.address % (1 << 30), num_bytes)
        screen_bytes += num_bytes

    # Candidate gathers: reconstruct addresses from the trace's exact
    # results using the kernel's weight layout registers.
    weight_base = None
    row_elements = None
    for instruction in kernel.program:
        from repro.isa.instruction import Init

        if isinstance(instruction, Init):
            if instruction.register is RegisterId.WEIGHT_BASE:
                weight_base = instruction.value
            elif instruction.register is RegisterId.HIDDEN_DIM:
                row_elements = instruction.value

    gather_bytes = 0.0
    if weight_base is not None and row_elements:
        row_bytes = row_elements * 4
        for index, _ in trace.exact_results:
            address = (weight_base + index * row_bytes) % (1 << 30)
            system.gather_read(
                range(address, address + row_bytes, 64)
            )
            gather_bytes += row_bytes

    stats = system.drain()
    return TraceReplayResult(
        stats=stats, screen_bytes=screen_bytes, gather_bytes=gather_bytes
    )
