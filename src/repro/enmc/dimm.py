"""The ENMC DIMM: rank-level logic instances behind a DDR4 interface."""

from __future__ import annotations

from typing import List, Optional

from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import ENMCController, ExecutionTrace, MemoryImage
from repro.isa.encoding import EncodedCommand, decode
from repro.isa.program import Program


class ENMCDimm:
    """One ENMC DIMM (functional model).

    The host addresses one rank's logic at a time (instructions are
    routed by the rank bits of the PRECHARGE's bank-group/CS lines);
    programs for different ranks run independently.  The functional
    model instantiates one controller per rank sharing nothing, exactly
    like the hardware.
    """

    def __init__(self, config: ENMCConfig = DEFAULT_CONFIG,
                 memory: Optional[MemoryImage] = None):
        self.config = config
        self.memory = memory or MemoryImage()
        self.ranks: List[ENMCController] = [
            ENMCController(config, self.memory)
            for _ in range(config.ranks_per_channel)
        ]

    # ------------------------------------------------------------------
    def execute(self, program: Program, rank: int = 0) -> ExecutionTrace:
        """Run a program on one rank's ENMC logic."""
        if not 0 <= rank < len(self.ranks):
            raise ValueError(f"rank {rank} out of range (0..{len(self.ranks) - 1})")
        return self.ranks[rank].execute(program)

    def execute_wire(self, commands: List[EncodedCommand], rank: int = 0) -> ExecutionTrace:
        """Run a wire-format command stream (tests the full encode path)."""
        instructions = [decode(command) for command in commands]
        return self.execute(Program(instructions), rank=rank)

    # ------------------------------------------------------------------
    @property
    def regular_memory_capable(self) -> bool:
        """ENMC DIMMs still serve normal requests (Section 5.1): a
        PRECHARGE with all row bits low passes through untouched —
        encoded commands are guaranteed non-zero by the ISA layer."""
        return True
