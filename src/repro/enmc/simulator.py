"""The ENMC performance model (the paper's Fig. 13/14/15 engine).

For paper-scale workloads (hundreds of MB of weights per inference),
per-instruction functional simulation is unnecessary: the DIMM runs a
regular tiled dataflow whose time is governed by four resource pools —
rank-level DRAM bandwidth, INT4 MAC throughput, FP32 MAC throughput,
and the SFU.  The simulator composes the analytic DRAM model with the
MAC occupancy models and the dual-module pipeline:

* the Screener streams the quantized screening weights from its own
  rank's devices, overlapping DRAM bursts with INT4 MACs (take the
  max);
* the Executor gathers candidate weight rows and runs FP32 MACs
  (again max of memory and compute), then the SFU normalizes;
* Screener and Executor run in parallel (Section 5.1): in steady state
  a tile's candidate phase overlaps the next tile's screening, so one
  batch costs ``max(screen, execute)`` plus a fill term.

Work is sharded across ``channels × ranks`` ENMC instances, each
owning a ``1/(C·R)`` slice of the category space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.metrics import ClassificationCost
from repro.data.registry import Workload
from repro.dram.analytic import AnalyticDRAMModel
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds spent in each resource pool for one phase."""

    memory_seconds: float
    compute_seconds: float

    @property
    def seconds(self) -> float:
        """Streamed execution: memory and compute overlap."""
        return max(self.memory_seconds, self.compute_seconds)

    @property
    def bound(self) -> str:
        return "memory" if self.memory_seconds >= self.compute_seconds else "compute"


@dataclass(frozen=True)
class SimulationResult:
    """Timing and traffic accounting for one batched inference."""

    screen: PhaseBreakdown
    execute: PhaseBreakdown
    sfu_seconds: float
    batch_size: int
    #: DRAM traffic per rank (bytes), split by phase precision.
    int_bytes_per_rank: float
    fp_bytes_per_rank: float
    activations_per_rank: float
    int_macs_per_rank: float
    fp_macs_per_rank: float
    pipeline_tiles: int

    @property
    def seconds(self) -> float:
        """End-to-end classification latency for the batch.

        Dual-module pipelining overlaps screening tile ``i+1`` with
        candidate execution of tile ``i``; the non-overlapped residue is
        one tile of the shorter phase (pipeline fill).
        """
        longer = max(self.screen.seconds, self.execute.seconds)
        shorter = min(self.screen.seconds, self.execute.seconds)
        fill = shorter / max(self.pipeline_tiles, 1)
        return longer + fill + self.sfu_seconds

    @property
    def serialized_seconds(self) -> float:
        """No dual-module overlap (the homogeneous-NMP execution style)."""
        return self.screen.seconds + self.execute.seconds + self.sfu_seconds

    @property
    def seconds_per_sample(self) -> float:
        return self.seconds / self.batch_size


class ENMCSimulator:
    """Analytic performance model of an ENMC system."""

    def __init__(self, config: ENMCConfig = DEFAULT_CONFIG):
        self.config = config
        # One rank's private view of its devices.
        self._rank_dram = AnalyticDRAMModel(
            config.timing, channels=1, ranks_per_channel=1
        )

    # ------------------------------------------------------------------
    def simulate(
        self,
        workload: Workload,
        projection_dim: Optional[int] = None,
        candidates_per_row: int = 32,
        batch_size: int = 1,
        unique_candidate_fraction: float = 1.0,
        tile_rows: int = 512,
    ) -> SimulationResult:
        """Simulate one batched classification on the ENMC system.

        ``projection_dim`` defaults to the paper's operating point
        ``d/4``; ``candidates_per_row`` is the post-filter budget ``m``.
        """
        check_positive("batch_size", batch_size)
        check_positive("candidates_per_row", candidates_per_row)
        config = self.config
        l, d = workload.num_categories, workload.hidden_dim
        k = projection_dim or max(1, d // 4)
        shards = config.total_ranks
        l_shard = math.ceil(l / shards)

        # ---------------- screening phase (per rank) ----------------
        # The host projects h → Ph once (k·d MACs, trivial on the CPU)
        # and ships the k-vector with the instruction packet, so each
        # rank streams only its W̃ shard and runs l_shard·k INT4 MACs.
        screen_bytes = l_shard * k * config.screener_bits / 8.0
        screen_mem = self._rank_dram.stream(screen_bytes).seconds
        screen_macs = batch_size * l_shard * k
        screen_compute = screen_macs / config.int4_macs_per_second()
        screen = PhaseBreakdown(screen_mem, screen_compute)

        # ---------------- candidate phase (per rank) ----------------
        total_candidates = batch_size * candidates_per_row
        unique_rows = min(
            total_candidates * unique_candidate_fraction, float(l)
        )
        rows_per_rank = max(1, math.ceil(unique_rows / shards))
        row_bytes = d * 4.0
        exec_mem = self._rank_dram.gather(rows_per_rank, row_bytes).seconds
        exec_macs = math.ceil(total_candidates / shards) * d
        exec_compute = exec_macs / config.fp32_macs_per_second()
        execute = PhaseBreakdown(exec_mem, exec_compute)

        # ---------------- SFU ----------------
        # The mixed output vector normalizes on-DIMM for the rank's
        # shard; only candidate entries need fresh exponentials, the
        # approximate entries reuse screening-phase results.
        sfu_elements = math.ceil(total_candidates / shards) + batch_size
        sfu_cycles = math.ceil(sfu_elements / config.sfu_elements_per_cycle)
        sfu_seconds = sfu_cycles / config.frequency_hz

        tiles = max(1, math.ceil(l_shard / tile_rows))
        return SimulationResult(
            screen=screen,
            execute=execute,
            sfu_seconds=sfu_seconds,
            batch_size=batch_size,
            int_bytes_per_rank=screen_bytes,
            fp_bytes_per_rank=rows_per_rank * row_bytes,
            activations_per_rank=(
                self._rank_dram.stream(screen_bytes).activations + rows_per_rank
            ),
            int_macs_per_rank=screen_macs,
            fp_macs_per_rank=exec_macs,
            pipeline_tiles=tiles,
        )

    # ------------------------------------------------------------------
    def simulate_full_classification(
        self, workload: Workload, batch_size: int = 1
    ) -> SimulationResult:
        """Baseline: the DIMM computes the *full* classification (no
        screening) — what a naive NMP offload would do."""
        config = self.config
        l, d = workload.num_categories, workload.hidden_dim
        shards = config.total_ranks
        l_shard = math.ceil(l / shards)

        weight_bytes = l_shard * d * 4.0
        mem = self._rank_dram.stream(weight_bytes).seconds
        macs = batch_size * l_shard * d
        compute = macs / config.fp32_macs_per_second()
        phase = PhaseBreakdown(mem, compute)
        sfu_cycles = math.ceil(l_shard / config.sfu_elements_per_cycle)
        return SimulationResult(
            screen=PhaseBreakdown(0.0, 0.0),
            execute=phase,
            sfu_seconds=sfu_cycles / config.frequency_hz,
            batch_size=batch_size,
            int_bytes_per_rank=0.0,
            fp_bytes_per_rank=weight_bytes,
            activations_per_rank=self._rank_dram.stream(weight_bytes).activations,
            int_macs_per_rank=0.0,
            fp_macs_per_rank=macs,
            pipeline_tiles=1,
        )

    # ------------------------------------------------------------------
    def cost_for(
        self,
        workload: Workload,
        projection_dim: Optional[int] = None,
        candidates_per_row: int = 32,
        batch_size: int = 1,
    ) -> ClassificationCost:
        """The algorithm-level cost this simulation corresponds to."""
        from repro.core.metrics import cost_of_screened_classification

        d = workload.hidden_dim
        return cost_of_screened_classification(
            num_categories=workload.num_categories,
            hidden_dim=d,
            projection_dim=projection_dim or max(1, d // 4),
            candidates_per_row=candidates_per_row,
            batch_size=batch_size,
            quantization_bits=self.config.screener_bits,
        )
