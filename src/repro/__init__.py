"""repro: a reproduction of ENMC (MICRO 2021).

ENMC — Extreme Near-Memory Classification via Approximate Screening —
is an algorithm/architecture co-design.  This package provides:

* :mod:`repro.core` — the approximate screening algorithm (projection,
  distillation-trained screener, candidate selection, mixed output).
* :mod:`repro.baselines` — SVD-softmax and FGD approximation baselines.
* :mod:`repro.models`, :mod:`repro.data`, :mod:`repro.metrics` — the
  evaluation workloads (language modeling, translation, recommendation).
* :mod:`repro.dram`, :mod:`repro.isa`, :mod:`repro.enmc`,
  :mod:`repro.compiler`, :mod:`repro.host`, :mod:`repro.nmp`,
  :mod:`repro.energy` — the hardware substrate: a cycle-level DDR4 model,
  the ENMC instruction set and DIMM microarchitecture, the host model,
  and the NMP baselines (NDA, Chameleon, TensorDIMM).
* :mod:`repro.experiments` — one module per paper table/figure.

Quickstart::

    import numpy as np
    from repro.core import FullClassifier, train_screener, ScreeningConfig
    from repro.core import ApproximateScreeningClassifier

    rng = np.random.default_rng(0)
    classifier = FullClassifier.random(num_categories=5000, hidden_dim=128, rng=rng)
    features = rng.standard_normal((256, 128))
    screener = train_screener(classifier, features,
                              config=ScreeningConfig(projection_dim=32), rng=rng)
    model = ApproximateScreeningClassifier(classifier, screener, num_candidates=64)
    probabilities = model.predict_proba(features[:4])
"""

from repro._version import __version__

__all__ = ["__version__"]
