"""Shared experiment plumbing: quality harness and speedup accounting.

Accuracy experiments run on :func:`repro.data.registry.scaled_task`
instances (materialized matrices, scaled category counts); performance
and energy experiments use the analytic models at full paper sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    FullClassifier,
    ScreeningConfig,
    train_screener,
)
from repro.core.metrics import cost_of_screened_classification
from repro.core.screener import ScreeningModule
from repro.data.registry import Workload, scaled_task
from repro.data.synthetic import SyntheticTask
from repro.host.cpu import CPUModel, XEON_8280
from repro.metrics import bleu, perplexity_from_proba, precision_at_k
from repro.utils.rng import rng_from_labels


@dataclass
class PreparedWorkload:
    """A scaled task with a trained screener, ready for evaluation."""

    workload: Workload
    task: SyntheticTask
    screener: ScreeningModule
    train_features: np.ndarray

    @property
    def classifier(self) -> FullClassifier:
        return self.task.classifier

    def screened(self, num_candidates: int) -> ApproximateScreeningClassifier:
        selector = CandidateSelector(mode="top_m", num_candidates=num_candidates)
        return ApproximateScreeningClassifier(
            self.classifier, self.screener, selector=selector
        )


def prepare_workload(
    workload: Workload,
    scale: int = 32,
    max_categories: int = 16_384,
    train_samples: int = 768,
    screener_scale: float = 0.25,
    quantization_bits: Optional[int] = 4,
) -> PreparedWorkload:
    """Materialize a scaled task and distill its screener."""
    task = scaled_task(workload, scale=scale, max_categories=max_categories)
    rng = rng_from_labels(workload.abbr, "experiment")
    features = task.sample_features(train_samples, rng=rng)
    config = ScreeningConfig.from_scale(
        workload.hidden_dim, scale=screener_scale, quantization_bits=quantization_bits
    )
    screener = train_screener(
        task.classifier, features, config=config, solver="lstsq", rng=rng
    )
    return PreparedWorkload(
        workload=workload, task=task, screener=screener, train_features=features
    )


# ----------------------------------------------------------------------
# quality metrics per application
# ----------------------------------------------------------------------
def lm_quality(
    prepared: PreparedWorkload,
    predict_proba: Callable[[np.ndarray], np.ndarray],
    num_tokens: int = 256,
) -> float:
    """Perplexity on held-out synthetic tokens (lower is better)."""
    rng = rng_from_labels(prepared.workload.abbr, "lm-eval")
    features, labels = prepared.task.sample(num_tokens, rng=rng)
    return perplexity_from_proba(predict_proba(features), labels)


def nmt_quality(
    prepared: PreparedWorkload,
    predict: Callable[[np.ndarray], np.ndarray],
    num_sentences: int = 24,
    sentence_len: int = 12,
) -> float:
    """BLEU of the method's greedy decode against the full classifier's
    greedy decode on the same feature sequences (quality preservation)."""
    rng = rng_from_labels(prepared.workload.abbr, "nmt-eval")
    references: List[List[int]] = []
    candidates: List[List[int]] = []
    for _ in range(num_sentences):
        features = prepared.task.sample_features(sentence_len, rng=rng)
        references.append(prepared.classifier.predict(features).tolist())
        candidates.append(np.asarray(predict(features)).tolist())
    return bleu(candidates, references, smoothing=1.0)


def reco_quality(
    prepared: PreparedWorkload,
    scores_fn: Callable[[np.ndarray], np.ndarray],
    num_samples: int = 128,
    k: int = 1,
) -> float:
    """Precision@k against the synthetic task's true labels."""
    rng = rng_from_labels(prepared.workload.abbr, "reco-eval")
    features, labels = prepared.task.sample(num_samples, rng=rng)
    return precision_at_k(scores_fn(features), labels, k=k)


# ----------------------------------------------------------------------
# speedup accounting
# ----------------------------------------------------------------------
def cpu_speedup_for_screening(
    workload: Workload,
    candidates_per_row: int,
    cpu: CPUModel = XEON_8280,
    batch_size: int = 1,
    projection_dim: Optional[int] = None,
    quantization_bits: int = 4,
) -> float:
    """CPU-time speedup of screened vs. full classification at *paper*
    category counts (Fig. 11 x-axis).  Quality is measured on the
    scaled task; cost is measured at full scale — candidate budgets are
    expressed as fractions so both sides agree."""
    d = workload.hidden_dim
    full = cpu.full_classification_seconds(
        workload.num_categories, d, batch_size
    )
    cost = cost_of_screened_classification(
        num_categories=workload.num_categories,
        hidden_dim=d,
        projection_dim=projection_dim or max(1, d // 4),
        candidates_per_row=candidates_per_row,
        batch_size=batch_size,
        quantization_bits=quantization_bits,
    )
    screened = cpu.screened_classification_seconds(
        cost, gathers=min(batch_size * candidates_per_row, workload.num_categories)
    )
    return full / screened


def geometric_mean(values) -> float:
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        raise ValueError("no values")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(array))))


def candidates_at_fraction(workload: Workload, task_categories: int,
                           fraction: float) -> Dict[str, int]:
    """Candidate counts at ``fraction`` for the scaled task (quality)
    and the full workload (cost)."""
    return {
        "task": max(1, int(round(task_categories * fraction))),
        "paper": max(1, int(round(workload.num_categories * fraction))),
    }
