"""Fig. 14 — energy breakdown vs TensorDIMM and TensorDIMM-Large.

Energy splits into DRAM static, DRAM access, and computation & control
logic, normalized to TensorDIMM.  Per the paper's setup, TensorDIMM and
TensorDIMM-Large "need to operate over the full classification weight"
(their homogeneous pipelines run the full-precision workload), while
ENMC performs INT4 low-dimensional screening plus candidates-only
compute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.data.registry import Workload, iter_workloads
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.energy.params import DEFAULT_ENERGY_PARAMS, EnergyParams
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator
from repro.experiments.common import geometric_mean
from repro.nmp import TENSORDIMM_LARGE_MODEL, TENSORDIMM_MODEL
from repro.utils.tables import render_table

#: Table 4 logic power per design (W); Large scales the VPU 4×.
_LOGIC_WATTS = {"ENMC": 0.2854, "TensorDIMM": 0.3035, "TensorDIMM-Large": 0.980}


@dataclass(frozen=True)
class EnergyRow:
    workload: str
    scheme: str
    breakdown: EnergyBreakdown

    @property
    def total(self) -> float:
        return self.breakdown.total


def run(
    workloads: Optional[Sequence[Workload]] = None,
    batch_size: int = 1,
    config: ENMCConfig = DEFAULT_CONFIG,
    params: EnergyParams = DEFAULT_ENERGY_PARAMS,
) -> List[EnergyRow]:
    simulator = ENMCSimulator(config)
    selected = list(workloads) if workloads is not None else list(iter_workloads())
    rows: List[EnergyRow] = []
    total_ranks = config.total_ranks
    for workload in selected:
        m = workload.default_candidates
        result = simulator.simulate(
            workload, candidates_per_row=m, batch_size=batch_size
        )
        enmc_energy = EnergyModel(
            params, total_ranks, logic_watts=_LOGIC_WATTS["ENMC"]
        ).energy_of(result)
        rows.append(EnergyRow(workload.abbr, "ENMC", enmc_energy))

        for model in (TENSORDIMM_MODEL, TENSORDIMM_LARGE_MODEL):
            sim = model.simulate_full(workload, batch_size=batch_size)
            energy = EnergyModel(
                params,
                model.total_ranks,
                logic_watts=_LOGIC_WATTS[model.name],
            ).energy_of(sim, seconds=sim.serialized_seconds)
            rows.append(EnergyRow(workload.abbr, model.name, energy))
    return rows


def summarize(rows: List[EnergyRow]) -> Dict[str, float]:
    """Geomean energy reduction of ENMC vs each TensorDIMM variant."""
    by_workload: Dict[str, Dict[str, float]] = {}
    for row in rows:
        by_workload.setdefault(row.workload, {})[row.scheme] = row.total
    out = {}
    for scheme in ("TensorDIMM", "TensorDIMM-Large"):
        ratios = [
            values[scheme] / values["ENMC"]
            for values in by_workload.values()
            if scheme in values and "ENMC" in values
        ]
        out[scheme] = geometric_mean(ratios)
    return out


def report(**kwargs) -> str:
    rows = run(**kwargs)
    references = {
        row.workload: row.breakdown
        for row in rows
        if row.scheme == "TensorDIMM"
    }
    table = []
    for row in rows:
        normalized = row.breakdown.normalized_to(references[row.workload])
        table.append(
            (
                row.workload, row.scheme,
                round(normalized.dram_static, 4),
                round(normalized.dram_access, 4),
                round(normalized.compute_and_control, 4),
                round(normalized.total, 4),
            )
        )
    body = render_table(
        ["Workload", "Scheme", "DRAM static", "DRAM access",
         "Compute+Ctrl", "Total"],
        table,
        title="Fig. 14: energy breakdown normalized to TensorDIMM",
    )
    summary = summarize(rows)
    lines = [body, ""]
    for scheme, ratio in summary.items():
        lines.append(f"ENMC energy reduction vs {scheme}: {ratio:.1f}×")
    return "\n".join(lines)
