"""Fig. 15 — end-to-end scalability on the synthetic large datasets.

Same XMLCNN front-end throughout; classification scales through
670K → 1M → 10M → 100M categories.  End-to-end performance of
TensorDIMM, TensorDIMM-Large and ENMC is normalized to the CPU
baseline; the ENMC advantage grows with category count because it
streams the lightweight screening weights and never spills
intermediates back to DRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.data.registry import SCALABILITY_ABBRS, get_workload
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator
from repro.host.cpu import CPUModel, XEON_8280
from repro.host.system import _front_end_seconds
from repro.models.base import FrontEndReport
from repro.nmp import TENSORDIMM_LARGE_MODEL, TENSORDIMM_MODEL
from repro.utils.tables import render_table

#: The XMLCNN front-end accounting at full size (embedding excluded:
#: it is part of the lookup phase shared by every scheme).
XMLCNN_FRONT_END = FrontEndReport(parameters=4_500_000, flops=180e6)


@dataclass(frozen=True)
class ScalabilityRow:
    workload: str
    num_categories: int
    #: end-to-end seconds per scheme
    seconds: Dict[str, float]

    def speedup(self, scheme: str) -> float:
        return self.seconds["CPU"] / self.seconds[scheme]


def run(
    abbrs: Sequence[str] = SCALABILITY_ABBRS,
    batch_size: int = 1,
    cpu: CPUModel = XEON_8280,
    config: ENMCConfig = DEFAULT_CONFIG,
) -> List[ScalabilityRow]:
    simulator = ENMCSimulator(config)
    rows: List[ScalabilityRow] = []
    for abbr in abbrs:
        workload = get_workload(abbr)
        m = workload.default_candidates
        front = _front_end_seconds(cpu, XMLCNN_FRONT_END, workload, batch_size)
        seconds: Dict[str, float] = {}
        seconds["CPU"] = front + cpu.full_classification_seconds(
            workload.num_categories, workload.hidden_dim, batch_size
        )
        for model in (TENSORDIMM_MODEL, TENSORDIMM_LARGE_MODEL):
            sim = model.simulate_full(workload, batch_size=batch_size)
            seconds[model.name] = front + sim.serialized_seconds
        enmc = simulator.simulate(
            workload, candidates_per_row=m, batch_size=batch_size
        )
        seconds["ENMC"] = front + enmc.seconds
        rows.append(
            ScalabilityRow(
                workload=abbr,
                num_categories=workload.num_categories,
                seconds=seconds,
            )
        )
    return rows


def report(**kwargs) -> str:
    rows = run(**kwargs)
    schemes = [s for s in rows[0].seconds if s != "CPU"]
    table = [
        tuple([r.workload, r.num_categories]
              + [round(r.speedup(s), 2) for s in schemes])
        for r in rows
    ]
    body = render_table(
        ["Workload", "Categories"] + [f"{s} (×)" for s in schemes],
        table,
        title="Fig. 15: end-to-end speedup over CPU (XMLCNN front-end)",
    )
    lines = [body, "", "ENMC advantage over TensorDIMM by scale:"]
    for row in rows:
        ratio = row.seconds["TensorDIMM"] / row.seconds["ENMC"]
        ratio_large = row.seconds["TensorDIMM-Large"] / row.seconds["ENMC"]
        lines.append(
            f"  {row.workload:12s} vs TD {ratio:5.2f}×, vs TD-Large {ratio_large:5.2f}×"
        )
    from repro.utils.charts import bar_chart

    lines.append("")
    lines.append("ENMC end-to-end speedup over CPU by scale:")
    lines.append(
        bar_chart(
            [row.workload for row in rows],
            [round(row.speedup("ENMC"), 1) for row in rows],
            unit="x",
        )
    )
    return "\n".join(lines)
