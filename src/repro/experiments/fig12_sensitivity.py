"""Fig. 12 — sensitivity of approximate screening.

(a) parameter-reduction scale (``k/d``) sweep: the paper picks 0.25 as
"the good quality preserving" point.
(b) quantization-level sweep: 4-bit fixed point "maintains approximation
as using single floating-point precision".

Quality here is screening-intrinsic: candidate recall@k (does the
screener's candidate set contain the exact top-k) and the relative L2
approximation error, measured on held-out features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import (
    ApproximateScreeningClassifier,
    CandidateSelector,
    ScreeningConfig,
    train_screener,
)
from repro.core.metrics import approximation_error, candidate_recall
from repro.data.registry import Workload, get_workload, scaled_task
from repro.utils.rng import rng_from_labels
from repro.utils.tables import render_table

DEFAULT_SCALES = (0.0625, 0.125, 0.25, 0.5)
DEFAULT_BITS = (2, 4, 8, None)  # None = FP32


@dataclass(frozen=True)
class SensitivityPoint:
    workload: str
    parameter_scale: float
    quantization_bits: Optional[int]
    recall_at_1: float
    recall_at_5: float
    relative_error: float


def _measure(
    workload: Workload,
    scale: float,
    bits: Optional[int],
    task_scale: int,
    candidate_fraction: float = 0.02,
    eval_samples: int = 96,
) -> SensitivityPoint:
    task = scaled_task(workload, scale=task_scale, max_categories=8192)
    rng = rng_from_labels(workload.abbr, "fig12", scale, bits)
    features = task.sample_features(768, rng=rng)
    config = ScreeningConfig.from_scale(
        workload.hidden_dim, scale=scale, quantization_bits=bits
    )
    screener = train_screener(
        task.classifier, features, config=config, solver="lstsq", rng=rng
    )
    m = max(1, int(round(task.num_categories * candidate_fraction)))
    model = ApproximateScreeningClassifier(
        task.classifier, screener,
        selector=CandidateSelector(mode="top_m", num_candidates=m),
    )
    test = task.sample_features(eval_samples, rng=rng)
    output = model(test)
    exact = task.classifier.logits(test)
    return SensitivityPoint(
        workload=workload.abbr,
        parameter_scale=scale,
        quantization_bits=bits,
        recall_at_1=candidate_recall(exact, output, k=1),
        recall_at_5=candidate_recall(exact, output, k=min(5, m)),
        relative_error=approximation_error(exact, output.approximate_logits),
    )


def run_parameter_scales(
    workload_abbr: str = "Transformer-W268K",
    scales: Sequence[float] = DEFAULT_SCALES,
    task_scale: int = 64,
) -> List[SensitivityPoint]:
    """Fig. 12(a): sweep ``k/d`` at the default INT4 quantization."""
    workload = get_workload(workload_abbr)
    return [_measure(workload, s, 4, task_scale) for s in scales]


def run_quantization_levels(
    workload_abbr: str = "Transformer-W268K",
    bits_levels: Sequence[Optional[int]] = DEFAULT_BITS,
    task_scale: int = 64,
) -> List[SensitivityPoint]:
    """Fig. 12(b): sweep quantization at the chosen scale 0.25."""
    workload = get_workload(workload_abbr)
    return [_measure(workload, 0.25, bits, task_scale) for bits in bits_levels]


def run(workload_abbr: str = "Transformer-W268K", task_scale: int = 64):
    return {
        "parameter_scales": run_parameter_scales(workload_abbr, task_scale=task_scale),
        "quantization_levels": run_quantization_levels(
            workload_abbr, task_scale=task_scale
        ),
    }


def report(workload_abbr: str = "Transformer-W268K", task_scale: int = 64) -> str:
    results = run(workload_abbr, task_scale=task_scale)

    def rows(points):
        return [
            (
                p.parameter_scale,
                "FP32" if p.quantization_bits is None else f"INT{p.quantization_bits}",
                round(p.recall_at_1, 4), round(p.recall_at_5, 4),
                round(p.relative_error, 4),
            )
            for p in points
        ]

    a = render_table(
        ["k/d scale", "Precision", "Recall@1", "Recall@5", "Rel. L2 err"],
        rows(results["parameter_scales"]),
        title="Fig. 12(a): parameter-reduction scale sweep (INT4)",
    )
    b = render_table(
        ["k/d scale", "Precision", "Recall@1", "Recall@5", "Rel. L2 err"],
        rows(results["quantization_levels"]),
        title="Fig. 12(b): quantization-level sweep (scale 0.25)",
    )
    return a + "\n\n" + b
