"""Fig. 13 — classification performance across architectures.

ENMC vs CPU / NDA / Chameleon / TensorDIMM at batch sizes 1, 2, 4,
normalized to the vanilla-CPU (full classification) baseline; all
schemes run approximate screening with each workload's tuned candidate
budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.metrics import cost_of_screened_classification
from repro.data.registry import Workload, iter_workloads
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator
from repro.experiments.common import geometric_mean
from repro.host.cpu import CPUModel, XEON_8280
from repro.nmp import (
    CHAMELEON_MODEL,
    NDA_MODEL,
    NMPBaselineModel,
    TENSORDIMM_MODEL,
)
from repro.utils.tables import render_table

DEFAULT_BATCHES = (1, 2, 4)
NMP_BASELINES = (NDA_MODEL, CHAMELEON_MODEL, TENSORDIMM_MODEL)


@dataclass(frozen=True)
class PerformanceRow:
    workload: str
    batch_size: int
    #: seconds per batched inference, per scheme
    seconds: Dict[str, float]

    def speedup(self, scheme: str) -> float:
        return self.seconds["CPU"] / self.seconds[scheme]


def run(
    batch_sizes: Sequence[int] = DEFAULT_BATCHES,
    workloads: Optional[Sequence[Workload]] = None,
    cpu: CPUModel = XEON_8280,
    config: ENMCConfig = DEFAULT_CONFIG,
    baselines: Sequence[NMPBaselineModel] = NMP_BASELINES,
) -> List[PerformanceRow]:
    simulator = ENMCSimulator(config)
    selected = list(workloads) if workloads is not None else list(iter_workloads())
    rows: List[PerformanceRow] = []
    for workload in selected:
        m = workload.default_candidates
        d = workload.hidden_dim
        for batch in batch_sizes:
            seconds: Dict[str, float] = {}
            seconds["CPU"] = cpu.full_classification_seconds(
                workload.num_categories, d, batch
            )
            cost = cost_of_screened_classification(
                workload.num_categories, d, max(1, d // 4), m, batch
            )
            seconds["CPU+AS"] = cpu.screened_classification_seconds(
                cost, gathers=min(batch * m, workload.num_categories)
            )
            for baseline in baselines:
                seconds[baseline.name] = baseline.seconds(
                    workload, candidates_per_row=m, batch_size=batch
                )
            seconds["ENMC"] = simulator.simulate(
                workload, candidates_per_row=m, batch_size=batch
            ).seconds
            rows.append(
                PerformanceRow(workload=workload.abbr, batch_size=batch,
                               seconds=seconds)
            )
    return rows


def summarize(rows: List[PerformanceRow]) -> Dict[str, float]:
    """Geomean speedup over the vanilla CPU per scheme (the paper's
    'average speedup' summary numbers)."""
    schemes = [s for s in rows[0].seconds if s != "CPU"]
    return {
        scheme: geometric_mean(r.speedup(scheme) for r in rows)
        for scheme in schemes
    }


def report(**kwargs) -> str:
    rows = run(**kwargs)
    schemes = list(rows[0].seconds.keys())
    table = [
        tuple([r.workload, r.batch_size]
              + [round(r.speedup(s), 2) for s in schemes if s != "CPU"])
        for r in rows
    ]
    headers = ["Workload", "Batch"] + [f"{s} (×)" for s in schemes if s != "CPU"]
    body = render_table(
        headers, table,
        title="Fig. 13: speedup over vanilla CPU (full classification)",
    )
    summary = summarize(rows)
    lines = [body, "", "Geomean speedups:"]
    for scheme, value in summary.items():
        lines.append(f"  {scheme:12s} {value:8.1f}×")
    enmc = summary["ENMC"]
    for scheme in ("NDA", "Chameleon", "TensorDIMM"):
        if scheme in summary:
            lines.append(f"  ENMC vs {scheme:12s} {enmc / summary[scheme]:6.2f}×")
    return "\n".join(lines)
