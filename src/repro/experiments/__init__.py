"""One module per paper table/figure (see DESIGN.md §4).

Every module exposes ``run(...)`` returning structured row data and
``report(...)`` rendering the same rows the paper plots/tabulates.
``runner.py`` is the ``enmc-experiments`` CLI entry point.
"""

from repro.experiments import (
    fig04_breakdown,
    fig05_motivation,
    fig11_quality,
    fig12_sensitivity,
    fig13_performance,
    fig14_energy,
    fig15_scalability,
    summary,
    table4_budget,
    table5_area_power,
)

ALL_EXPERIMENTS = {
    "fig4": fig04_breakdown,
    "fig5": fig05_motivation,
    "fig11": fig11_quality,
    "fig12": fig12_sensitivity,
    "fig13": fig13_performance,
    "fig14": fig14_energy,
    "fig15": fig15_scalability,
    "table4": table4_budget,
    "table5": table5_area_power,
    "summary": summary,
}

__all__ = ["ALL_EXPERIMENTS"]
