"""CLI: print any or all paper tables/figures (``enmc-experiments``)."""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import sys
import time
from typing import List, Optional


def _jsonable(value):
    """Best-effort conversion of experiment results to JSON types."""
    import numpy as np

    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="enmc-experiments",
        description="Regenerate the ENMC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help=f"which to run (default: all); choices: {sorted(ALL_EXPERIMENTS)}",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=None,
        help="directory to write <name>.txt reports and <name>.json data",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, module in ALL_EXPERIMENTS.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{name:8s} {doc}")
        return 0

    selected = args.experiments or sorted(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        print(f"choices: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2

    if args.output is not None:
        args.output.mkdir(parents=True, exist_ok=True)

    for name in selected:
        module = ALL_EXPERIMENTS[name]
        start = time.perf_counter()
        print(f"=== {name} " + "=" * max(0, 66 - len(name)))
        report = module.report()
        print(report)
        print(f"--- {name} done in {time.perf_counter() - start:.1f}s\n")
        if args.output is not None:
            (args.output / f"{name}.txt").write_text(report + "\n")
            data = _jsonable(module.run())
            (args.output / f"{name}.json").write_text(
                json.dumps(data, indent=2) + "\n"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
