"""Fig. 4 — parameter/operation breakdown: classification vs the rest.

"For the three NLP tasks, classifiers consume a significant amount of
parameters and operations.  When classification category sizes scale to
millions as in large-scale recommendation, classification layers become
the major bottleneck."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.data.registry import Workload, iter_workloads
from repro.models import build_front_end
from repro.utils.tables import render_table


@dataclass(frozen=True)
class BreakdownRow:
    workload: str
    classification_params: int
    front_end_params: int
    classification_flops: float
    front_end_flops: float

    @property
    def param_fraction(self) -> float:
        total = self.classification_params + self.front_end_params
        return self.classification_params / total

    @property
    def flop_fraction(self) -> float:
        total = self.classification_flops + self.front_end_flops
        return self.classification_flops / total


def _front_end_report(workload: Workload):
    """Full-size front-end accounting.

    The input embedding is scaled to the true *input* vocabulary: for
    LM/NMT that equals the label vocabulary (tied embeddings), but
    recommendation models embed word tokens, not the 670K-100M label
    space — their input vocabulary stays a few hundred thousand words.
    """
    model = build_front_end(workload, vocab_cap=4096, compact=False)
    report = model.report()
    if workload.application == "Recommendation":
        input_vocab = 500_000
    else:
        input_vocab = workload.num_categories
    true_embed = input_vocab * model.embedding.dim
    parameters = report.parameters - model.embedding.parameters + true_embed
    return parameters, report.flops * workload.decode_steps


def run(include_synthetic: bool = True) -> List[BreakdownRow]:
    rows = []
    for workload in iter_workloads(include_synthetic=include_synthetic):
        front_params, front_flops = _front_end_report(workload)
        classify_params = workload.num_categories * (workload.hidden_dim + 1)
        classify_flops = 2.0 * classify_params * workload.decode_steps
        rows.append(
            BreakdownRow(
                workload=workload.abbr,
                classification_params=classify_params,
                front_end_params=front_params,
                classification_flops=classify_flops,
                front_end_flops=front_flops,
            )
        )
    return rows


@dataclass(frozen=True)
class TimeBreakdownRow:
    """Execution-time share of classification on the CPU baseline
    (the introduction's characterization: "the final classification
    layer consumes 50% of overall model inference time" for the
    Transformer LM)."""

    workload: str
    front_end_seconds: float
    classification_seconds: float

    @property
    def classification_share(self) -> float:
        total = self.front_end_seconds + self.classification_seconds
        return self.classification_seconds / total


def run_time_breakdown(include_synthetic: bool = False) -> List[TimeBreakdownRow]:
    """End-to-end CPU time split per workload."""
    from repro.host.cpu import XEON_8280
    from repro.host.system import _front_end_seconds
    from repro.models.base import FrontEndReport

    rows = []
    for workload in iter_workloads(include_synthetic=include_synthetic):
        front_params, front_flops = _front_end_report(workload)
        report_obj = FrontEndReport(
            parameters=front_params,
            flops=front_flops / max(workload.decode_steps, 1),
        )
        front = _front_end_seconds(XEON_8280, report_obj, workload, 1)
        classify = XEON_8280.full_classification_seconds(
            workload.num_categories, workload.hidden_dim
        ) * workload.decode_steps
        rows.append(
            TimeBreakdownRow(
                workload=workload.abbr,
                front_end_seconds=front,
                classification_seconds=classify,
            )
        )
    return rows


def report(include_synthetic: bool = True) -> str:
    rows = run(include_synthetic=include_synthetic)
    table = [
        (
            r.workload,
            f"{r.classification_params / 1e6:.1f}M",
            f"{r.front_end_params / 1e6:.1f}M",
            f"{100 * r.param_fraction:.1f}%",
            f"{100 * r.flop_fraction:.1f}%",
        )
        for r in rows
    ]
    body = render_table(
        ["Workload", "Classifier params", "Front-end params",
         "Classifier param share", "Classifier op share"],
        table,
        title="Fig. 4: parameter/operation breakdown "
              "(classification vs non-classification)",
    )
    time_rows = run_time_breakdown()
    times = render_table(
        ["Workload", "Front-end (ms)", "Classification (ms)",
         "Classification share"],
        [
            (
                r.workload,
                round(1e3 * r.front_end_seconds, 3),
                round(1e3 * r.classification_seconds, 3),
                f"{100 * r.classification_share:.1f}%",
            )
            for r in time_rows
        ],
        title="Intro characterization: CPU inference-time split",
    )
    return body + "\n\n" + times
