"""Fig. 5 — motivation: footprint/latency scaling and the roofline.

(a) classifier memory footprint and CPU execution time scale linearly
with the category count; (b) screening and candidate-only
classification sit far left of the CPU's roofline ridge (memory-bound),
unlike the compute-bound front-end networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.metrics import (
    cost_of_full_classification,
    cost_of_screened_classification,
)
from repro.host.cpu import CPUModel, XEON_8280
from repro.utils.tables import render_table
from repro.utils.units import bytes_to_gib

DEFAULT_CATEGORY_SWEEP = (
    10_000, 33_278, 100_000, 267_744, 670_091, 1_000_000,
    10_000_000, 100_000_000,
)


@dataclass(frozen=True)
class ScalingRow:
    num_categories: int
    hidden_dim: int
    footprint_bytes: int
    cpu_seconds: float


@dataclass(frozen=True)
class RooflinePoint:
    kernel: str
    batch_size: int
    operational_intensity: float
    attained_gflops: float
    bound: str


def run_scaling(
    categories: Sequence[int] = DEFAULT_CATEGORY_SWEEP,
    hidden_dim: int = 512,
    cpu: CPUModel = XEON_8280,
) -> List[ScalingRow]:
    """Fig. 5(a): footprint and CPU time vs category count."""
    rows = []
    for num_categories in categories:
        footprint = 4 * num_categories * hidden_dim
        seconds = cpu.full_classification_seconds(num_categories, hidden_dim)
        rows.append(
            ScalingRow(
                num_categories=num_categories,
                hidden_dim=hidden_dim,
                footprint_bytes=footprint,
                cpu_seconds=seconds,
            )
        )
    return rows


def run_roofline(
    num_categories: int = 267_744,
    hidden_dim: int = 512,
    batch_sizes: Sequence[int] = (1, 2, 4),
    cpu: CPUModel = XEON_8280,
) -> List[RooflinePoint]:
    """Fig. 5(b): roofline points for the three kernel classes."""
    points = []
    for batch in batch_sizes:
        full = cost_of_full_classification(num_categories, hidden_dim, batch)
        screen = cost_of_screened_classification(
            num_categories, hidden_dim, hidden_dim // 4,
            candidates_per_row=0.0, batch_size=batch,
        )
        candidates = cost_of_screened_classification(
            num_categories, hidden_dim, 1,
            candidates_per_row=num_categories * 0.02, batch_size=batch,
        )
        # The front-end proxy: a dense stack whose weights stay resident
        # in the LLC across tokens/sequence positions, so each weight
        # byte is reused hundreds of times (blocked GEMM) — intensity
        # lands right of the ridge, i.e. compute-bound (paper Fig. 5b).
        front_flops = 2.0 * 40e6 * 128 * batch  # 128 sequence positions
        front_bytes = 40e6 * 4  # weights stream from DRAM once
        for name, cost in (
            ("full-classification", full),
            ("approximate-screening", screen),
            ("candidate-only", candidates),
        ):
            intensity, attained = cpu.roofline_point(cost)
            points.append(
                RooflinePoint(
                    kernel=name,
                    batch_size=batch,
                    operational_intensity=intensity,
                    attained_gflops=attained / 1e9,
                    bound="memory" if intensity < cpu.ridge_intensity else "compute",
                )
            )
        front_intensity = front_flops / front_bytes
        front_seconds = max(
            front_flops / cpu.peak_flops, front_bytes / cpu.stream_bandwidth
        )
        points.append(
            RooflinePoint(
                kernel="front-end-dnn",
                batch_size=batch,
                operational_intensity=front_intensity,
                attained_gflops=front_flops / front_seconds / 1e9,
                bound="memory" if front_intensity < cpu.ridge_intensity else "compute",
            )
        )
    return points


def report() -> str:
    scaling = run_scaling()
    scaling_table = render_table(
        ["Categories", "Footprint (GiB)", "CPU time (ms)"],
        [
            (r.num_categories, round(bytes_to_gib(r.footprint_bytes), 3),
             round(r.cpu_seconds * 1e3, 3))
            for r in scaling
        ],
        title="Fig. 5(a): classifier footprint and CPU latency vs categories "
              "(hidden=512)",
    )
    roofline = run_roofline()
    roofline_table = render_table(
        ["Kernel", "Batch", "FLOPs/byte", "Attained GFLOP/s", "Bound"],
        [
            (p.kernel, p.batch_size, round(p.operational_intensity, 3),
             round(p.attained_gflops, 2), p.bound)
            for p in roofline
        ],
        title="Fig. 5(b): roofline placement of the major kernels",
    )
    return scaling_table + "\n\n" + roofline_table
