"""Fig. 11 — quality vs. speedup: AS against SVD-softmax and FGD.

For each Table 2 workload, every method is swept over candidate
budgets; quality is measured on the scaled synthetic task (relative to
the full classifier on the same data) and speedup is the CPU-model
ratio of full classification to the method at the *paper's* category
count (budgets expressed as fractions keep the two sides consistent).

Per-application quality metrics match the paper: BLEU (NMT),
perplexity (LM, reported as the ratio method/full so "1.0" means no
degradation), and P@1 (recommendation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines import FGDClassifier, SVDSoftmax
from repro.core import CandidateSelector
from repro.data.registry import Workload, iter_workloads
from repro.experiments.common import (
    PreparedWorkload,
    cpu_speedup_for_screening,
    lm_quality,
    nmt_quality,
    prepare_workload,
    reco_quality,
)
from repro.host.cpu import CPUModel, XEON_8280
from repro.linalg.functional import sigmoid, softmax
from repro.utils.rng import rng_from_labels
from repro.utils.tables import render_table

DEFAULT_FRACTIONS = (0.005, 0.02, 0.05, 0.13)


@dataclass(frozen=True)
class QualityPoint:
    workload: str
    method: str
    candidate_fraction: float
    quality: float
    quality_metric: str
    full_quality: float
    speedup: float

    @property
    def quality_retention(self) -> float:
        """Method quality relative to the exact classifier.

        For perplexity (lower-better) this is full/method; for BLEU and
        P@k (higher-better) it is method/full.  1.0 = no degradation.
        """
        if self.full_quality == 0:
            return 0.0
        if self.quality_metric == "perplexity":
            if self.quality == 0:
                return 0.0
            return self.full_quality / self.quality
        return self.quality / self.full_quality


# ----------------------------------------------------------------------
def _quality_of(
    prepared: PreparedWorkload,
    proba_fn: Callable[[np.ndarray], np.ndarray],
    predict_fn: Callable[[np.ndarray], np.ndarray],
) -> tuple:
    """(quality value, metric name) for the workload's application."""
    application = prepared.workload.application
    if application == "NMT":
        return nmt_quality(prepared, predict_fn), "bleu"
    if application == "NLP":
        return lm_quality(prepared, proba_fn), "perplexity"
    return reco_quality(prepared, proba_fn), "p@1"


def _full_quality(prepared: PreparedWorkload) -> tuple:
    classifier = prepared.classifier

    def proba(features):
        return classifier.predict_proba(features)

    return _quality_of(prepared, proba, classifier.predict)


def _normalizer(prepared: PreparedWorkload):
    if prepared.workload.normalization == "sigmoid":
        return sigmoid
    return lambda logits: softmax(logits, axis=-1)


# ----------------------------------------------------------------------
# per-method evaluation at one candidate budget
# ----------------------------------------------------------------------
def _evaluate_screening(
    prepared: PreparedWorkload, fraction: float, cpu: CPUModel
) -> tuple:
    m_task = max(1, int(round(prepared.classifier.num_categories * fraction)))
    model = prepared.screened(m_task)
    normalize = _normalizer(prepared)
    quality, metric = _quality_of(
        prepared,
        lambda features: normalize(model.forward(features).logits),
        model.predict,
    )
    m_paper = max(1, int(round(prepared.workload.num_categories * fraction)))
    speedup = cpu_speedup_for_screening(prepared.workload, m_paper, cpu=cpu)
    return quality, metric, speedup


def _evaluate_svd(
    prepared: PreparedWorkload, fraction: float, cpu: CPUModel,
    window_fraction: float = 0.125,
) -> tuple:
    classifier = prepared.classifier
    d = classifier.hidden_dim
    window = max(1, int(round(d * window_fraction)))
    m_task = max(1, int(round(classifier.num_categories * fraction)))
    model = SVDSoftmax(
        classifier, window=window,
        selector=CandidateSelector(mode="top_m", num_candidates=m_task),
    )
    normalize = _normalizer(prepared)
    quality, metric = _quality_of(
        prepared,
        lambda features: normalize(model.forward(features).logits),
        model.predict,
    )
    # Paper-scale cost: the d×d transform + l×w preview + m×d refine.
    workload = prepared.workload
    l = workload.num_categories
    m_paper = max(1, int(round(l * fraction)))
    flops = 2.0 * (d * d + l * window + m_paper * d)
    stream_bytes = 4.0 * (d * d + l * window)
    seconds = cpu.kernel_seconds(
        flops=flops, stream_bytes=stream_bytes,
        gathers=m_paper, gather_bytes=4.0 * m_paper * d,
    )
    full = cpu.full_classification_seconds(l, d)
    return quality, metric, full / seconds


def _evaluate_fgd(
    prepared: PreparedWorkload, fraction: float, cpu: CPUModel
) -> tuple:
    classifier = prepared.classifier
    m_task = max(1, int(round(classifier.num_categories * fraction)))
    model = FGDClassifier(
        classifier,
        degree=16,
        beam_width=max(4, min(32, m_task // 4)),
        num_candidates=m_task,
        rng=rng_from_labels(prepared.workload.abbr, "fgd"),
    )
    normalize = _normalizer(prepared)
    quality, metric = _quality_of(
        prepared,
        lambda features: normalize(model.forward(features).logits),
        model.predict,
    )
    # Paper-scale cost: visited count scales ~ log(l) · budget ratio.
    workload = prepared.workload
    l_task = classifier.num_categories
    l = workload.num_categories
    m_paper = max(1, int(round(l * fraction)))
    visited_task = max(model.mean_visited, 1.0)
    visited = visited_task * (np.log(l) / np.log(l_task)) * (m_paper / m_task)
    # Selecting m candidates requires visiting a few× m vertices at
    # minimum; the measured count on a tiny graph under-extrapolates.
    visited = max(visited, 3.0 * m_paper)
    d = workload.hidden_dim
    flops = 2.0 * visited * (d + 2)
    gather_bytes = visited * (4.0 * (d + 2) + 4.0 * model.degree)
    # Graph search is latency-bound: hops are *serial* (each round's
    # frontier depends on the previous round's scores), with only
    # beam-width parallelism inside a round — unlike screening's
    # independent streaming gathers.
    rounds = visited / max(model.beam_width * model.degree, 1)
    seconds = (
        rounds * cpu.gather_latency_s
        + visited * cpu.gather_latency_s / model.beam_width
        + gather_bytes / cpu.stream_bandwidth
        + flops / cpu.peak_flops
        + cpu.invocation_overhead_s
    )
    full = cpu.full_classification_seconds(l, d)
    return quality, metric, full / seconds


_METHODS: Dict[str, Callable] = {
    "AS": _evaluate_screening,
    "SVD": _evaluate_svd,
    "FGD": _evaluate_fgd,
}


# ----------------------------------------------------------------------
def run(
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    workloads: Optional[Sequence[Workload]] = None,
    methods: Sequence[str] = ("AS", "SVD", "FGD"),
    scale: int = 32,
    max_categories: int = 16_384,
    cpu: CPUModel = XEON_8280,
) -> List[QualityPoint]:
    points: List[QualityPoint] = []
    selected = list(workloads) if workloads is not None else list(iter_workloads())
    for workload in selected:
        prepared = prepare_workload(
            workload, scale=scale, max_categories=max_categories
        )
        full_quality, metric = _full_quality(prepared)
        for method in methods:
            evaluate = _METHODS[method]
            for fraction in fractions:
                quality, metric, speedup = evaluate(prepared, fraction, cpu)
                points.append(
                    QualityPoint(
                        workload=workload.abbr,
                        method=method,
                        candidate_fraction=fraction,
                        quality=quality,
                        quality_metric=metric,
                        full_quality=full_quality,
                        speedup=speedup,
                    )
                )
    return points


def report(**kwargs) -> str:
    points = run(**kwargs)
    rows = [
        (
            p.workload, p.method, p.candidate_fraction,
            round(p.quality, 4), p.quality_metric,
            round(p.full_quality, 4),
            round(p.quality_retention, 4), round(p.speedup, 2),
        )
        for p in points
    ]
    body = render_table(
        ["Workload", "Method", "Cand. frac", "Quality", "Metric",
         "Full quality", "Retention", "Speedup vs full CPU"],
        rows,
        title="Fig. 11: quality vs speedup trade-off (AS / SVD / FGD)",
    )
    # Per-workload trade-off scatter: x = speedup, y = retention;
    # marker = method initial (A/S/F) — the paper's panel layout.
    from repro.utils.charts import scatter

    sections = [body]
    for workload in sorted({p.workload for p in points}):
        subset = [p for p in points if p.workload == workload]
        sections.append(
            f"\n{workload}: retention (y) vs speedup (x); "
            "A=AS S=SVD F=FGD"
        )
        sections.append(
            scatter(
                [(p.speedup, p.quality_retention) for p in subset],
                markers=[p.method[0] for p in subset],
                width=48,
                height=10,
            )
        )
    return "\n".join(sections)
