"""Table 5 — ENMC area and power breakdown."""

from __future__ import annotations

from typing import Dict

from repro.energy.area import (
    ENMC_AREA_POWER_BREAKDOWN,
    AreaPower,
    component_fractions,
    enmc_totals,
    render_table5,
)


def run() -> Dict[str, AreaPower]:
    return dict(ENMC_AREA_POWER_BREAKDOWN)


def report() -> str:
    totals = enmc_totals()
    fractions = component_fractions()
    compute_area = (
        fractions["INT4 MAC"][0] + fractions["FP32 MAC"][0]
    )
    buffer_area = (
        fractions["Compute Buffer"][0] + fractions["Control Buffer"][0]
    )
    lines = [
        render_table5(),
        "",
        f"Compute units: {100 * compute_area:.1f}% of area "
        f"(paper: 40.8% incl. overhead allocation)",
        f"Buffers: {100 * buffer_area:.1f}% of area",
        f"Totals: {totals.area_mm2} mm², {totals.power_mw} mW",
    ]
    return "\n".join(lines)
