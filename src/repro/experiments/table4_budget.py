"""Table 4 — NMP designs configured at matched area/power budget."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.energy.area import NMP_BUDGET_TABLE, AreaPower, render_table4


def run() -> Dict[str, Tuple[str, AreaPower]]:
    return dict(NMP_BUDGET_TABLE)


def budget_spread() -> float:
    """Max/min area ratio across designs — the paper matches budgets,
    so this should stay close to 1 (≈1.15 in Table 4)."""
    areas = [ap.area_mm2 for _, ap in NMP_BUDGET_TABLE.values()]
    return max(areas) / min(areas)


def report() -> str:
    return render_table4() + f"\n\nArea spread (max/min): {budget_spread():.3f}"
