"""Headline digest: every paper claim vs. this reproduction's number.

``run()`` executes the (fast, analytic) experiments and assembles the
same paper-vs-measured table EXPERIMENTS.md records, with a per-claim
verdict.  ``enmc-experiments summary`` prints it; the accuracy-side
claims (Fig. 11/12) are included when ``include_quality=True`` (they
materialize matrices and take a minute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.utils.tables import render_table


@dataclass(frozen=True)
class Claim:
    """One paper claim with its measured counterpart."""

    source: str
    claim: str
    paper_value: str
    measured_value: str
    holds: bool


def _check(claims: List[Claim], source: str, claim: str, paper: str,
           measured: float, fmt: str, low: float, high: float) -> None:
    claims.append(
        Claim(
            source=source,
            claim=claim,
            paper_value=paper,
            measured_value=fmt.format(measured),
            holds=low <= measured <= high,
        )
    )


def run(include_quality: bool = False) -> List[Claim]:
    from repro.experiments import (
        fig04_breakdown,
        fig13_performance,
        fig14_energy,
        fig15_scalability,
    )
    from repro.energy.area import enmc_totals

    claims: List[Claim] = []

    # --- motivation -----------------------------------------------------
    time_rows = {
        r.workload: r for r in fig04_breakdown.run_time_breakdown()
    }
    _check(
        claims, "Intro", "Transformer classification time share",
        "~50%", 100 * time_rows["Transformer-W268K"].classification_share,
        "{:.1f}%", 35.0, 65.0,
    )
    from repro.data.registry import get_workload

    _check(
        claims, "Sec. 2.2", "100M-category classifier footprint",
        "~190 GB", get_workload("S100M").classifier_bytes / 1e9,
        "{:.0f} GB", 170.0, 215.0,
    )

    # --- architecture performance (Fig. 13) -----------------------------
    perf = fig13_performance.summarize(fig13_performance.run())
    _check(claims, "Fig. 13", "AS speedup on CPU (avg)",
           "7.3x", perf["CPU+AS"], "{:.1f}x", 3.0, 15.0)
    _check(claims, "Fig. 13", "ENMC speedup over CPU (avg)",
           "56.5x", perf["ENMC"], "{:.1f}x", 30.0, 150.0)
    _check(claims, "Fig. 13", "ENMC vs TensorDIMM",
           "2.7x", perf["ENMC"] / perf["TensorDIMM"], "{:.2f}x", 1.8, 4.5)
    _check(claims, "Fig. 13", "ENMC vs NDA",
           "3.5x", perf["ENMC"] / perf["NDA"], "{:.2f}x", 2.3, 6.0)
    _check(claims, "Fig. 13", "ENMC vs Chameleon",
           "5.6x", perf["ENMC"] / perf["Chameleon"], "{:.2f}x", 3.5, 10.0)

    # --- energy (Fig. 14) -----------------------------------------------
    energy = fig14_energy.summarize(fig14_energy.run())
    _check(claims, "Fig. 14", "Energy reduction vs TensorDIMM",
           "5.0x", energy["TensorDIMM"], "{:.1f}x", 3.0, 20.0)
    _check(claims, "Fig. 14", "Energy reduction vs TensorDIMM-Large",
           "8.4x", energy["TensorDIMM-Large"], "{:.1f}x",
           energy["TensorDIMM"], 25.0)

    # --- scalability (Fig. 15) ------------------------------------------
    rows = fig15_scalability.run()
    ratios = [r.seconds["TensorDIMM"] / r.seconds["ENMC"] for r in rows]
    _check(claims, "Fig. 15", "ENMC/TensorDIMM gap growth (small→large)",
           "2.2x → 7.1x", ratios[-1] / ratios[0], "{:.1f}x growth", 2.0, 20.0)

    # --- area/power (Table 5) -------------------------------------------
    totals = enmc_totals()
    _check(claims, "Table 5", "ENMC total area",
           "0.442 mm^2", totals.area_mm2, "{:.3f} mm^2", 0.441, 0.443)
    _check(claims, "Table 5", "ENMC total power",
           "285.4 mW", totals.power_mw, "{:.1f} mW", 285.3, 285.5)

    # --- algorithm quality (optional: materializes matrices) -------------
    if include_quality:
        from repro.experiments import fig11_quality

        points = fig11_quality.run(
            fractions=(0.01,),
            workloads=[get_workload("GNMT-E32K")],
            scale=64, max_categories=4096, methods=("AS",),
        )
        best = points[0]
        _check(claims, "Fig. 11", "NMT speedup at full BLEU retention",
               "11.8x", best.speedup if best.quality_retention >= 0.99 else 0.0,
               "{:.1f}x", 8.0, 20.0)

    return claims


def report(include_quality: bool = False) -> str:
    claims = run(include_quality=include_quality)
    table = [
        (c.source, c.claim, c.paper_value, c.measured_value,
         "✓" if c.holds else "✗")
        for c in claims
    ]
    body = render_table(
        ["Source", "Claim", "Paper", "Measured", "Holds"],
        table,
        title="Headline digest: paper vs. this reproduction",
    )
    held = sum(c.holds for c in claims)
    return body + f"\n\n{held}/{len(claims)} headline claims reproduced in shape."
