"""The exact extreme classifier (paper Eq. 1-2).

``FullClassifier`` owns the weight matrix ``W ∈ R^{l×d}`` and bias
``b ∈ R^l`` and provides the exact linear transform plus normalization.
It also exposes the *gather* form ``logits_for(indices, h)`` used by
candidates-only computation, where only the selected weight rows are
touched — the operation the ENMC Executor performs in hardware.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.linalg.functional import log_softmax, sigmoid, softmax
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_batch_features, check_positive

#: Normalizations supported by the final layer.  The paper's tasks use
#: softmax (LM/NMT) and sigmoid (multi-label recommendation).
NORMALIZATIONS = ("softmax", "sigmoid")


class FullClassifier:
    """Exact linear classifier ``z = W h + b`` with softmax/sigmoid output."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        normalization: str = "softmax",
    ):
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"weight must be 2-D (l, d), got shape {weight.shape}")
        if normalization not in NORMALIZATIONS:
            raise ValueError(
                f"normalization must be one of {NORMALIZATIONS}, got {normalization!r}"
            )
        self.weight = weight
        if bias is None:
            bias = np.zeros(weight.shape[0])
        self.bias = np.asarray(bias, dtype=np.float64)
        if self.bias.shape != (weight.shape[0],):
            raise ValueError(
                f"bias shape {self.bias.shape} incompatible with l={weight.shape[0]}"
            )
        self.normalization = normalization

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        num_categories: int,
        hidden_dim: int,
        rng: RngLike = None,
        normalization: str = "softmax",
        scale: float = 1.0,
    ) -> "FullClassifier":
        """A Gaussian-initialized classifier (mostly for tests/demos).

        Realistic, calibrated classifiers come from
        :mod:`repro.data.synthetic`.
        """
        check_positive("num_categories", num_categories)
        check_positive("hidden_dim", hidden_dim)
        generator = ensure_rng(rng)
        weight = generator.standard_normal((num_categories, hidden_dim))
        weight *= scale / np.sqrt(hidden_dim)
        bias = generator.standard_normal(num_categories) * 0.01
        return cls(weight, bias, normalization=normalization)

    # ------------------------------------------------------------------
    # shape / cost properties
    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        """The label-space size ``l``."""
        return self.weight.shape[0]

    @property
    def hidden_dim(self) -> int:
        """The feature dimensionality ``d``."""
        return self.weight.shape[1]

    @property
    def nbytes(self) -> int:
        """Parameter footprint at FP32, as deployed (weights + bias)."""
        return (self.weight.size + self.bias.size) * 4

    # ------------------------------------------------------------------
    # forward passes
    # ------------------------------------------------------------------
    def logits(self, features: np.ndarray, workspace=None) -> np.ndarray:
        """Exact pre-normalization scores ``W h + b`` for a batch.

        ``workspace`` is accepted (and unused — the FP64 weights need no
        dequantization scratch) so this surface matches
        :class:`~repro.core.weightstore.QuantizedExactStore` and callers
        can treat both stores polymorphically.
        """
        batch = check_batch_features(features, self.hidden_dim)
        return batch @ self.weight.T + self.bias

    def logits_for(
        self, indices: Sequence[int], features: np.ndarray, workspace=None
    ) -> np.ndarray:
        """Exact scores for selected categories only (candidates-only form).

        Touches only ``len(indices)`` weight rows, mirroring the data
        access of the ENMC Executor.  ``workspace`` is unused here (see
        :meth:`logits`).
        """
        batch = check_batch_features(features, self.hidden_dim)
        index_array = np.asarray(indices, dtype=np.intp)
        if index_array.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {index_array.shape}")
        return batch @ self.weight[index_array].T + self.bias[index_array]

    def candidate_scores(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        batch: np.ndarray,
        workspace=None,
    ) -> np.ndarray:
        """Per-candidate exact scores: one dot product per ``(row, col)``
        pair, flat-aligned with the inputs.

        The gather form the vectorized exact phase uses when candidate
        overlap is too low for the union matmul.  ``workspace`` is
        unused here (see :meth:`logits`).
        """
        return (
            np.einsum("nd,nd->n", self.weight[cols], batch[rows])
            + self.bias[cols]
        )

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized output probabilities (paper Eq. 2)."""
        scores = self.logits(features)
        if self.normalization == "softmax":
            return softmax(scores, axis=-1)
        return sigmoid(scores)

    def log_proba(self, features: np.ndarray) -> np.ndarray:
        """Log-probabilities; only defined for softmax normalization."""
        if self.normalization != "softmax":
            raise ValueError("log_proba requires softmax normalization")
        return log_softmax(self.logits(features), axis=-1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax category per batch row."""
        return np.argmax(self.logits(features), axis=-1)

    def __repr__(self) -> str:
        return (
            f"FullClassifier(l={self.num_categories}, d={self.hidden_dim}, "
            f"normalization={self.normalization!r})"
        )
