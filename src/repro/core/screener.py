"""The screening module ``z̃ = W̃ P h + b̃`` (paper Eq. 3).

The screener is the approximate classifier: a fixed sparse random
projection ``P`` (k×d, ternary) followed by a learned low-dimensional
weight ``W̃ ∈ R^{l×k}`` and bias ``b̃``.  At inference the screener runs
quantized (INT4 by default) to model the ENMC Screener's fixed-point
MAC array.

Inference-path engineering: all per-call derived state (the fake-
quantized weight view, the bias-fused transposed weight, the input
quantizer) is built once and cached on the module, and the hot matmul
folds ``b̃`` into one extra weight column — the same trick the compiler
uses when tiling for the hardware — so one GEMM writes the full score
matrix.  ``compute_dtype`` selects the arithmetic width of that GEMM:
``float64`` (default) preserves the repository's bit-level agreement
with the functional DIMM simulator, ``float32`` halves the memory
traffic of the score plane for serving workloads (the INT4 grid values
are exactly representable either way; only accumulation rounding
differs, far below the quantization error being modeled).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.linalg.projection import SparseRandomProjection
from repro.linalg.quantize import Quantizer
from repro.obs.recorder import NULL_RECORDER
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_batch_features, check_positive

#: Arithmetic widths supported for the screening GEMM.
COMPUTE_DTYPES = (np.float32, np.float64)

#: Canonical column-tile width of the screening GEMM.  Both the dense
#: plane and the blocked streaming path compute scores one fixed,
#: absolute-aligned tile at a time through the *same* ``np.matmul``
#: call, so their results are bit-identical by construction for every
#: streaming block size — BLAS GEMMs are only deterministic for
#: identical call shapes, not across different column slicings (edge
#: kernels and panel splits depend on the operand geometry).  8192
#: float64 columns at batch 256 is a 16 MB tile: L3-sized, wide enough
#: that per-call overhead is negligible against the MACs.
TILE_CATEGORIES = 8192

DtypeLike = Union[str, type, np.dtype]


def _resolve_compute_dtype(dtype: DtypeLike) -> np.dtype:
    resolved = np.dtype(dtype)
    if resolved not in [np.dtype(d) for d in COMPUTE_DTYPES]:
        raise ValueError(
            f"compute_dtype must be float32 or float64, got {resolved}"
        )
    return resolved


@dataclass(frozen=True)
class ScreeningConfig:
    """Hyper-parameters of the screening module.

    ``projection_dim`` is the reduced hidden size ``k``.  The paper's
    chosen operating point is a parameter-reduction scale of 0.25
    (Fig. 12a), i.e. ``k = d / 4``, with 4-bit quantization (Fig. 12b).
    ``quantization_bits=None`` runs the screener in floating point
    (the FP32 point of the Fig. 12b sweep).  ``compute_dtype`` picks
    the arithmetic width of the screening GEMM (see module docstring).
    """

    projection_dim: int
    quantization_bits: Optional[int] = 4
    projection_density: float = 1.0 / 3.0
    compute_dtype: str = "float64"

    def __post_init__(self) -> None:
        check_positive("projection_dim", self.projection_dim)
        if self.quantization_bits is not None:
            check_positive("quantization_bits", self.quantization_bits)
        _resolve_compute_dtype(self.compute_dtype)

    @classmethod
    def from_scale(
        cls,
        hidden_dim: int,
        scale: float = 0.25,
        quantization_bits: Optional[int] = 4,
    ) -> "ScreeningConfig":
        """Build a config from a parameter-reduction scale ``k/d``."""
        check_positive("hidden_dim", hidden_dim)
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        k = max(1, int(round(hidden_dim * scale)))
        return cls(projection_dim=k, quantization_bits=quantization_bits)


class ScreeningModule:
    """The trained screener: projection + reduced-dimension classifier.

    Construct via :func:`repro.core.training.train_screener`, which
    runs Algorithm 1; direct construction is useful for tests and for
    loading saved parameters.
    """

    def __init__(
        self,
        projection: SparseRandomProjection,
        weight: np.ndarray,
        bias: np.ndarray,
        quantization_bits: Optional[int] = 4,
        compute_dtype: DtypeLike = np.float64,
    ):
        weight = np.asarray(weight, dtype=np.float64)
        bias = np.asarray(bias, dtype=np.float64)
        if weight.ndim != 2:
            raise ValueError(f"screener weight must be 2-D (l, k), got {weight.shape}")
        if weight.shape[1] != projection.output_dim:
            raise ValueError(
                f"screener weight k={weight.shape[1]} != projection k="
                f"{projection.output_dim}"
            )
        if bias.shape != (weight.shape[0],):
            raise ValueError(f"bias shape {bias.shape} incompatible with l={weight.shape[0]}")

        self.projection = projection
        self.weight = weight
        self.bias = bias
        self.quantization_bits = quantization_bits
        self._compute_dtype = _resolve_compute_dtype(compute_dtype)
        #: Observability sink for the screening phases (no-op default;
        #: the pipeline propagates its recorder here).
        self.recorder = NULL_RECORDER
        self._refresh_quantized_weight()

    def _refresh_quantized_weight(self) -> None:
        """Re-derive all cached inference state after a weight update."""
        if self.quantization_bits is None:
            self._weight_deq = self.weight
            self._input_quantizer: Optional[Quantizer] = None
        else:
            quantizer = Quantizer(bits=self.quantization_bits, axis=0)
            self._weight_deq = quantizer.fake_quantize(self.weight)
            # One scale per batch row: each inference quantizes its own
            # feature vector independently, as the hardware does.
            self._input_quantizer = Quantizer(bits=self.quantization_bits, axis=0)
        # Bias folded in as one extra column (trailing 1 in the feature)
        # so the hot path is a single GEMM, mirroring the compiler's tile
        # layout.  Stored pre-transposed and contiguous.
        fused = np.empty(
            (self.projection_dim + 1, self.num_categories), dtype=self._compute_dtype
        )
        fused[:-1] = self._weight_deq.T
        fused[-1] = self.bias
        self._fused_weight_t = fused

    # ------------------------------------------------------------------
    # shapes / cost
    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.weight.shape[0]

    @property
    def hidden_dim(self) -> int:
        """Input dimensionality ``d`` (pre-projection)."""
        return self.projection.input_dim

    @property
    def projection_dim(self) -> int:
        """Reduced dimensionality ``k``."""
        return self.projection.output_dim

    @property
    def compute_dtype(self) -> np.dtype:
        """Arithmetic width of the screening GEMM (float32 or float64)."""
        return self._compute_dtype

    def set_compute_dtype(self, dtype: DtypeLike) -> "ScreeningModule":
        """Switch the screening GEMM width and rebuild cached state."""
        self._compute_dtype = _resolve_compute_dtype(dtype)
        self._refresh_quantized_weight()
        return self

    @property
    def nbytes(self) -> float:
        """Deployed parameter bytes: quantized W̃ + FP bias + 2-bit P."""
        bits = self.quantization_bits if self.quantization_bits is not None else 32
        return self.weight.size * bits / 8.0 + self.bias.size * 4 + self.projection.nbytes

    def parameter_scale(self, classifier_hidden_dim: Optional[int] = None) -> float:
        """Parameter count relative to the full classifier (Fig. 12a x-axis)."""
        d = classifier_hidden_dim if classifier_hidden_dim is not None else self.hidden_dim
        return self.weight.size / (self.num_categories * d)

    # ------------------------------------------------------------------
    # forward
    # ------------------------------------------------------------------
    def project(self, features: np.ndarray) -> np.ndarray:
        """Apply ``P`` only (the host-side or on-the-fly projection)."""
        batch = check_batch_features(features, self.hidden_dim)
        return self.projection(batch)

    def prepare_augmented(self, features: np.ndarray, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Quantized, bias-augmented GEMM input ``[q(Ph) | 1]``.

        This is the left operand of every screening GEMM — computed
        once per batch and reused across all column tiles.  ``out``
        lets the streaming engine supply a workspace buffer.
        """
        with self.recorder.span("screen.project_quantize"):
            projected = self.project(features)
            if self._input_quantizer is not None:
                projected = self._input_quantizer.fake_quantize(projected)
        if out is None:
            out = np.empty(
                (projected.shape[0], self.projection_dim + 1),
                dtype=self._compute_dtype,
            )
        out[:, :-1] = projected
        out[:, -1] = 1.0
        return out

    def tile_bounds(self):
        """The canonical ``[start, stop)`` column tiles of this screener.

        Fixed and absolute-aligned (see :data:`TILE_CATEGORIES`): every
        scoring path must enumerate exactly these tiles so the per-tile
        GEMM calls — and therefore the score bits — are identical
        between the dense plane and any blocked traversal.
        """
        l = self.num_categories
        return [
            (start, min(start + TILE_CATEGORIES, l))
            for start in range(0, l, TILE_CATEGORIES)
        ]

    def score_tile(
        self, augmented: np.ndarray, start: int, stop: int, out: np.ndarray
    ) -> np.ndarray:
        """Scores for canonical tile ``[start, stop)`` into ``out``.

        ``(start, stop)`` must be a tile from :meth:`tile_bounds`;
        ``augmented`` comes from :meth:`prepare_augmented`.  Writing
        through ``out`` (contiguous scratch or a dense-plane slice)
        does not change the computed bits.
        """
        np.matmul(augmented, self._fused_weight_t[:, start:stop], out=out)
        return out

    def approximate_logits(self, features: np.ndarray) -> np.ndarray:
        """The screener's approximate scores ``z̃`` for a feature batch.

        When ``quantization_bits`` is set, both the projected features
        and the screener weights pass through fake quantization,
        modeling the INT4 datapath of the hardware Screener.  The
        result dtype is :attr:`compute_dtype`.  Computed per canonical
        column tile (see :data:`TILE_CATEGORIES`) — the same GEMM calls
        the blocked streaming path issues, which is what makes the two
        modes bit-identical.
        """
        augmented = self.prepare_augmented(features)
        scores = np.empty(
            (augmented.shape[0], self.num_categories), dtype=self._compute_dtype
        )
        with self.recorder.span("screen.gemm"):
            for start, stop in self.tile_bounds():
                self.score_tile(augmented, start, stop, out=scores[:, start:stop])
        return scores

    def __call__(self, features: np.ndarray) -> np.ndarray:
        return self.approximate_logits(features)

    def __repr__(self) -> str:
        return (
            f"ScreeningModule(l={self.num_categories}, d={self.hidden_dim}, "
            f"k={self.projection_dim}, bits={self.quantization_bits}, "
            f"compute={self._compute_dtype.name})"
        )


def initialize_screener(
    num_categories: int,
    hidden_dim: int,
    config: ScreeningConfig,
    rng: RngLike = None,
) -> ScreeningModule:
    """An untrained screener with the paper's initialization.

    ``P`` follows standard sparse random projection (Section 4.2); the
    learnable ``W̃``/``b̃`` start at small Gaussian / zero.
    """
    generator = ensure_rng(rng)
    projection = SparseRandomProjection(
        input_dim=hidden_dim,
        output_dim=config.projection_dim,
        density=config.projection_density,
        rng=generator,
    )
    weight = generator.standard_normal((num_categories, config.projection_dim))
    weight *= 1.0 / np.sqrt(config.projection_dim)
    bias = np.zeros(num_categories)
    return ScreeningModule(
        projection,
        weight,
        bias,
        quantization_bits=config.quantization_bits,
        compute_dtype=config.compute_dtype,
    )
