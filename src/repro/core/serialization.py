"""Save/load trained screening modules and classifiers (.npz).

The screener is the artifact a deployment ships (the paper's workflow
trains it offline, then loads it into ENMC status registers and DRAM);
round-tripping it exactly matters because the INT4 grid is derived from
the stored weights.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningModule
from repro.linalg.projection import SparseRandomProjection

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 1


def save_screener(path: PathLike, screener: ScreeningModule) -> None:
    """Serialize a screening module to a compressed .npz file."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.str_("screener"),
        weight=screener.weight,
        bias=screener.bias,
        projection_ternary=screener.projection.ternary,
        projection_density=np.float64(screener.projection.density),
        quantization_bits=np.int64(
            -1 if screener.quantization_bits is None else screener.quantization_bits
        ),
    )


def load_screener(path: PathLike) -> ScreeningModule:
    """Load a screening module saved by :func:`save_screener`."""
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "screener", path)
        projection = SparseRandomProjection.from_ternary(
            data["projection_ternary"], float(data["projection_density"])
        )
        bits = int(data["quantization_bits"])
        return ScreeningModule(
            projection,
            data["weight"],
            data["bias"],
            quantization_bits=None if bits < 0 else bits,
        )


def save_classifier(path: PathLike, classifier: FullClassifier) -> None:
    """Serialize a full classifier to a compressed .npz file."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.str_("classifier"),
        weight=classifier.weight,
        bias=classifier.bias,
        normalization=np.str_(classifier.normalization),
    )


def load_classifier(path: PathLike) -> FullClassifier:
    """Load a classifier saved by :func:`save_classifier`."""
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "classifier", path)
        return FullClassifier(
            data["weight"],
            data["bias"],
            normalization=str(data["normalization"]),
        )


def _check_format(data, expected_kind: str, path: PathLike) -> None:
    if "format_version" not in data or "kind" not in data:
        raise ValueError(f"{path!s} is not a repro-enmc artifact")
    version = int(data["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(
            f"{path!s} uses format version {version}; this build reads "
            f"<= {_FORMAT_VERSION}"
        )
    kind = str(data["kind"])
    if kind != expected_kind:
        raise ValueError(f"{path!s} holds a {kind!r}, expected {expected_kind!r}")
