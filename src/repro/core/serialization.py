"""Save/load trained screening modules and classifiers (.npz).

The screener is the artifact a deployment ships (the paper's workflow
trains it offline, then loads it into ENMC status registers and DRAM);
round-tripping it exactly matters because the INT4 grid is derived from
the stored weights.

Format history
--------------
* **version 1** — ``screener`` and ``classifier`` kinds.  Bug: the
  screener's ``compute_dtype`` was not persisted, so a float32-configured
  screener silently reloaded as float64.
* **version 2** — ``screener`` artifacts carry ``compute_dtype``
  (version-1 files load with the historical float64 default), and the
  ``quantized_classifier`` kind serializes a
  :class:`~repro.core.weightstore.QuantizedExactStore`.  Its codes live
  in a raw ``<stem>.codes.npy`` sidecar next to the ``.npz`` (scales /
  bias / metadata), because a zip member cannot be memory-mapped —
  :func:`load_quantized_store` with ``mmap=True`` maps the sidecar
  read-only so a shard larger than RAM pages in on demand.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningModule
from repro.core.weightstore import QuantizedExactStore
from repro.linalg.projection import SparseRandomProjection

PathLike = Union[str, "os.PathLike[str]"]

_FORMAT_VERSION = 2

#: Historical compute dtype of version-1 screener artifacts (the bug
#: this default preserves compatibility with: compute_dtype was simply
#: not stored, and loads came back float64).
_LEGACY_COMPUTE_DTYPE = "float64"


def save_screener(path: PathLike, screener: ScreeningModule) -> None:
    """Serialize a screening module to a compressed .npz file."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.str_("screener"),
        weight=screener.weight,
        bias=screener.bias,
        projection_ternary=screener.projection.ternary,
        projection_density=np.float64(screener.projection.density),
        quantization_bits=np.int64(
            -1 if screener.quantization_bits is None else screener.quantization_bits
        ),
        compute_dtype=np.str_(screener.compute_dtype.name),
    )


def load_screener(path: PathLike) -> ScreeningModule:
    """Load a screening module saved by :func:`save_screener`.

    Version-1 artifacts predate the persisted ``compute_dtype`` and
    load with the historical float64 default.
    """
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "screener", path)
        projection = SparseRandomProjection.from_ternary(
            data["projection_ternary"], float(data["projection_density"])
        )
        bits = int(data["quantization_bits"])
        compute_dtype = (
            str(data["compute_dtype"])
            if "compute_dtype" in data
            else _LEGACY_COMPUTE_DTYPE
        )
        return ScreeningModule(
            projection,
            data["weight"],
            data["bias"],
            quantization_bits=None if bits < 0 else bits,
            compute_dtype=compute_dtype,
        )


def save_classifier(path: PathLike, classifier: FullClassifier) -> None:
    """Serialize a full classifier to a compressed .npz file."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.str_("classifier"),
        weight=classifier.weight,
        bias=classifier.bias,
        normalization=np.str_(classifier.normalization),
    )


def load_classifier(path: PathLike) -> FullClassifier:
    """Load a classifier saved by :func:`save_classifier`."""
    with np.load(path, allow_pickle=False) as data:
        _check_format(data, "classifier", path)
        return FullClassifier(
            data["weight"],
            data["bias"],
            normalization=str(data["normalization"]),
        )


def _quantized_paths(path: PathLike) -> tuple:
    """``(npz_path, codes_sidecar_path)`` for a quantized-store artifact.

    ``np.savez`` appends ``.npz`` when missing, so the canonical form is
    resolved here once and shared by save and load.
    """
    base = os.fspath(path)
    if not base.endswith(".npz"):
        base += ".npz"
    return base, base[: -len(".npz")] + ".codes.npy"


def save_quantized_store(path: PathLike, store: QuantizedExactStore) -> None:
    """Serialize a block-quantized exact-weight store.

    Writes two files: ``<stem>.npz`` with the small arrays (per-tile
    scales, FP64 bias) and metadata, and ``<stem>.codes.npy`` holding
    the INT8/FP16 codes as a raw ``.npy`` — raw so
    :func:`load_quantized_store` can memory-map it (zip members cannot
    be mapped).
    """
    npz_path, codes_path = _quantized_paths(path)
    np.savez_compressed(
        npz_path,
        format_version=np.int64(_FORMAT_VERSION),
        kind=np.str_("quantized_classifier"),
        store_kind=np.str_(store.kind),
        tile_rows=np.int64(store.tile_rows),
        scales=(
            store.scales
            if store.scales is not None
            else np.empty(0, dtype=np.float64)
        ),
        bias=store.bias,
        normalization=np.str_(store.normalization),
        codes_shape=np.asarray(store.codes.shape, dtype=np.int64),
        codes_dtype=np.str_(store.codes.dtype.name),
    )
    np.save(codes_path, store.codes)


def load_quantized_store(
    path: PathLike, mmap: bool = False
) -> QuantizedExactStore:
    """Load a store saved by :func:`save_quantized_store`.

    ``mmap=True`` maps the codes sidecar read-only instead of reading
    it into memory: accesses page in on demand and the OS keeps only
    the hot tiles resident, so a shard's codes may exceed RAM.  Scores
    are bit-identical either way — the mapping serves the same bytes.
    """
    npz_path, codes_path = _quantized_paths(path)
    with np.load(npz_path, allow_pickle=False) as data:
        _check_format(data, "quantized_classifier", npz_path)
        store_kind = str(data["store_kind"])
        scales = data["scales"] if store_kind == "int8" else None
        bias = data["bias"]
        tile_rows = int(data["tile_rows"])
        normalization = str(data["normalization"])
        codes_shape = tuple(int(n) for n in data["codes_shape"])
        codes_dtype = np.dtype(str(data["codes_dtype"]))
    codes = np.load(codes_path, mmap_mode="r" if mmap else None)
    if codes.shape != codes_shape or codes.dtype != codes_dtype:
        raise ValueError(
            f"{codes_path!s} holds {codes.dtype} array of shape "
            f"{codes.shape}; the artifact metadata expects {codes_dtype} "
            f"{codes_shape} (sidecar does not match its .npz)"
        )
    return QuantizedExactStore(
        codes,
        scales,
        bias,
        kind=store_kind,
        tile_rows=tile_rows,
        normalization=normalization,
    )


def _check_format(data, expected_kind: str, path: PathLike) -> None:
    if "format_version" not in data or "kind" not in data:
        raise ValueError(f"{path!s} is not a repro-enmc artifact")
    version = int(data["format_version"])
    if version > _FORMAT_VERSION:
        raise ValueError(
            f"{path!s} uses format version {version}; this build reads "
            f"<= {_FORMAT_VERSION}"
        )
    kind = str(data["kind"])
    if kind != expected_kind:
        raise ValueError(f"{path!s} holds a {kind!r}, expected {expected_kind!r}")
