"""Candidate selection over screening scores (paper Section 4.2, step 3).

After the screener produces approximate scores ``z̃``, the "threshold
filtering step selects key candidates": either the top-``m`` entries or
every entry above a tuned threshold.  The hardware analogue is the
Screener's comparator array writing indices to the index buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.linalg.topk import calibrate_threshold, select_above_threshold, top_k_indices
from repro.utils.validation import check_positive

SELECTION_MODES = ("top_m", "threshold")


@dataclass
class CandidateSet:
    """Per-batch-row candidate indices produced by screening.

    ``indices`` is a ragged list (threshold mode selects variable
    counts); ``rows`` pairs each index array with its batch row.
    """

    indices: List[np.ndarray]

    @property
    def batch_size(self) -> int:
        return len(self.indices)

    @property
    def counts(self) -> np.ndarray:
        """Number of candidates per batch row."""
        return np.array([idx.size for idx in self.indices])

    @property
    def total(self) -> int:
        """Total candidate computations across the batch."""
        return int(self.counts.sum())

    def union(self) -> np.ndarray:
        """Sorted union of candidate indices across the batch.

        Batched hardware execution gathers the union of rows once per
        batch tile, so this is the weight traffic the Executor sees.
        """
        if not self.indices:
            return np.array([], dtype=np.intp)
        return np.unique(np.concatenate(self.indices))

    def __iter__(self):
        return iter(self.indices)


class CandidateSelector:
    """Selects candidates from screening scores.

    Parameters
    ----------
    mode:
        ``"top_m"`` (fixed budget per row) or ``"threshold"``.
    num_candidates:
        The budget ``m`` for top-m mode; also used by
        :meth:`calibrate` to tune the threshold.
    threshold:
        Score cutoff for threshold mode.  May be ``None`` initially and
        set later via :meth:`calibrate` on validation scores.
    """

    def __init__(
        self,
        mode: str = "top_m",
        num_candidates: int = 32,
        threshold: Optional[float] = None,
    ):
        if mode not in SELECTION_MODES:
            raise ValueError(f"mode must be one of {SELECTION_MODES}, got {mode!r}")
        check_positive("num_candidates", num_candidates)
        self.mode = mode
        self.num_candidates = num_candidates
        self.threshold = threshold

    def calibrate(self, validation_scores: np.ndarray) -> float:
        """Tune the threshold on validation screening scores.

        Picks the cutoff whose average exceedance count equals
        ``num_candidates`` (paper: "the threshold value can be tuned on
        validation sets").  Returns the chosen threshold.
        """
        self.threshold = calibrate_threshold(validation_scores, self.num_candidates)
        return self.threshold

    def select(self, scores: np.ndarray) -> CandidateSet:
        """Apply the selection rule to a batch of screening scores."""
        array = np.asarray(scores, dtype=np.float64)
        if array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2:
            raise ValueError(f"scores must be 1-D or 2-D, got shape {array.shape}")

        if self.mode == "top_m":
            m = min(self.num_candidates, array.shape[1])
            picked = top_k_indices(array, m, sort=False)
            return CandidateSet(indices=[np.sort(row) for row in picked])

        if self.threshold is None:
            raise ValueError(
                "threshold mode requires a threshold; call calibrate() first"
            )
        return CandidateSet(indices=select_above_threshold(array, self.threshold))

    def __repr__(self) -> str:
        return (
            f"CandidateSelector(mode={self.mode!r}, m={self.num_candidates}, "
            f"threshold={self.threshold})"
        )


def merge_candidates(sets: Sequence[CandidateSet]) -> CandidateSet:
    """Concatenate candidate sets from consecutive batches."""
    merged: List[np.ndarray] = []
    for candidate_set in sets:
        merged.extend(candidate_set.indices)
    return CandidateSet(indices=merged)
