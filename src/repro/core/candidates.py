"""Candidate selection over screening scores (paper Section 4.2, step 3).

After the screener produces approximate scores ``z̃``, the "threshold
filtering step selects key candidates": either the top-``m`` entries or
every entry above a tuned threshold.  The hardware analogue is the
Screener's comparator array writing indices to the index buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.linalg.topk import (
    BlockwiseThreshold,
    BlockwiseTopM,
    calibrate_threshold,
    select_above_threshold,
    stable_top_m_indices,
)
from repro.utils.validation import check_positive

SELECTION_MODES = ("top_m", "threshold")


@dataclass
class CandidateSet:
    """Per-batch-row candidate indices produced by screening.

    ``indices`` is a ragged list (threshold mode selects variable
    counts); ``rows`` pairs each index array with its batch row.

    The derived views (``counts``, ``union``, ``flat``) are cached —
    the vectorized pipeline asks for them repeatedly on the hot path.
    Treat a ``CandidateSet`` as immutable once constructed.
    """

    indices: List[np.ndarray]
    _counts: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _union: Optional[np.ndarray] = field(
        default=None, init=False, repr=False, compare=False
    )
    _flat: Optional[Tuple[np.ndarray, np.ndarray]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @classmethod
    def from_flat(cls, counts: np.ndarray, cols: np.ndarray) -> "CandidateSet":
        """Rebuild per-row index lists from the :meth:`flat` layout.

        ``counts[i]`` is row ``i``'s candidate count and ``cols`` holds
        all candidate columns concatenated in row order — the compact
        form a serving worker ships back to the host.  Round-trips
        exactly: ``CandidateSet.from_flat(cs.counts, cs.flat()[1])``
        equals ``cs`` row for row.
        """
        counts = np.asarray(counts, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        if int(counts.sum()) != cols.size:
            raise ValueError(
                f"counts sum to {int(counts.sum())} but {cols.size} columns given"
            )
        candidate_set = cls(
            indices=np.split(cols, np.cumsum(counts)[:-1]) if counts.size else []
        )
        candidate_set._counts = counts
        return candidate_set

    @property
    def batch_size(self) -> int:
        return len(self.indices)

    @property
    def counts(self) -> np.ndarray:
        """Number of candidates per batch row."""
        if self._counts is None:
            self._counts = np.array([idx.size for idx in self.indices])
        return self._counts

    @property
    def total(self) -> int:
        """Total candidate computations across the batch."""
        return int(self.counts.sum())

    def union(self) -> np.ndarray:
        """Sorted union of candidate indices across the batch.

        Batched hardware execution gathers the union of rows once per
        batch tile, so this is the weight traffic the Executor sees.
        """
        if self._union is None:
            if not self.indices:
                self._union = np.array([], dtype=np.intp)
            else:
                self._union = np.unique(np.concatenate(self.indices))
        return self._union

    def flat(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(rows, cols)`` of every candidate as flat aligned arrays.

        This is the scatter layout the vectorized exact phase consumes:
        ``mixed[rows, cols] = exact_values`` touches every candidate in
        one fancy-indexed assignment instead of a per-row Python loop.
        """
        if self._flat is None:
            if not self.indices:
                empty = np.array([], dtype=np.intp)
                self._flat = (empty, empty.copy())
            else:
                rows = np.repeat(np.arange(len(self.indices)), self.counts)
                cols = np.concatenate(self.indices).astype(np.intp, copy=False)
                self._flat = (rows, cols)
        return self._flat

    def __iter__(self):
        return iter(self.indices)


class CandidateSelector:
    """Selects candidates from screening scores.

    Parameters
    ----------
    mode:
        ``"top_m"`` (fixed budget per row) or ``"threshold"``.
    num_candidates:
        The budget ``m`` for top-m mode; also used by
        :meth:`calibrate` to tune the threshold.
    threshold:
        Score cutoff for threshold mode.  May be ``None`` initially and
        set later via :meth:`calibrate` on validation scores.
    """

    def __init__(
        self,
        mode: str = "top_m",
        num_candidates: int = 32,
        threshold: Optional[float] = None,
    ):
        if mode not in SELECTION_MODES:
            raise ValueError(f"mode must be one of {SELECTION_MODES}, got {mode!r}")
        check_positive("num_candidates", num_candidates)
        self.mode = mode
        self.num_candidates = num_candidates
        self.threshold = threshold

    def calibrate(self, validation_scores: np.ndarray) -> float:
        """Tune the threshold on validation screening scores.

        Picks the cutoff whose average exceedance count equals
        ``num_candidates`` (paper: "the threshold value can be tuned on
        validation sets").  Returns the chosen threshold.
        """
        self.threshold = calibrate_threshold(validation_scores, self.num_candidates)
        return self.threshold

    def select(self, scores: np.ndarray) -> CandidateSet:
        """Apply the selection rule to a batch of screening scores."""
        array = np.asarray(scores)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        if array.ndim == 1:
            array = array[None, :]
        if array.ndim != 2:
            raise ValueError(f"scores must be 1-D or 2-D, got shape {array.shape}")

        if self.mode == "top_m":
            m = min(self.num_candidates, array.shape[1])
            # Deterministic tie-break (score desc, index asc): the same
            # total order the blocked streaming reducer maintains, so
            # dense and streaming selections agree bit for bit even on
            # tied INT4 scores.
            picked = stable_top_m_indices(array, m)
            return CandidateSet(indices=list(picked))

        if self.threshold is None:
            raise ValueError(
                "threshold mode requires a threshold; call calibrate() first"
            )
        return CandidateSet(indices=select_above_threshold(array, self.threshold))

    def make_block_reducer(self, batch: int, num_categories: int, workspace=None, dtype=np.float64):
        """A blockwise reducer equivalent to :meth:`select`.

        Streaming the score plane through the reducer block by block
        (any partition) and finalizing yields the same candidates, in
        the same order, as :meth:`select` on the dense plane.
        """
        if self.mode == "top_m":
            m = min(self.num_candidates, num_categories)
            return BlockwiseTopM(batch, m, workspace=workspace, dtype=dtype)
        if self.threshold is None:
            raise ValueError(
                "threshold mode requires a threshold; call calibrate() first"
            )
        return BlockwiseThreshold(
            batch, self.threshold, workspace=workspace, dtype=dtype
        )

    def __repr__(self) -> str:
        return (
            f"CandidateSelector(mode={self.mode!r}, m={self.num_candidates}, "
            f"threshold={self.threshold})"
        )


def merge_candidates(sets: Sequence[CandidateSet]) -> CandidateSet:
    """Concatenate candidate sets from consecutive batches."""
    merged: List[np.ndarray] = []
    for candidate_set in sets:
        merged.extend(candidate_set.indices)
    return CandidateSet(indices=merged)
