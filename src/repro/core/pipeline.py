"""End-to-end approximate-screening inference (paper Fig. 6).

``ApproximateScreeningClassifier`` composes the pieces:

1. screening — the quantized screener computes approximate scores
   ``z̃`` for all ``l`` categories;
2. filtering — a :class:`CandidateSelector` picks the key candidates;
3. candidates-only computation — the full classifier recomputes exact
   scores for the candidates only;
4. mixing — the final pre-normalization vector keeps the approximate
   values everywhere except the candidate positions, which get the
   accurate values (Fig. 6, step 5).

Scale correction: the screener is trained to match the full logits in
L2, but INT4 quantization introduces a per-batch scale drift between
approximate and exact entries.  Mixing raw values is exactly what the
hardware does, so we do the same; the candidate set is what protects
top-K quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningModule
from repro.linalg.functional import sigmoid, softmax, taylor_softmax
from repro.utils.validation import check_batch_features


@dataclass
class ScreenedOutput:
    """Everything produced by one screened inference pass.

    ``logits`` is the mixed approximate/accurate score matrix;
    ``candidates`` records which entries are accurate.  ``exact_count``
    is the number of exact weight rows gathered (the quantity that
    drives computation and DRAM-traffic savings).
    """

    logits: np.ndarray
    approximate_logits: np.ndarray
    candidates: CandidateSet

    @property
    def batch_size(self) -> int:
        return self.logits.shape[0]

    @property
    def num_categories(self) -> int:
        return self.logits.shape[1]

    @property
    def exact_count(self) -> int:
        return self.candidates.total

    @property
    def exact_fraction(self) -> float:
        """Fraction of (batch × category) outputs computed exactly."""
        return self.exact_count / self.logits.size


class ApproximateScreeningClassifier:
    """The paper's candidates-only classifier (screen → filter → exact → mix)."""

    def __init__(
        self,
        classifier: FullClassifier,
        screener: ScreeningModule,
        selector: Optional[CandidateSelector] = None,
        num_candidates: int = 32,
        softmax_taylor_order: Optional[int] = None,
    ):
        if screener.num_categories != classifier.num_categories:
            raise ValueError(
                f"screener covers {screener.num_categories} categories, classifier "
                f"has {classifier.num_categories}"
            )
        if screener.hidden_dim != classifier.hidden_dim:
            raise ValueError(
                f"screener hidden dim {screener.hidden_dim} != classifier "
                f"{classifier.hidden_dim}"
            )
        self.classifier = classifier
        self.screener = screener
        self.selector = selector or CandidateSelector(
            mode="top_m", num_candidates=num_candidates
        )
        #: When set, softmax uses the Executor SFU's Taylor-approximated
        #: exponential of this order instead of exact exp.
        self.softmax_taylor_order = softmax_taylor_order

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """Run the full screened pipeline on a feature batch.

        Exact recomputation is per-row (the faithful dataflow); see
        :meth:`forward_gathered` for the vectorized union-gather
        variant, which is numerically identical but faster in numpy for
        large batches.
        """
        batch = check_batch_features(features, self.hidden_dim)
        approx = self.screener.approximate_logits(batch)
        candidates = self.selector.select(approx)

        mixed = approx.copy()
        for row, indices in enumerate(candidates):
            if indices.size == 0:
                continue
            exact = self.classifier.logits_for(indices, batch[row])
            mixed[row, indices] = exact[0]
        return ScreenedOutput(
            logits=mixed, approximate_logits=approx, candidates=candidates
        )

    __call__ = forward

    def forward_gathered(self, features: np.ndarray) -> ScreenedOutput:
        """Batched exact phase over the *union* of candidate rows.

        Gathers each candidate weight row once per batch (how batched
        hardware executes) and computes all rows' exact scores in one
        matmul; each row's mixed output still only takes its own
        candidates.  Numerically identical to :meth:`forward`.
        """
        batch = check_batch_features(features, self.hidden_dim)
        approx = self.screener.approximate_logits(batch)
        candidates = self.selector.select(approx)

        mixed = approx.copy()
        union = candidates.union()
        if union.size:
            # (batch, union) exact scores in one gathered matmul.
            exact = self.classifier.logits_for(union, batch)
            position = {int(idx): pos for pos, idx in enumerate(union)}
            for row, indices in enumerate(candidates):
                if indices.size == 0:
                    continue
                cols = [position[int(idx)] for idx in indices]
                mixed[row, indices] = exact[row, cols]
        return ScreenedOutput(
            logits=mixed, approximate_logits=approx, candidates=candidates
        )

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized probabilities from the mixed score vector."""
        output = self.forward(features)
        if self.classifier.normalization == "sigmoid":
            return sigmoid(output.logits)
        if self.softmax_taylor_order is not None:
            return taylor_softmax(output.logits, order=self.softmax_taylor_order)
        return softmax(output.logits, axis=-1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax category per row (always inside the candidate set by
        construction when the screener is reasonable, but taken over
        the mixed vector exactly as the hardware would)."""
        return np.argmax(self.forward(features).logits, axis=-1)

    def top_k(self, features: np.ndarray, k: int) -> np.ndarray:
        """Top-k categories per row from the mixed scores (beam search /
        P@k consumers)."""
        from repro.linalg.topk import top_k_indices

        return top_k_indices(self.forward(features).logits, k, sort=True)

    def __repr__(self) -> str:
        return (
            f"ApproximateScreeningClassifier(l={self.num_categories}, "
            f"d={self.hidden_dim}, k={self.screener.projection_dim}, "
            f"selector={self.selector!r})"
        )
