"""End-to-end approximate-screening inference (paper Fig. 6).

``ApproximateScreeningClassifier`` composes the pieces:

1. screening — the quantized screener computes approximate scores
   ``z̃`` for all ``l`` categories;
2. filtering — a :class:`CandidateSelector` picks the key candidates;
3. candidates-only computation — the full classifier recomputes exact
   scores for the candidates only;
4. mixing — the final pre-normalization vector keeps the approximate
   values everywhere except the candidate positions, which get the
   accurate values (Fig. 6, step 5).

Scale correction: the screener is trained to match the full logits in
L2, but INT4 quantization introduces a per-batch scale drift between
approximate and exact entries.  Mixing raw values is exactly what the
hardware does, so we do the same; the candidate set is what protects
top-K quality.

Execution modes: :meth:`ApproximateScreeningClassifier.forward`
defaults to the fully vectorized engine — the exact phase runs as one
gathered computation over the batch's candidate union (or a flat
row-wise gather when candidates barely overlap) and scatters results
with a single fancy-indexed assignment.  ``faithful=True`` keeps the
original per-row reference loop; the two are numerically identical
(tested) because they share the screening and selection stages and
differ only in how the exact values are computed and written.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.screener import TILE_CATEGORIES, ScreeningModule
from repro.core.weightstore import QuantizedExactStore
from repro.linalg.functional import sigmoid, softmax, taylor_softmax
from repro.obs.recorder import NULL_RECORDER
from repro.utils.memory import Workspace
from repro.utils.validation import check_batch_features


class ScreenedOutput:
    """Everything produced by one screened inference pass.

    ``logits`` is the mixed approximate/accurate score matrix;
    ``candidates`` records which entries are accurate.  ``exact_count``
    is the number of exact weight rows gathered (the quantity that
    drives computation and DRAM-traffic savings).

    The vectorized engine mixes in place and hands this object a small
    ``restore`` record (the overwritten approximate values) instead of
    a full copy of the score plane; ``approximate_logits`` is then
    materialized lazily on first access.  Constructing with an explicit
    ``approximate_logits`` array behaves exactly as before.
    """

    def __init__(
        self,
        logits: np.ndarray,
        approximate_logits: Optional[np.ndarray] = None,
        candidates: Optional[CandidateSet] = None,
        restore: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
    ):
        if candidates is None:
            raise ValueError("ScreenedOutput requires a candidate set")
        if approximate_logits is None and restore is None:
            raise ValueError(
                "ScreenedOutput needs approximate_logits or a restore record"
            )
        self.logits = logits
        self.candidates = candidates
        self._approximate_logits = approximate_logits
        self._restore = restore

    @property
    def approximate_logits(self) -> np.ndarray:
        """The pure screener scores ``z̃`` (materialized lazily)."""
        if self._approximate_logits is None:
            rows, cols, values = self._restore
            approx = self.logits.copy()
            approx[rows, cols] = values
            self._approximate_logits = approx
        return self._approximate_logits

    def candidate_restore(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, approximate values)`` for every candidate.

        This is the compact complement of ``logits``: scattering
        ``values`` back over ``(rows, cols)`` recovers the pure
        screener plane.  The sharded reducers merge these records
        instead of materializing every shard's approximate plane.
        """
        if self._restore is not None:
            return self._restore
        rows, cols = self.candidates.flat()
        return rows, cols, self.approximate_logits[rows, cols]

    @property
    def batch_size(self) -> int:
        return self.logits.shape[0]

    @property
    def num_categories(self) -> int:
        return self.logits.shape[1]

    @property
    def exact_count(self) -> int:
        return self.candidates.total

    @property
    def exact_fraction(self) -> float:
        """Fraction of (batch × category) outputs computed exactly."""
        return self.exact_count / self.logits.size

    def __repr__(self) -> str:
        return (
            f"ScreenedOutput(batch={self.batch_size}, "
            f"l={self.num_categories}, exact={self.exact_count})"
        )


class StreamedOutput:
    """The candidates-only result of a blocked streaming forward pass.

    Mirrors the hardware dataflow: the Screener's threshold filter
    consumes score tiles as they stream past and only candidate
    entries ever leave the pipeline, so no ``batch × l`` plane exists.

    ``exact_values`` are the recomputed full-classifier scores and
    ``approximate_values`` the screener scores, both aligned with
    ``candidates.flat()`` (row-major, columns ascending within a row)
    and stored in the screener's compute dtype — exactly the entries a
    dense :class:`ScreenedOutput` would carry at the candidate
    positions (bit-identical in float64, differentially tested).
    """

    def __init__(
        self,
        candidates: CandidateSet,
        exact_values: np.ndarray,
        approximate_values: np.ndarray,
        num_categories: int,
    ):
        self.candidates = candidates
        self.exact_values = exact_values
        self.approximate_values = approximate_values
        self.num_categories = num_categories

    @property
    def batch_size(self) -> int:
        return self.candidates.batch_size

    @property
    def exact_count(self) -> int:
        return self.candidates.total

    @property
    def exact_fraction(self) -> float:
        return self.exact_count / (self.batch_size * self.num_categories)

    def predict(self) -> np.ndarray:
        """Argmax category per row over the candidate entries (the
        screened serving decision); ``-1`` for rows with no candidates."""
        best = np.full(self.batch_size, -1, dtype=np.intp)
        offset = 0
        for row, indices in enumerate(self.candidates):
            if indices.size:
                values = self.exact_values[offset : offset + indices.size]
                best[row] = indices[int(np.argmax(values))]
            offset += indices.size
        return best

    def __repr__(self) -> str:
        return (
            f"StreamedOutput(batch={self.batch_size}, "
            f"l={self.num_categories}, exact={self.exact_count})"
        )


class ShardFailure:
    """One shard's unrecoverable failure during a degraded request.

    ``kind`` is the failure class the supervisor observed — ``"died"``
    (process gone, restart budget exhausted), ``"timeout"`` (live but
    unresponsive past every retry) or ``"error"`` (request-scoped
    exception; the worker survives).  ``categories`` is the global
    category range the shard owned, i.e. the columns the result is
    missing.
    """

    def __init__(self, shard_id: int, categories: range, kind: str, detail: str = ""):
        self.shard_id = shard_id
        self.categories = categories
        self.kind = kind
        self.detail = detail

    def __repr__(self) -> str:
        return (
            f"ShardFailure(shard={self.shard_id}, "
            f"categories=[{self.categories.start}, {self.categories.stop}), "
            f"kind={self.kind!r})"
        )


class DegradedOutput:
    """A partial serving result plus a structured report of what is missing.

    Returned (instead of raising) by a fleet running in graceful-
    degradation mode when one or more shards could not answer:
    ``result`` is the merge of the *surviving* shards — a
    :class:`ScreenedOutput` whose missing columns are NaN, a
    :class:`StreamedOutput` with no candidates from the missing ranges,
    or a ``(indices, scores)`` top-k pair reduced over survivors only —
    and ``failures`` records exactly which category ranges are absent
    and why.  Callers that can tolerate partial answers (the Amazon-
    scale XC deployments this models) read ``result`` and log the
    report; callers that cannot should check ``missing_ranges`` and
    fall back.
    """

    def __init__(
        self,
        result,
        failures,
        num_categories: int,
    ):
        self.result = result
        self.failures = tuple(failures)
        self.num_categories = int(num_categories)

    @property
    def missing_ranges(self) -> Tuple[range, ...]:
        """Global category ranges with no answer, ascending."""
        return tuple(
            sorted(
                (failure.categories for failure in self.failures),
                key=lambda r: r.start,
            )
        )

    @property
    def missing_categories(self) -> int:
        return sum(len(r) for r in self.missing_ranges)

    @property
    def available_fraction(self) -> float:
        """Fraction of the category space the result covers."""
        return 1.0 - self.missing_categories / self.num_categories

    def __repr__(self) -> str:
        return (
            f"DegradedOutput({len(self.failures)} shard failure(s), "
            f"{self.available_fraction:.1%} of {self.num_categories} "
            "categories available)"
        )


class ApproximateScreeningClassifier:
    """The paper's candidates-only classifier (screen → filter → exact → mix)."""

    def __init__(
        self,
        classifier,
        screener: ScreeningModule,
        selector: Optional[CandidateSelector] = None,
        num_candidates: int = 32,
        softmax_taylor_order: Optional[int] = None,
        recorder=None,
    ):
        if screener.num_categories != classifier.num_categories:
            raise ValueError(
                f"screener covers {screener.num_categories} categories, classifier "
                f"has {classifier.num_categories}"
            )
        if screener.hidden_dim != classifier.hidden_dim:
            raise ValueError(
                f"screener hidden dim {screener.hidden_dim} != classifier "
                f"{classifier.hidden_dim}"
            )
        self.classifier = classifier
        self.screener = screener
        self.selector = selector or CandidateSelector(
            mode="top_m", num_candidates=num_candidates
        )
        #: When set, softmax uses the Executor SFU's Taylor-approximated
        #: exponential of this order instead of exact exp.
        self.softmax_taylor_order = softmax_taylor_order
        self._workspace: Optional[Workspace] = None
        #: Observability sink (phase spans + counters); the no-op
        #: :data:`~repro.obs.recorder.NULL_RECORDER` unless a recorder
        #: is supplied — with the default, outputs are bit-identical to
        #: an uninstrumented pipeline and no metrics state exists.
        self.recorder = NULL_RECORDER
        if recorder is not None:
            self.set_recorder(recorder)

    def set_recorder(self, recorder) -> "ApproximateScreeningClassifier":
        """Attach (or detach, with :data:`NULL_RECORDER`) a recorder.

        The screener shares the pipeline's recorder so its
        project/quantize and GEMM spans nest under the pipeline's
        request spans in one trace.
        """
        self.recorder = recorder
        self.screener.recorder = recorder
        return self

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.classifier.num_categories

    @property
    def hidden_dim(self) -> int:
        return self.classifier.hidden_dim

    @property
    def workspace(self) -> Workspace:
        """The scratch arena backing :meth:`forward_streaming`.

        Created lazily and reused across calls; after the first call at
        a given batch shape its ``allocations`` counter stays flat
        (the zero-allocation steady-state contract, tested)."""
        if self._workspace is None:
            self._workspace = Workspace()
        return self._workspace

    # ------------------------------------------------------------------
    # array-level (de)construction — the parallel engine's wire format
    # ------------------------------------------------------------------
    def export_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Split the pipeline into raw parameter arrays + scalar metadata.

        The arrays are exactly the planes a serving host places in
        shared memory (classifier ``W``/``b``, screener ``W̃``/``b̃``,
        the 2-bit ternary projection); the metadata dict is small plain
        data.  :meth:`from_arrays` inverts this without pickling a
        single numpy array, so workers can be built zero-copy from
        shared buffers.

        A pipeline running on a :class:`QuantizedExactStore` exports the
        INT8/FP16 codes (plus per-tile scales) instead of the FP64
        weight plane — the shared segment shrinks ~4-8x and the metadata
        gains ``exact_store``/``exact_store_tile_rows`` keys so
        :meth:`from_arrays` rebuilds the same store zero-copy.
        """
        screener = self.screener
        if isinstance(self.classifier, QuantizedExactStore):
            arrays, store_meta = self.classifier.export_arrays()
            arrays = dict(arrays)
        else:
            arrays = {
                "weight": self.classifier.weight,
                "bias": self.classifier.bias,
            }
            store_meta = {"normalization": self.classifier.normalization}
        arrays.update(
            screener_weight=screener.weight,
            screener_bias=screener.bias,
            projection_ternary=screener.projection.ternary,
        )
        meta = {
            **store_meta,
            "quantization_bits": screener.quantization_bits,
            "compute_dtype": screener.compute_dtype.name,
            "projection_density": screener.projection.density,
            "selector_mode": self.selector.mode,
            "selector_num_candidates": self.selector.num_candidates,
            "selector_threshold": self.selector.threshold,
            "softmax_taylor_order": self.softmax_taylor_order,
        }
        return arrays, meta

    @classmethod
    def from_arrays(
        cls,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, object],
    ) -> "ApproximateScreeningClassifier":
        """Rebuild a pipeline from :meth:`export_arrays` output.

        Float64/int8 inputs (e.g. shared-memory views) pass straight
        through as the live parameter planes — no copies, no pickle.
        The reconstructed pipeline computes bit-identically to the
        exported one: all derived state (quantized weight view, fused
        GEMM plane) is re-derived by the constructors from the same
        parameters.

        Metadata carrying an ``exact_store`` key (see
        :meth:`export_arrays`) rebuilds a :class:`QuantizedExactStore`
        over the shipped codes instead of a :class:`FullClassifier` —
        the path parallel workers take when the host quantized its
        exact weights before exporting the shared segments.
        """
        if meta.get("exact_store"):
            classifier = QuantizedExactStore.from_arrays(arrays, meta)
        else:
            classifier = FullClassifier(
                arrays["weight"],
                arrays["bias"],
                normalization=str(meta["normalization"]),
            )
        from repro.linalg.projection import SparseRandomProjection

        projection = SparseRandomProjection.from_ternary(
            arrays["projection_ternary"],
            density=float(meta["projection_density"]),  # type: ignore[arg-type]
        )
        screener = ScreeningModule(
            projection,
            arrays["screener_weight"],
            arrays["screener_bias"],
            quantization_bits=meta["quantization_bits"],  # type: ignore[arg-type]
            compute_dtype=str(meta["compute_dtype"]),
        )
        selector = CandidateSelector(
            mode=str(meta["selector_mode"]),
            num_candidates=int(meta["selector_num_candidates"]),  # type: ignore[arg-type]
            threshold=meta["selector_threshold"],  # type: ignore[arg-type]
        )
        return cls(
            classifier,
            screener,
            selector=selector,
            softmax_taylor_order=meta.get("softmax_taylor_order"),  # type: ignore[arg-type]
        )

    def quantize_exact_weights(
        self, kind: str = "int8", tile_rows: int = TILE_CATEGORIES
    ) -> "ApproximateScreeningClassifier":
        """Swap the FP64 exact weights for a block-quantized store.

        In place: the exact phase subsequently dequantizes INT8 (or
        FP16) tiles into workspace scratch instead of touching an FP64
        weight plane, cutting the resident exact-weight footprint ~8x
        (~4x for float16).  Screening, selection and mixing are
        untouched.  Idempotent when the store already matches ``kind``;
        the original FP64 plane is dropped (reload it from the training
        artifact if needed).
        """
        if isinstance(self.classifier, QuantizedExactStore):
            if self.classifier.kind != kind:
                raise ValueError(
                    f"exact weights already quantized as "
                    f"{self.classifier.kind!r}; cannot requantize to "
                    f"{kind!r} (quantization is lossy)"
                )
            return self
        self.classifier = QuantizedExactStore.from_classifier(
            self.classifier, kind=kind, tile_rows=tile_rows
        )
        return self

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray, faithful: bool = False) -> ScreenedOutput:
        """Run the full screened pipeline on a feature batch.

        The default path is the vectorized gathered engine; pass
        ``faithful=True`` for the per-row reference dataflow (the exact
        phase loops over batch rows exactly as the original
        implementation did).  Both share the screening and selection
        stages and produce numerically identical outputs.
        """
        recorder = self.recorder
        with recorder.span("forward"):
            batch = check_batch_features(features, self.hidden_dim)
            with recorder.span("screen"):
                approx = self.screener.approximate_logits(batch)
            with recorder.span("select"):
                candidates = self.selector.select(approx)
            recorder.increment("pipeline.forward_requests")
            recorder.increment("pipeline.rows", batch.shape[0])
            recorder.increment("pipeline.exact_candidates", candidates.total)
            if faithful:
                return self._mix_per_row(batch, approx, candidates)
            return self._mix_vectorized(
                batch, approx, candidates, workspace=self.workspace
            )

    __call__ = forward

    def _mix_per_row(
        self,
        batch: np.ndarray,
        approx: np.ndarray,
        candidates: CandidateSet,
    ) -> ScreenedOutput:
        """Reference exact phase: one gather + matmul per batch row."""
        mixed = approx.copy()
        for row, indices in enumerate(candidates):
            if indices.size == 0:
                continue
            exact = self.classifier.logits_for(indices, batch[row])
            mixed[row, indices] = exact[0]
        return ScreenedOutput(
            logits=mixed, approximate_logits=approx, candidates=candidates
        )

    def _mix_vectorized(
        self,
        batch: np.ndarray,
        approx: np.ndarray,
        candidates: CandidateSet,
        workspace: Optional[Workspace] = None,
    ) -> ScreenedOutput:
        """Vectorized exact phase: mix all candidates in one scatter.

        The approximate plane is mixed in place (the overwritten values
        are kept so ``approximate_logits`` can be rebuilt lazily); the
        exact values come from either a gathered union matmul — the
        batched hardware dataflow, efficient when rows share candidates
        — or a flat per-candidate gather when the union would force the
        matmul to compute mostly unwanted (row, category) pairs.
        """
        rows, cols = candidates.flat()
        if rows.size == 0:
            return ScreenedOutput(
                logits=approx, approximate_logits=approx, candidates=candidates
            )
        with self.recorder.span("exact"):
            exact = self._exact_candidate_values(
                batch, candidates, workspace=workspace
            )
        with self.recorder.span("merge"):
            saved = approx[rows, cols].copy()
            approx[rows, cols] = exact
        return ScreenedOutput(
            logits=approx, candidates=candidates, restore=(rows, cols, saved)
        )

    def _exact_candidate_values(
        self,
        batch: np.ndarray,
        candidates: CandidateSet,
        workspace: Optional[Workspace] = None,
    ) -> np.ndarray:
        """Exact classifier scores for every candidate, flat-aligned.

        The single exact-phase kernel both the dense mix and the
        streaming path call, so their candidate entries are identical
        bits by construction.  The values come from either a gathered
        union matmul — the batched hardware dataflow, efficient when
        rows share candidates — or a flat per-candidate gather when the
        union would force the matmul to compute mostly unwanted
        ``(row, category)`` pairs.

        Both forms go through the exact store's polymorphic surface
        (``logits_for`` / ``candidate_scores``), so the same kernel
        serves FP64 weights and a :class:`QuantizedExactStore` — the
        latter dequantizes its gathered rows into ``workspace`` scratch,
        keeping the streaming steady state allocation-flat.
        """
        rows, cols = candidates.flat()
        if rows.size == 0:
            return np.empty(0, dtype=np.float64)
        union = candidates.union()
        # The union matmul computes batch×union exact entries to use
        # only ``rows.size`` of them; prefer it only when candidate
        # overlap keeps that overcompute within a small factor.
        if candidates.batch_size * union.size <= 2 * rows.size:
            exact = self.classifier.logits_for(union, batch, workspace=workspace)
            return exact[rows, np.searchsorted(union, cols)]
        return self.classifier.candidate_scores(
            rows, cols, batch, workspace=workspace
        )

    def forward_streaming(
        self,
        features: np.ndarray,
        block_categories: Optional[int] = None,
        dense: bool = False,
        workspace: Optional[Workspace] = None,
    ):
        """Blocked streaming forward: screen, select and mix per block.

        The software analogue of the hardware dataflow (paper Sections
        5.1–5.2): the compiler tiles the category space and the
        Screener's filter consumes each tile's scores as they stream
        past, so the full ``batch × l`` score plane never exists.  The
        screener GEMM runs per canonical column tile
        (:data:`repro.core.screener.TILE_CATEGORIES` — identical calls
        to the dense path, hence identical bits); a running per-row
        reducer folds each ``block_categories``-wide segment into the
        candidate set; the exact phase then recomputes only the final
        candidates through the same kernel the dense mix uses.

        ``block_categories`` sets the selection granularity (defaults
        to one update per tile).  Results are independent of it — the
        reducer maintains a total order, so any partition yields the
        dense selection — and bit-identical to :meth:`forward` in
        float64 (float32 differs from float64 in score rounding exactly
        as the dense engine does; candidates and exact values still
        match the float32 dense engine bit for bit).

        Returns a :class:`StreamedOutput` (candidates + their exact and
        approximate values only).  ``dense=True`` materializes the
        score plane and returns a full :class:`ScreenedOutput` — the
        caller asked for ``approximate_logits``, so the memory saving
        is forfeited but every plane is still bit-identical to
        :meth:`forward`.

        All recurring scratch comes from ``workspace`` (default: the
        pipeline-owned arena), so steady-state calls perform zero new
        workspace allocations after warm-up.
        """
        recorder = self.recorder
        with recorder.span("forward_streaming"):
            batch = check_batch_features(features, self.hidden_dim)
            if block_categories is not None and block_categories < 1:
                raise ValueError(
                    f"block_categories must be positive, got {block_categories}"
                )
            ws = workspace if workspace is not None else self.workspace
            rows = batch.shape[0]
            l = self.num_categories
            compute = self.screener.compute_dtype
            block = block_categories if block_categories is not None else l

            augmented = self.screener.prepare_augmented(
                batch,
                out=ws.buffer(
                    "augmented", (rows, self.screener.projection_dim + 1), compute
                ),
            )
            reducer = self.selector.make_block_reducer(
                rows, l, workspace=ws, dtype=compute
            )
            plane = np.empty((rows, l), dtype=compute) if dense else None
            for t0, t1 in self.screener.tile_bounds():
                with recorder.span("streaming.screen_tile"):
                    if dense:
                        tile = self.screener.score_tile(
                            augmented, t0, t1, out=plane[:, t0:t1]
                        )
                    else:
                        tile = self.screener.score_tile(
                            augmented,
                            t0,
                            t1,
                            out=ws.buffer("tile", (rows, t1 - t0), compute),
                        )
                # Selection updates at block_categories granularity; block
                # boundaries are absolute, so a tile may span several
                # blocks and vice versa.
                with recorder.span("streaming.select_tile"):
                    start = t0
                    while start < t1:
                        stop = min(t1, (start // block + 1) * block)
                        reducer.update(start, tile[:, start - t0 : stop - t0])
                        start = stop

            with recorder.span("streaming.select_finalize"):
                counts, cols, approx_values = reducer.finalize()
                candidates = CandidateSet.from_flat(counts, cols)
            recorder.increment("pipeline.streaming_requests")
            recorder.increment("pipeline.rows", rows)
            recorder.increment("pipeline.exact_candidates", candidates.total)
            if recorder.enabled:
                recorder.set_gauge("pipeline.workspace_bytes", ws.nbytes)
                recorder.set_gauge("pipeline.workspace_allocations", ws.allocations)
            if dense:
                return self._mix_vectorized(batch, plane, candidates, workspace=ws)
            with recorder.span("streaming.exact"):
                exact_values = self._exact_candidate_values(
                    batch, candidates, workspace=ws
                ).astype(compute, copy=False)
            return StreamedOutput(
                candidates=candidates,
                exact_values=exact_values,
                approximate_values=approx_values,
                num_categories=l,
            )

    def forward_gathered(self, features: np.ndarray) -> ScreenedOutput:
        """Batched exact phase over the *union* of candidate rows.

        Gathers each candidate weight row once per batch (how batched
        hardware executes) and computes all rows' exact scores in one
        matmul; each row's mixed output still only takes its own
        candidates, remapped with a ``searchsorted`` scatter instead of
        a per-row dictionary walk.  Numerically identical to
        :meth:`forward`.
        """
        batch = check_batch_features(features, self.hidden_dim)
        approx = self.screener.approximate_logits(batch)
        candidates = self.selector.select(approx)

        mixed = approx.copy()
        union = candidates.union()
        if union.size:
            # (batch, union) exact scores in one gathered matmul.
            exact = self.classifier.logits_for(union, batch)
            rows, cols = candidates.flat()
            mixed[rows, cols] = exact[rows, np.searchsorted(union, cols)]
        return ScreenedOutput(
            logits=mixed, approximate_logits=approx, candidates=candidates
        )

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized probabilities from the mixed score vector
        (vectorized default path)."""
        output = self.forward(features)
        if self.classifier.normalization == "sigmoid":
            return sigmoid(output.logits)
        if self.softmax_taylor_order is not None:
            return taylor_softmax(output.logits, order=self.softmax_taylor_order)
        return softmax(output.logits, axis=-1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax category per row (always inside the candidate set by
        construction when the screener is reasonable, but taken over
        the mixed vector exactly as the hardware would).  Runs the
        vectorized default path."""
        return np.argmax(self.forward(features).logits, axis=-1)

    def top_k(self, features: np.ndarray, k: int) -> np.ndarray:
        """Top-k categories per row from the mixed scores (beam search /
        P@k consumers).  Runs the vectorized default path."""
        from repro.linalg.topk import top_k_indices

        return top_k_indices(self.forward(features).logits, k, sort=True)

    # ------------------------------------------------------------------
    # EngineBackend conformance (repro.serving.backend)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release serving resources (the streaming workspace arena).

        Part of the :class:`~repro.serving.backend.EngineBackend`
        contract so a single-node pipeline is interchangeable with the
        sharded backends behind the serving front door.  Idempotent;
        the pipeline stays usable (a new workspace is created lazily on
        the next streaming call).
        """
        if self._workspace is not None:
            self._workspace.release()
            self._workspace = None

    def __enter__(self) -> "ApproximateScreeningClassifier":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ApproximateScreeningClassifier(l={self.num_categories}, "
            f"d={self.hidden_dim}, k={self.screener.projection_dim}, "
            f"selector={self.selector!r})"
        )
