"""Block-quantized exact-weight store (INT8 / FP16 tiles, optional mmap).

The exact phase is the memory wall at extreme ``l``: the FP64 weight
matrix ``W ∈ R^{l×d}`` alone is ~343 MB at the paper's Wikipedia-670K
operating point and tens of GB at the 100M regime — far past what one
serving host can keep resident per shard.  ELMO (PAPERS.md) shows the
large-output-space layer runs correctly in low precision with careful
peak-memory management; this module is the serving-side analogue for
the *exact* phase:

* weights are held as INT8 codes with one symmetric scale per canonical
  category tile (:data:`~repro.core.screener.TILE_CATEGORIES` rows, the
  same tiles the screening GEMM streams), or as raw float16;
* every access dequantizes into caller-supplied
  :class:`~repro.utils.memory.Workspace` scratch, so steady-state
  serving stays allocation-flat — no dequantized copy of ``W`` ever
  exists;
* the codes can live in a memory-mapped ``.npy`` sidecar
  (:meth:`QuantizedExactStore.load` with ``mmap=True``), so a shard
  larger than RAM pages in on demand and the OS keeps only the hot
  tiles resident.

:class:`QuantizedExactStore` is surface-compatible with
:class:`~repro.core.classifier.FullClassifier` everywhere the serving
pipeline touches the exact weights (``logits`` / ``logits_for`` /
``candidate_scores`` plus the shape properties), so it drops into
:class:`~repro.core.pipeline.ApproximateScreeningClassifier`,
:class:`~repro.distributed.sharding.ShardedClassifier` and the parallel
engine's shared-memory export without touching the screening or
selection stages.  It is *not* a trainer: quantize a trained
``FullClassifier`` with :meth:`from_classifier`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier import NORMALIZATIONS
from repro.core.screener import TILE_CATEGORIES
from repro.linalg.functional import sigmoid, softmax
from repro.linalg.quantize import TileQuantized, quantize_tiles
from repro.utils.validation import check_batch_features, check_positive

#: Supported storage kinds for the exact weights.
STORE_KINDS = ("int8", "float16")

#: Bit width backing the ``"int8"`` kind.
INT8_BITS = 8


class QuantizedExactStore:
    """Exact classifier weights in block-quantized storage.

    Parameters
    ----------
    codes:
        ``(l, d)`` stored weights — ``int8`` codes for ``kind="int8"``,
        raw ``float16`` for ``kind="float16"``.  May be a shared-memory
        view or a read-only ``np.memmap``; the store never writes it.
    scales:
        Per-tile dequantization scales (``int8`` kind only; ``None``
        for float16).
    bias:
        FP64 bias ``b ∈ R^l`` (small; always resident).
    kind:
        ``"int8"`` or ``"float16"``.
    tile_rows:
        Rows per scale tile; defaults to the canonical
        :data:`~repro.core.screener.TILE_CATEGORIES`.
    normalization:
        ``"softmax"`` or ``"sigmoid"``, as on ``FullClassifier``.
    """

    def __init__(
        self,
        codes: np.ndarray,
        scales: Optional[np.ndarray],
        bias: np.ndarray,
        kind: str = "int8",
        tile_rows: int = TILE_CATEGORIES,
        normalization: str = "softmax",
    ):
        if kind not in STORE_KINDS:
            raise ValueError(
                f"kind must be one of {STORE_KINDS}, got {kind!r}"
            )
        if normalization not in NORMALIZATIONS:
            raise ValueError(
                f"normalization must be one of {NORMALIZATIONS}, got "
                f"{normalization!r}"
            )
        check_positive("tile_rows", tile_rows)
        codes = np.asarray(codes)
        if codes.ndim != 2:
            raise ValueError(f"codes must be 2-D (l, d), got shape {codes.shape}")
        expected = np.int8 if kind == "int8" else np.float16
        if codes.dtype != np.dtype(expected):
            raise ValueError(
                f"{kind} store needs {np.dtype(expected)} codes, got "
                f"{codes.dtype}"
            )
        self.kind = kind
        self.tile_rows = int(tile_rows)
        num_tiles = max(1, -(-codes.shape[0] // self.tile_rows))
        if kind == "int8":
            if scales is None:
                raise ValueError("int8 store needs per-tile scales")
            scales = np.asarray(scales, dtype=np.float64)
            if scales.shape != (num_tiles,):
                raise ValueError(
                    f"expected {num_tiles} tile scales for "
                    f"{codes.shape[0]} rows at tile_rows={self.tile_rows}, "
                    f"got shape {scales.shape}"
                )
            self._tiles: Optional[TileQuantized] = TileQuantized(
                values=codes, scales=scales, bits=INT8_BITS,
                tile_rows=self.tile_rows,
            )
        else:
            if scales is not None:
                raise ValueError("float16 store takes no scales")
            self._tiles = None
        self.codes = codes
        self.scales = scales
        self.bias = np.asarray(bias, dtype=np.float64)
        if self.bias.shape != (codes.shape[0],):
            raise ValueError(
                f"bias shape {self.bias.shape} incompatible with "
                f"l={codes.shape[0]}"
            )
        self.normalization = normalization

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_classifier(
        cls,
        classifier,
        kind: str = "int8",
        tile_rows: int = TILE_CATEGORIES,
    ) -> "QuantizedExactStore":
        """Quantize a trained ``FullClassifier``'s weights into a store."""
        if kind == "int8":
            tiles = quantize_tiles(
                classifier.weight, bits=INT8_BITS, tile_rows=tile_rows
            )
            return cls(
                tiles.values,
                tiles.scales,
                classifier.bias,
                kind="int8",
                tile_rows=tile_rows,
                normalization=classifier.normalization,
            )
        if kind == "float16":
            return cls(
                np.asarray(classifier.weight, dtype=np.float16),
                None,
                classifier.bias,
                kind="float16",
                tile_rows=tile_rows,
                normalization=classifier.normalization,
            )
        raise ValueError(f"kind must be one of {STORE_KINDS}, got {kind!r}")

    # ------------------------------------------------------------------
    # shapes / cost
    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        return self.codes.shape[0]

    @property
    def hidden_dim(self) -> int:
        return self.codes.shape[1]

    @property
    def num_tiles(self) -> int:
        return max(1, -(-self.num_categories // self.tile_rows))

    @property
    def nbytes(self) -> int:
        """Resident parameter bytes: codes + scales + FP64 bias."""
        scale_bytes = self.scales.nbytes if self.scales is not None else 0
        return self.codes.nbytes + scale_bytes + self.bias.nbytes

    def tile_bounds(self):
        """Canonical ``[start, stop)`` row tiles (scale granularity)."""
        l = self.num_categories
        return [
            (start, min(start + self.tile_rows, l))
            for start in range(0, l, self.tile_rows)
        ]

    # ------------------------------------------------------------------
    # dequantization primitives
    # ------------------------------------------------------------------
    def dequantize_tile(
        self, start: int, stop: int, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """FP64 weight rows ``[start, stop)`` of one canonical tile."""
        if self._tiles is not None:
            return self._tiles.dequantize_tile(start, stop, out=out)
        if out is None:
            out = np.empty((stop - start, self.hidden_dim), dtype=np.float64)
        np.copyto(out, self.codes[start:stop])
        return out

    def gather_rows(
        self, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Dequantized FP64 weight rows for arbitrary category indices.

        ``out`` lets the exact phase reuse workspace scratch; rows keep
        their tile's scale, so the result is bit-identical to gathering
        from :meth:`dequantize_tile` outputs.
        """
        if self._tiles is not None:
            return self._tiles.dequantize_rows(indices, out=out)
        index_array = np.asarray(indices, dtype=np.intp)
        if out is None:
            out = np.empty((index_array.size, self.hidden_dim), dtype=np.float64)
        np.copyto(out, self.codes[index_array])
        return out

    def _scratch(self, workspace, key: str, shape: Tuple[int, ...]) -> np.ndarray:
        """Workspace-backed (or fresh, without one) FP64 scratch.

        Uses the growable slab so a fluctuating candidate count under
        the threshold selector amortizes growth instead of reallocating
        on every high-water request — the allocation-flat steady state
        the streaming engine asserts.
        """
        if workspace is None:
            return np.empty(shape, dtype=np.float64)
        size = int(np.prod(shape, dtype=np.int64))
        return workspace.growable(key, size, np.float64)[:size].reshape(shape)

    # ------------------------------------------------------------------
    # FullClassifier-compatible serving surface
    # ------------------------------------------------------------------
    def logits(self, features: np.ndarray, workspace=None) -> np.ndarray:
        """Exact scores ``W h + b``, streamed one weight tile at a time.

        Only one dequantized tile exists at any moment (workspace
        scratch when provided), so peak memory stays
        ``O(tile_rows × d)`` regardless of ``l``.
        """
        batch = check_batch_features(features, self.hidden_dim)
        scores = np.empty((batch.shape[0], self.num_categories), dtype=np.float64)
        for start, stop in self.tile_bounds():
            tile = self._scratch(
                workspace, "exact_store.tile", (stop - start, self.hidden_dim)
            )
            self.dequantize_tile(start, stop, out=tile)
            np.matmul(batch, tile.T, out=scores[:, start:stop])
        scores += self.bias
        return scores

    def logits_for(
        self,
        indices: Sequence[int],
        features: np.ndarray,
        workspace=None,
    ) -> np.ndarray:
        """Exact scores for selected categories only (gathered form)."""
        batch = check_batch_features(features, self.hidden_dim)
        index_array = np.asarray(indices, dtype=np.intp)
        if index_array.ndim != 1:
            raise ValueError(f"indices must be 1-D, got shape {index_array.shape}")
        rows = self._scratch(
            workspace, "exact_store.gather", (index_array.size, self.hidden_dim)
        )
        self.gather_rows(index_array, out=rows)
        return batch @ rows.T + self.bias[index_array]

    def candidate_scores(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        batch: np.ndarray,
        workspace=None,
    ) -> np.ndarray:
        """Per-candidate exact scores (flat gather form): one dot
        product per ``(row, col)`` pair."""
        gathered = self._scratch(
            workspace, "exact_store.gather", (cols.size, self.hidden_dim)
        )
        self.gather_rows(cols, out=gathered)
        return np.einsum("nd,nd->n", gathered, batch[rows]) + self.bias[cols]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Normalized output probabilities (FullClassifier surface)."""
        scores = self.logits(features)
        if self.normalization == "softmax":
            return softmax(scores, axis=-1)
        return sigmoid(scores)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.logits(features), axis=-1)

    # ------------------------------------------------------------------
    # (de)construction — shared-memory wire format
    # ------------------------------------------------------------------
    def export_arrays(self) -> Tuple[Dict[str, np.ndarray], Dict[str, object]]:
        """Raw parameter arrays + plain-data metadata (shm wire format).

        The codes array ships at its stored width, so a quantized
        shard's shared segment is ~4-8x smaller than the FP64 export —
        cheaper to create and cheaper to respawn workers against.
        """
        arrays = {"weight_codes": self.codes, "bias": self.bias}
        if self.scales is not None:
            arrays["weight_scales"] = self.scales
        meta = {
            "exact_store": self.kind,
            "exact_store_tile_rows": self.tile_rows,
            "normalization": self.normalization,
        }
        return arrays, meta

    @classmethod
    def from_arrays(
        cls, arrays: Dict[str, np.ndarray], meta: Dict[str, object]
    ) -> "QuantizedExactStore":
        """Rebuild a store from :meth:`export_arrays` output (zero-copy
        for shared-memory views)."""
        kind = str(meta["exact_store"])
        return cls(
            arrays["weight_codes"],
            arrays.get("weight_scales") if kind == "int8" else None,
            arrays["bias"],
            kind=kind,
            tile_rows=int(meta["exact_store_tile_rows"]),  # type: ignore[arg-type]
            normalization=str(meta["normalization"]),
        )

    def __repr__(self) -> str:
        return (
            f"QuantizedExactStore(l={self.num_categories}, "
            f"d={self.hidden_dim}, kind={self.kind!r}, "
            f"tiles={self.num_tiles}, nbytes={self.nbytes})"
        )
