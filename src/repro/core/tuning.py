"""Validation-set tuning of the candidate budget and threshold.

Paper Section 4.2: "the threshold value can be tuned on validation
sets."  In practice the deployment question is inverted: given a
quality target (candidate recall@k — the quantity that bounds end-task
degradation), what is the smallest candidate budget that achieves it?
:func:`tune_budget_for_recall` answers with a binary search over ``m``,
and :func:`tune_threshold_for_recall` converts the result into the
hardware's comparator threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateSelector
from repro.core.classifier import FullClassifier
from repro.core.metrics import candidate_recall
from repro.core.pipeline import ApproximateScreeningClassifier
from repro.core.screener import ScreeningModule
from repro.linalg.topk import calibrate_threshold
from repro.utils.validation import check_batch_features, check_positive, check_probability


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a budget search."""

    num_candidates: int
    achieved_recall: float
    target_recall: float
    k: int
    threshold: float
    num_categories: int

    @property
    def met(self) -> bool:
        return self.achieved_recall >= self.target_recall

    @property
    def candidate_fraction(self) -> float:
        """The tuned budget as a fraction of the category space."""
        return self.num_candidates / self.num_categories


def _recall_at_budget(
    classifier: FullClassifier,
    screener: ScreeningModule,
    features: np.ndarray,
    exact_logits: np.ndarray,
    budget: int,
    k: int,
) -> float:
    model = ApproximateScreeningClassifier(
        classifier, screener,
        selector=CandidateSelector(mode="top_m", num_candidates=budget),
    )
    return candidate_recall(exact_logits, model(features), k=k)


def tune_budget_for_recall(
    classifier: FullClassifier,
    screener: ScreeningModule,
    validation_features: np.ndarray,
    target_recall: float = 0.99,
    k: int = 1,
    max_fraction: float = 0.5,
) -> TuningResult:
    """Smallest top-m budget whose candidate recall@k ≥ target.

    Recall@k is monotone non-decreasing in the budget (a superset of
    candidates can only contain more of the true top-k), so binary
    search applies.  If even ``max_fraction`` of the category space
    misses the target, the largest probed budget is returned with
    ``met=False``.
    """
    check_probability("target_recall", target_recall)
    check_positive("k", k)
    features = check_batch_features(validation_features, classifier.hidden_dim)
    exact = classifier.logits(features)

    low = k  # can't catch top-k with fewer than k candidates
    high = max(low, int(classifier.num_categories * max_fraction))

    # Every budget is probed at most once: a full screening pass per
    # probe is the search's entire cost, and both the feasibility cap
    # and the final budget are frequently revisited by the bisection
    # (e.g. low == high on entry, or the search converging onto an
    # already-probed midpoint).
    probed = {}

    def probe(budget: int) -> float:
        if budget not in probed:
            probed[budget] = _recall_at_budget(
                classifier, screener, features, exact, budget, k
            )
        return probed[budget]

    # One probe at the cap decides feasibility; reuse it for the report
    # rather than paying a second full screening pass at the most
    # expensive budget in the search.
    recall_at_cap = probe(high)
    if recall_at_cap < target_recall:
        return _result(screener, features, high, recall_at_cap, target_recall, k,
                       classifier.num_categories)

    while low < high:
        mid = (low + high) // 2
        if probe(mid) >= target_recall:
            high = mid
        else:
            low = mid + 1

    return _result(screener, features, low, probe(low), target_recall, k,
                   classifier.num_categories)


def _result(screener, features, budget, achieved, target, k, num_categories):
    threshold = calibrate_threshold(
        screener.approximate_logits(features), budget
    )
    return TuningResult(
        num_candidates=budget,
        achieved_recall=achieved,
        target_recall=target,
        k=k,
        threshold=threshold,
        num_categories=num_categories,
    )


def tune_threshold_for_recall(
    classifier: FullClassifier,
    screener: ScreeningModule,
    validation_features: np.ndarray,
    target_recall: float = 0.99,
    k: int = 1,
    **kwargs,
) -> float:
    """The comparator threshold achieving the recall target (the value
    the host loads into the ENMC THRESHOLD register).

    Extra keyword arguments (``max_fraction``, and whatever the budget
    search grows next) forward to :func:`tune_budget_for_recall`, so
    the threshold search can be bounded exactly like the budget search.
    """
    result = tune_budget_for_recall(
        classifier, screener, validation_features, target_recall, k, **kwargs
    )
    return result.threshold
