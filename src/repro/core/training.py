"""Algorithm 1: learning the screener by MSE distillation.

The full classifier ``(W, b)`` is frozen; only ``(W̃, b̃)`` are updated
to minimize (paper Eq. 4)

    L = (1/s) Σ_s || (W h + b) − (W̃ P h + b̃) ||²

over batches of context vectors ``h`` drawn from the model's own
hidden-layer outputs.  The projection ``P`` is constructed once and
never trained.

Two solvers are provided:

* ``"sgd"`` — the paper-faithful mini-batch SGD loop (Algorithm 1).
* ``"lstsq"`` — the closed-form least-squares solution of the same
  objective.  Eq. 4 is an ordinary linear regression from ``Ph`` to
  ``Wh + b``, so for large synthetic sweeps we solve it exactly; the
  SGD path converges to the same optimum (tested) but is slower.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningConfig, ScreeningModule, initialize_screener
from repro.linalg.sgd import SGD, Adam
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_batch_features, check_positive

_SOLVERS = ("sgd", "adam", "lstsq")


@dataclass
class TrainingReport:
    """What happened during distillation: per-epoch loss and final error."""

    losses: List[float] = field(default_factory=list)
    epochs: int = 0
    solver: str = "sgd"

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs recorded")
        return self.losses[-1]

    @property
    def converged(self) -> bool:
        """Loose convergence check: the loss stopped improving by >1%."""
        if len(self.losses) < 2:
            return False
        return self.losses[-1] >= 0.99 * self.losses[-2]


def _mse_and_grads(
    screener: ScreeningModule,
    projected: np.ndarray,
    targets: np.ndarray,
    quantization_aware: bool = False,
) -> tuple:
    """Loss and gradients of Eq. 4 w.r.t. (W̃, b̃) for one mini-batch.

    With ``quantization_aware`` the forward pass sees the fake-quantized
    weights while gradients flow to the full-precision master copy — the
    straight-through estimator, so the trained weights compensate for
    the INT4 grid they will be deployed on.
    """
    batch_size = projected.shape[0]
    weight = screener.weight
    if quantization_aware and screener.quantization_bits is not None:
        from repro.linalg.quantize import Quantizer

        weight = Quantizer(
            bits=screener.quantization_bits, axis=0
        ).fake_quantize(weight)
    prediction = projected @ weight.T + screener.bias
    error = prediction - targets
    loss = float(np.mean(np.sum(error**2, axis=1)))
    grad_weight = (2.0 / batch_size) * error.T @ projected
    grad_bias = (2.0 / batch_size) * np.sum(error, axis=0)
    return loss, grad_weight, grad_bias


def _solve_lstsq(
    screener: ScreeningModule, projected: np.ndarray, targets: np.ndarray
) -> float:
    """Exact minimizer of Eq. 4 via least squares on [Ph, 1]."""
    ones = np.ones((projected.shape[0], 1))
    design = np.hstack([projected, ones])
    solution, *_ = np.linalg.lstsq(design, targets, rcond=None)
    screener.weight[...] = solution[:-1].T
    screener.bias[...] = solution[-1]
    residual = design @ solution - targets
    return float(np.mean(np.sum(residual**2, axis=1)))


def train_screener(
    classifier: FullClassifier,
    features: np.ndarray,
    config: Optional[ScreeningConfig] = None,
    epochs: int = 30,
    batch_size: int = 64,
    lr: float = 0.05,
    solver: str = "sgd",
    quantization_aware: bool = False,
    rng: RngLike = None,
    return_report: bool = False,
):
    """Run Algorithm 1 and return the trained :class:`ScreeningModule`.

    Parameters
    ----------
    classifier:
        The frozen full classifier whose outputs are the distillation
        targets.
    features:
        Context vectors ``h`` from the application's hidden layers,
        shape ``(num_samples, d)``.
    config:
        Screener shape; defaults to the paper's operating point
        (``k = d/4``, INT4).
    solver:
        ``"sgd"`` (Algorithm 1), ``"adam"``, or ``"lstsq"``.
    quantization_aware:
        Train against the fake-quantized forward (straight-through
        estimator) so the weights adapt to their deployment grid.
        Iterative solvers only (the closed form has no QAT analogue).
    return_report:
        When true, returns ``(screener, TrainingReport)``.
    """
    if solver not in _SOLVERS:
        raise ValueError(f"solver must be one of {_SOLVERS}, got {solver!r}")
    if quantization_aware and solver == "lstsq":
        raise ValueError("quantization_aware requires an iterative solver")
    check_positive("epochs", epochs)
    check_positive("batch_size", batch_size)

    batch = check_batch_features(features, classifier.hidden_dim)
    if config is None:
        config = ScreeningConfig.from_scale(classifier.hidden_dim, scale=0.25)

    generator = ensure_rng(rng)
    screener = initialize_screener(
        classifier.num_categories, classifier.hidden_dim, config, rng=generator
    )

    # Training runs in floating point; quantization applies at inference.
    targets = classifier.logits(batch)
    projected = screener.project(batch)

    report = TrainingReport(solver=solver)
    if solver == "lstsq":
        loss = _solve_lstsq(screener, projected, targets)
        report.losses.append(loss)
        report.epochs = 1
    else:
        if solver == "sgd":
            optimizer = SGD([screener.weight, screener.bias], lr=lr, momentum=0.9)
        else:
            optimizer = Adam([screener.weight, screener.bias], lr=lr)
        num_samples = batch.shape[0]
        # One shuffled gather per epoch into reused buffers; every
        # mini-batch is then a contiguous row-slice view.  The per-step
        # fancy-index copies (two per step) this replaces produced the
        # same rows in the same order, so the mini-batch operands — and
        # hence the whole loss/weight trajectory — are unchanged bits
        # (tested in tests/test_core_training.py).
        projected_shuffled = np.empty_like(projected)
        targets_shuffled = np.empty_like(targets)
        for _ in range(epochs):
            order = generator.permutation(num_samples)
            np.take(projected, order, axis=0, out=projected_shuffled)
            np.take(targets, order, axis=0, out=targets_shuffled)
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, num_samples, batch_size):
                stop = start + batch_size
                loss, grad_w, grad_b = _mse_and_grads(
                    screener,
                    projected_shuffled[start:stop],
                    targets_shuffled[start:stop],
                    quantization_aware=quantization_aware,
                )
                optimizer.step([grad_w, grad_b])
                epoch_loss += loss
                num_batches += 1
            report.losses.append(epoch_loss / max(num_batches, 1))
            report.epochs += 1
            if report.converged:
                break

    screener._refresh_quantized_weight()
    if return_report:
        return screener, report
    return screener
