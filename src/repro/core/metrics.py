"""Algorithm-level metrics: quality of screening and cost accounting.

Cost accounting is the bridge between the algorithm and the hardware
models: every performance model in :mod:`repro.host`, :mod:`repro.nmp`
and :mod:`repro.enmc` consumes a :class:`ClassificationCost` describing
how many operations are needed and how many bytes must stream from
memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.pipeline import ScreenedOutput
from repro.core.screener import ScreeningModule
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class ClassificationCost:
    """Operation and traffic cost of one classification pass.

    ``flops`` counts multiply-accumulates as 2 ops.  ``*_bytes`` count
    weight traffic only (features and outputs are orders of magnitude
    smaller at XC scale).  ``int_flops``/``fp_flops`` split matters for
    ENMC, whose Screener is INT4 and Executor FP32.
    """

    fp_flops: float
    int_flops: float
    fp_bytes: float
    int_bytes: float

    @property
    def flops(self) -> float:
        return self.fp_flops + self.int_flops

    @property
    def bytes(self) -> float:
        return self.fp_bytes + self.int_bytes

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte of memory traffic (roofline x-axis)."""
        if self.bytes == 0:
            return float("inf")
        return self.flops / self.bytes

    def __add__(self, other: "ClassificationCost") -> "ClassificationCost":
        return ClassificationCost(
            fp_flops=self.fp_flops + other.fp_flops,
            int_flops=self.int_flops + other.int_flops,
            fp_bytes=self.fp_bytes + other.fp_bytes,
            int_bytes=self.int_bytes + other.int_bytes,
        )

    def scaled(self, factor: float) -> "ClassificationCost":
        """Cost of ``factor`` repetitions (e.g. decode steps)."""
        return ClassificationCost(
            fp_flops=self.fp_flops * factor,
            int_flops=self.int_flops * factor,
            fp_bytes=self.fp_bytes * factor,
            int_bytes=self.int_bytes * factor,
        )


def cost_of_full_classification(
    num_categories: int, hidden_dim: int, batch_size: int = 1
) -> ClassificationCost:
    """Cost of exact ``z = W h + b`` for a batch.

    The weight matrix streams once per batch (no reuse assumed at XC
    sizes — the matrix far exceeds any cache).
    """
    check_positive("num_categories", num_categories)
    check_positive("hidden_dim", hidden_dim)
    check_positive("batch_size", batch_size)
    flops = 2.0 * num_categories * hidden_dim * batch_size
    weight_bytes = 4.0 * num_categories * hidden_dim
    return ClassificationCost(
        fp_flops=flops, int_flops=0.0, fp_bytes=weight_bytes, int_bytes=0.0
    )


def cost_of_screened_classification(
    num_categories: int,
    hidden_dim: int,
    projection_dim: int,
    candidates_per_row: float,
    batch_size: int = 1,
    quantization_bits: int = 4,
    unique_candidate_fraction: float = 1.0,
) -> ClassificationCost:
    """Cost of screen → filter → candidates-only exact compute.

    The screening phase is integer (``quantization_bits`` wide) over the
    reduced dimension ``k``; the exact phase is FP32 over
    ``candidates_per_row`` gathered weight rows.  For batched execution
    the exact weight traffic is the *union* of candidate rows, captured
    by ``unique_candidate_fraction`` (1.0 = no overlap between rows).
    The projection itself is add/sub over the ternary ``P`` and is
    charged to the integer FLOP pool.
    """
    check_positive("num_categories", num_categories)
    check_positive("hidden_dim", hidden_dim)
    check_positive("projection_dim", projection_dim)
    check_positive("batch_size", batch_size)
    if candidates_per_row < 0:
        raise ValueError(f"candidates_per_row must be >= 0, got {candidates_per_row}")
    if not 0.0 <= unique_candidate_fraction <= 1.0:
        raise ValueError(
            f"unique_candidate_fraction must be in [0, 1], got {unique_candidate_fraction}"
        )

    # Screening: projection (k*d MACs) + screener matvec (l*k MACs).
    int_flops = 2.0 * batch_size * (
        projection_dim * hidden_dim + num_categories * projection_dim
    )
    int_bytes = num_categories * projection_dim * quantization_bits / 8.0
    int_bytes += projection_dim * hidden_dim * 2 / 8.0  # ternary P at 2 bits

    # Candidates-only exact compute.
    fp_flops = 2.0 * batch_size * candidates_per_row * hidden_dim
    unique_rows = min(
        batch_size * candidates_per_row * unique_candidate_fraction,
        float(num_categories),
    )
    fp_bytes = 4.0 * unique_rows * hidden_dim
    return ClassificationCost(
        fp_flops=fp_flops, int_flops=int_flops, fp_bytes=fp_bytes, int_bytes=int_bytes
    )


def cost_of_screened_output(
    classifier: FullClassifier,
    screener: ScreeningModule,
    output: ScreenedOutput,
) -> ClassificationCost:
    """Measured cost of an actual :class:`ScreenedOutput` (uses the real
    per-batch candidate counts and row-union)."""
    union = output.candidates.union().size
    bits = screener.quantization_bits if screener.quantization_bits else 32
    avg_candidates = output.exact_count / max(output.batch_size, 1)
    unique_fraction = union / max(output.exact_count, 1)
    return cost_of_screened_classification(
        num_categories=classifier.num_categories,
        hidden_dim=classifier.hidden_dim,
        projection_dim=screener.projection_dim,
        candidates_per_row=avg_candidates,
        batch_size=output.batch_size,
        quantization_bits=bits,
        unique_candidate_fraction=unique_fraction,
    )


# ----------------------------------------------------------------------
# quality metrics
# ----------------------------------------------------------------------
def candidate_recall(
    exact_logits: np.ndarray, output: ScreenedOutput, k: int = 1
) -> float:
    """Fraction of the exact top-``k`` categories that screening caught.

    This is the metric that decides end-task quality: if the true
    top-k is inside the candidate set, the mixed output's top-k is
    exact.
    """
    from repro.linalg.topk import top_k_indices

    exact = np.asarray(exact_logits)
    if exact.shape != output.logits.shape:
        raise ValueError(
            f"exact logits shape {exact.shape} != output shape {output.logits.shape}"
        )
    true_top = top_k_indices(exact, k, sort=False)
    hits = 0
    for row, candidates in enumerate(output.candidates):
        hits += np.isin(true_top[row], candidates).sum()
    return hits / (exact.shape[0] * k)


def approximation_error(exact_logits: np.ndarray, approximate_logits: np.ndarray) -> float:
    """Relative L2 error of the screener's approximation."""
    exact = np.asarray(exact_logits, dtype=np.float64)
    approx = np.asarray(approximate_logits, dtype=np.float64)
    if exact.shape != approx.shape:
        raise ValueError(f"shape mismatch: {exact.shape} vs {approx.shape}")
    denom = np.linalg.norm(exact)
    if denom == 0:
        return float(np.linalg.norm(approx))
    return float(np.linalg.norm(exact - approx) / denom)


def top1_agreement(exact_logits: np.ndarray, output: ScreenedOutput) -> float:
    """Fraction of rows whose mixed-output argmax equals the exact argmax."""
    exact = np.asarray(exact_logits)
    return float(
        np.mean(np.argmax(exact, axis=-1) == np.argmax(output.logits, axis=-1))
    )
