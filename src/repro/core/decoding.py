"""Sequence decoding with a screened output layer.

The paper's motivating use of top-K accuracy: "in neural machine
translation, we only use the top-K values of softmax-normalized
probabilities to select the translated words, where K is the beam
search size."  This module provides greedy and beam-search decoding
over any step function (e.g. :meth:`repro.models.gnmt.GNMTModel.
decode_step`) and any classifier exposing ``forward``/``logits`` —
exact or screened — so translation experiments can swap the output
layer without touching the decoder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.linalg.functional import log_softmax
from repro.utils.validation import check_positive

#: step_fn(token_ids, state) -> (features (batch, d), new_state)
StepFn = Callable[[np.ndarray, object], Tuple[np.ndarray, object]]


def _log_probs(classifier, features: np.ndarray) -> np.ndarray:
    """Log-probabilities from an exact or screened classifier."""
    if hasattr(classifier, "forward"):  # screened pipeline
        logits = classifier.forward(features).logits
    else:
        logits = classifier.logits(features)
    return log_softmax(logits, axis=-1)


@dataclass
class DecodeResult:
    """Decoded token sequences and their cumulative log-probabilities."""

    tokens: np.ndarray  # (batch, steps) for greedy; (batch, beams, steps)
    scores: np.ndarray

    @property
    def steps(self) -> int:
        return self.tokens.shape[-1]


def greedy_decode(
    step_fn: StepFn,
    classifier,
    start_tokens: np.ndarray,
    steps: int,
    state: object = None,
    eos_token: Optional[int] = None,
) -> DecodeResult:
    """Greedy decoding: pick the argmax token at each step."""
    check_positive("steps", steps)
    tokens = np.asarray(start_tokens, dtype=np.intp).reshape(-1)
    batch = tokens.shape[0]
    output = np.empty((batch, steps), dtype=np.intp)
    scores = np.zeros(batch)
    finished = np.zeros(batch, dtype=bool)

    current = tokens
    for t in range(steps):
        features, state = step_fn(current, state)
        log_probs = _log_probs(classifier, features)
        current = np.argmax(log_probs, axis=-1)
        step_scores = log_probs[np.arange(batch), current]
        scores += np.where(finished, 0.0, step_scores)
        output[:, t] = current
        if eos_token is not None:
            finished |= current == eos_token
            if finished.all():
                output[:, t + 1 :] = eos_token
                break
    return DecodeResult(tokens=output, scores=scores)


def beam_search_decode(
    step_fn: StepFn,
    classifier,
    start_token: int,
    steps: int,
    beam_width: int = 4,
    state: object = None,
    length_penalty: float = 0.0,
) -> DecodeResult:
    """Beam search for a single sequence (batch dimension = beams).

    ``step_fn`` must accept a batch of ``beam_width`` tokens and a state
    holding one entry per beam (list-like); states are re-ordered as
    beams are re-ranked.  ``length_penalty`` > 0 favours longer outputs
    (GNMT-style ``((5+len)/6)^α`` normalization).
    """
    check_positive("steps", steps)
    check_positive("beam_width", beam_width)

    tokens = np.full(beam_width, start_token, dtype=np.intp)
    histories: List[List[int]] = [[] for _ in range(beam_width)]
    scores = np.full(beam_width, -np.inf)
    scores[0] = 0.0  # all beams start identical; keep one live

    for t in range(steps):
        features, state = step_fn(tokens, state)
        log_probs = _log_probs(classifier, features)  # (beams, vocab)
        vocab = log_probs.shape[-1]
        expanded = scores[:, None] + log_probs  # (beams, vocab)
        flat = expanded.ravel()
        top = np.argpartition(flat, -beam_width)[-beam_width:]
        top = top[np.argsort(-flat[top])]
        beam_idx, token_idx = np.divmod(top, vocab)

        histories = [histories[b] + [int(tok)] for b, tok in zip(beam_idx, token_idx)]
        scores = flat[top]
        tokens = token_idx.astype(np.intp)
        state = _reorder_state(state, beam_idx)

    lengths = np.full(beam_width, steps, dtype=np.float64)
    if length_penalty > 0:
        normalizer = ((5.0 + lengths) / 6.0) ** length_penalty
        ranked = np.argsort(-(scores / normalizer))
    else:
        ranked = np.argsort(-scores)
    ordered = np.array([histories[i] for i in ranked], dtype=np.intp)
    return DecodeResult(tokens=ordered[None, :, :], scores=scores[ranked][None, :])


def _reorder_state(state: object, beam_idx: np.ndarray) -> object:
    """Re-index per-beam state after beam re-ranking."""
    if state is None:
        return None
    if isinstance(state, (int, float, complex, str, bytes)):
        return state  # beam-invariant scalar state passes through
    if isinstance(state, np.ndarray):
        if state.ndim == 0:
            return state
        return state[beam_idx]
    if isinstance(state, (list, tuple)):
        reordered = [_reorder_state(s, beam_idx) for s in state]
        return type(state)(reordered)
    raise TypeError(f"cannot reorder decoder state of type {type(state)!r}")
