"""The paper's primary contribution: approximate screening for XC.

Public surface:

* :class:`FullClassifier` — the exact softmax/sigmoid classifier
  ``z = W h + b`` (paper Eq. 1-2).
* :class:`ScreeningModule` / :class:`ScreeningConfig` — the lightweight
  screener ``z̃ = W̃ P h + b̃`` (Eq. 3) with INT4 quantized inference.
* :func:`train_screener` — Algorithm 1 (MSE distillation, Eq. 4).
* :class:`CandidateSelector` — top-m / threshold filtering.
* :class:`ApproximateScreeningClassifier` — the end-to-end inference
  pipeline: screen, filter, candidates-only exact compute, mixed output.
"""

from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningConfig, ScreeningModule
from repro.core.weightstore import QuantizedExactStore, STORE_KINDS
from repro.core.training import TrainingReport, train_screener
from repro.core.candidates import CandidateSelector, CandidateSet
from repro.core.pipeline import (
    ApproximateScreeningClassifier,
    ScreenedOutput,
    StreamedOutput,
)
from repro.core.metrics import (
    ClassificationCost,
    approximation_error,
    candidate_recall,
    cost_of_full_classification,
    cost_of_screened_classification,
)
from repro.core.decoding import DecodeResult, beam_search_decode, greedy_decode
from repro.core.tuning import TuningResult, tune_budget_for_recall, tune_threshold_for_recall
from repro.core.serialization import (
    load_classifier,
    load_quantized_store,
    load_screener,
    save_classifier,
    save_quantized_store,
    save_screener,
)

__all__ = [
    "FullClassifier",
    "ScreeningConfig",
    "ScreeningModule",
    "train_screener",
    "TrainingReport",
    "CandidateSelector",
    "CandidateSet",
    "ApproximateScreeningClassifier",
    "ScreenedOutput",
    "StreamedOutput",
    "ClassificationCost",
    "candidate_recall",
    "approximation_error",
    "cost_of_full_classification",
    "cost_of_screened_classification",
    "greedy_decode",
    "beam_search_decode",
    "DecodeResult",
    "QuantizedExactStore",
    "STORE_KINDS",
    "save_screener",
    "load_screener",
    "save_classifier",
    "load_classifier",
    "save_quantized_store",
    "load_quantized_store",
    "tune_budget_for_recall",
    "tune_threshold_for_recall",
    "TuningResult",
]
