"""Serving layer: one front door over every engine backend.

``repro.serving`` turns the repository's batch engines into a request
server.  :mod:`~repro.serving.backend` defines the
:class:`~repro.serving.backend.EngineBackend` protocol that the
single-node pipeline, the sequential sharded classifier and the
process-parallel fleet all satisfy;
:mod:`~repro.serving.frontdoor` coalesces single-request traffic into
micro-batches under a size-or-deadline flush policy with admission
control and SLO deadline propagation;
:mod:`~repro.serving.cache` short-circuits repeated/near-duplicate
queries through a bounded LRU keyed on the INT4-quantized hidden
vector; and :mod:`~repro.serving.loadgen` offers open- and closed-loop
Zipfian load for benchmarking the whole stack.
"""

from repro.serving.backend import (
    EngineBackend,
    is_engine_backend,
    propagates_deadlines,
    supports_autoscaling,
)
from repro.serving.cache import ResultCache, quantized_key
from repro.serving.frontdoor import (
    DeadlineExceededError,
    FrontDoor,
    FrontDoorClosedError,
    FrontDoorError,
    QueueFullError,
    Reply,
    RowForward,
    RowStreamed,
)
from repro.serving.loadgen import (
    DriftingZipfianMix,
    LoadReport,
    ZipfianMix,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "EngineBackend",
    "is_engine_backend",
    "propagates_deadlines",
    "supports_autoscaling",
    "FrontDoor",
    "Reply",
    "RowForward",
    "RowStreamed",
    "FrontDoorError",
    "QueueFullError",
    "DeadlineExceededError",
    "FrontDoorClosedError",
    "ResultCache",
    "quantized_key",
    "ZipfianMix",
    "DriftingZipfianMix",
    "LoadReport",
    "run_open_loop",
    "run_closed_loop",
]
