"""The ``EngineBackend`` protocol: one contract for every serving engine.

Three execution engines grew up in this repository — the single-node
:class:`~repro.core.pipeline.ApproximateScreeningClassifier`, the
sequential :class:`~repro.distributed.sharding.ShardedClassifier` and
the process-parallel
:class:`~repro.distributed.parallel.ParallelShardedEngine` — and they
already answer the same questions (``forward`` / ``forward_streaming``
/ ``top_k`` / ``predict`` over a feature batch).  This module writes
that shared surface down as a :class:`typing.Protocol` so the serving
front door (:mod:`repro.serving.frontdoor`), the load generator and the
benchmarks can hold *any* of them behind one name — and so the next
backend (a sketch-based screener, a replicated fleet) plugs in by
satisfying the contract instead of by being special-cased.

The contract
------------
* ``num_categories`` / ``hidden_dim`` — the model geometry; the front
  door validates request shapes against ``hidden_dim``.
* ``forward(features)`` — dense screened inference over a ``(batch,
  hidden_dim)`` float array; rows are independent, which is what makes
  request coalescing legal (per-row results do not depend on batch
  membership; the differential tests hold the front door to this).
* ``forward_streaming(features, block_categories=None)`` — the
  candidates-only blocked path.
* ``top_k(features, k)`` — per-row top-k; backends return either a
  bare indices array (single-node) or an ``(indices, scores)`` pair
  (sharded reduce) — the front door splits both row-wise unchanged.
* ``predict(features)`` — per-row argmax category.
* ``close()`` — release serving resources (worker fleets, shared
  segments, workspaces); idempotent.  Backends are context managers.

Deadline propagation rides on a *conventional* attribute rather than a
method: a backend that honors per-request reply budgets exposes a
mutable ``request_timeout`` attribute (the parallel engine's
supervision deadline).  The front door narrows it to the tightest
remaining SLO budget in each micro-batch before dispatch; backends
without the attribute (in-process engines whose latency the flush
policy already bounds) are simply dispatched as-is.
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "EngineBackend",
    "is_engine_backend",
    "propagates_deadlines",
    "supports_autoscaling",
]


@runtime_checkable
class EngineBackend(Protocol):
    """Structural contract every serving engine satisfies.

    ``isinstance(obj, EngineBackend)`` checks attribute presence (the
    :func:`typing.runtime_checkable` semantics); the behavioural half
    of the contract — row independence, bit-identity across backends —
    is enforced by the differential tests in
    ``tests/test_serving_frontdoor.py`` and
    ``tests/test_distributed_parallel.py``.
    """

    @property
    def num_categories(self) -> int: ...

    @property
    def hidden_dim(self) -> int: ...

    def forward(self, features: np.ndarray): ...

    def forward_streaming(
        self, features: np.ndarray, block_categories: Optional[int] = None
    ): ...

    def top_k(self, features: np.ndarray, k: int): ...

    def predict(self, features: np.ndarray) -> np.ndarray: ...

    def close(self) -> None: ...


def is_engine_backend(obj) -> bool:
    """``True`` when ``obj`` satisfies the :class:`EngineBackend` surface."""
    return isinstance(obj, EngineBackend)


def propagates_deadlines(backend) -> bool:
    """``True`` when the backend honors a mutable ``request_timeout``
    (the supervision deadline the front door narrows per micro-batch)."""
    return hasattr(backend, "request_timeout")


def supports_autoscaling(backend) -> bool:
    """``True`` when the backend runs an elastic scaling policy.

    Like deadline propagation, this rides on a convention rather than
    the protocol: a backend that scales exposes ``autoscale_tick()``
    (safe to call between requests; evaluates the policy and applies
    replica changes) plus a non-``None`` ``autoscaler`` attribute.
    The front door drives the tick from its batcher thread — the only
    thread that touches the backend — between micro-batches.
    """
    return (
        hasattr(backend, "autoscale_tick")
        and getattr(backend, "autoscaler", None) is not None
    )
