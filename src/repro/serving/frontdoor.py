"""The serving front door: single requests in, micro-batches out.

Production XC serving traffic arrives one request at a time, but every
engine in this repository earns its throughput from batching — the
screening GEMM, the union gather and the per-shard scatter all amortize
per-batch overheads across rows.  :class:`FrontDoor` closes that gap:
callers submit single feature rows (from any thread) and a dedicated
batcher thread coalesces them into dynamic micro-batches under a
**size-or-deadline** flush policy, dispatches each batch to one
:class:`~repro.serving.backend.EngineBackend`, and splits the batched
result back into per-request replies.

The three policies, in the order a request meets them:

* **Admission control** — the intake queue is bounded.  A ``submit``
  arriving when ``queue_limit`` requests are already waiting is shed
  immediately with :class:`QueueFullError` (callers retry or back off);
  the engine never sees overload, so in-flight requests keep their
  latency.
* **Flush policy** — a batch dispatches when ``max_batch`` rows have
  coalesced (size trigger) or when the oldest queued request has waited
  ``flush_window_s`` (deadline trigger), whichever is first.  A queued
  request's SLO deadline can pull the flush earlier — the batcher never
  idles past the point where a request would expire waiting.
* **Deadline propagation** — each request may carry a per-request SLO
  budget (``slo_s``).  A request whose budget is exhausted by the time
  its batch dispatches is shed with :class:`DeadlineExceededError`
  rather than served late.  For backends that honor supervision
  deadlines (:func:`~repro.serving.backend.propagates_deadlines`), the
  batch's tightest remaining budget **narrows** the backend's
  ``request_timeout`` for that dispatch — a 10 ms SLO becomes a 10 ms
  worker reply deadline instead of the fleet default, so a stuck shard
  costs one SLO, not one supervision timeout.

Results are returned as :class:`concurrent.futures.Future` objects
resolving to :class:`Reply` records.  Each reply carries the batch id,
its row index within the batch and the batch size, so differential
tests can replay the *exact* micro-batches the front door formed
against a direct backend call and require bit-identical rows.

Thread-safety: ``submit``/``call`` may be invoked from any number of
threads; the backend itself is only ever touched by the single batcher
thread, which keeps single-threaded engines (the parallel fleet's
request pipeline among them) safe behind the door.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.pipeline import DegradedOutput, ScreenedOutput, StreamedOutput
from repro.obs.recorder import NULL_RECORDER
from repro.serving.backend import propagates_deadlines, supports_autoscaling

__all__ = [
    "FrontDoor",
    "Reply",
    "RowForward",
    "RowStreamed",
    "FrontDoorError",
    "QueueFullError",
    "DeadlineExceededError",
    "FrontDoorClosedError",
]


class FrontDoorError(RuntimeError):
    """Base class for every error the front door sheds a request with."""


class QueueFullError(FrontDoorError):
    """Admission control: the intake queue is at its high-water mark."""


class DeadlineExceededError(FrontDoorError):
    """The request's SLO budget expired before its batch dispatched."""


class FrontDoorClosedError(FrontDoorError):
    """The front door is closed (or closed while the request waited)."""


@dataclass(frozen=True)
class RowForward:
    """One request's slice of a batched ``forward`` result.

    ``logits`` is the mixed approximate/exact score row and
    ``candidates`` the indices that are exact — copies, so the reply
    outlives the batch arrays.
    """

    logits: np.ndarray
    candidates: np.ndarray


@dataclass(frozen=True)
class RowStreamed:
    """One request's slice of a batched ``forward_streaming`` result.

    ``exact_values``/``approximate_values`` align with ``candidates``
    (ascending column order), exactly as in
    :class:`~repro.core.pipeline.StreamedOutput`.
    """

    candidates: np.ndarray
    exact_values: np.ndarray
    approximate_values: np.ndarray


@dataclass(frozen=True)
class Reply:
    """One served request: its per-row value plus serving metadata.

    ``cached=True`` marks a reply served straight from the result cache
    (no batch was formed: ``batch_id`` is ``-1`` and the batch fields
    describe the degenerate single-row batch).
    """

    value: Any
    degraded: bool
    failures: Tuple[Any, ...]
    latency_s: float
    batch_id: int
    batch_index: int
    batch_size: int
    cached: bool = False


@dataclass
class _Pending:
    """A queued request awaiting its micro-batch."""

    op: str
    features: np.ndarray  # shape (1, hidden_dim)
    kwargs: Dict[str, Any]
    future: Future
    enqueued: float  # monotonic
    deadline: Optional[float]  # monotonic, None = no SLO

    def batch_key(self) -> Tuple[str, Tuple[Tuple[str, Any], ...]]:
        return (self.op, tuple(sorted(self.kwargs.items())))


_VALID_OPS = ("forward", "forward_streaming", "top_k", "predict")


class FrontDoor:
    """Micro-batching serving front door over one engine backend.

    Parameters
    ----------
    backend:
        Any :class:`~repro.serving.backend.EngineBackend`.  Only the
        batcher thread touches it.
    max_batch:
        Size trigger — a batch dispatches as soon as this many
        compatible requests have coalesced.
    flush_window_s:
        Deadline trigger — the longest the oldest queued request waits
        before its batch dispatches regardless of size.  The window is
        the throughput/latency knob the serving benchmark sweeps.
    queue_limit:
        Admission high-water mark: ``submit`` raises
        :class:`QueueFullError` once this many requests are queued.
    default_slo_s:
        SLO budget applied to requests that do not pass ``slo_s``;
        ``None`` means no deadline by default.
    cache:
        Optional :class:`~repro.serving.cache.ResultCache`.  A request
        whose quantized key (and, in the default verified mode, exact
        float row) matches a cached entry is answered immediately from
        ``submit`` — it never enters the queue, never joins a batch and
        never touches the backend, so repeated/near-duplicate queries
        under a Zipfian mix cost a dictionary lookup instead of a
        screening pass.  Non-degraded dispatch results populate the
        cache; degraded results are never cached (a later healthy fleet
        must not keep serving holes).
    recorder:
        Observability sink (``repro.obs`` recorder contract); defaults
        to the no-op recorder.
    autoscale_interval_s:
        Minimum seconds between elastic-scaling ticks when the backend
        runs an autoscaler
        (:func:`~repro.serving.backend.supports_autoscaling`).  The
        batcher thread — the only thread that touches the backend —
        calls ``backend.autoscale_tick()`` between micro-batches (and
        periodically while idle), so replica membership only ever
        changes with no dispatch in flight.  Ignored for backends
        without an autoscaler.
    """

    def __init__(
        self,
        backend,
        *,
        max_batch: int = 32,
        flush_window_s: float = 0.002,
        queue_limit: int = 256,
        default_slo_s: Optional[float] = None,
        cache=None,
        recorder=None,
        autoscale_interval_s: float = 0.05,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if flush_window_s < 0:
            raise ValueError(f"flush_window_s must be >= 0, got {flush_window_s}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.backend = backend
        self.max_batch = int(max_batch)
        self.flush_window_s = float(flush_window_s)
        self.queue_limit = int(queue_limit)
        self.default_slo_s = default_slo_s
        if autoscale_interval_s <= 0:
            raise ValueError(
                f"autoscale_interval_s must be > 0, got {autoscale_interval_s}"
            )
        self.cache = cache
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._default_request_timeout = getattr(backend, "request_timeout", None)
        self.autoscale_interval_s = float(autoscale_interval_s)
        self._autoscaling = supports_autoscaling(backend)
        self._last_autoscale = time.monotonic()

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._queue: Deque[_Pending] = deque()
        self._closed = False
        self._batch_ids = itertools.count()

        # Plain-int mirrors of the serving counters, for stats() without
        # a live recorder attached.
        self.submitted = 0
        self.served = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self.batches = 0
        self.flush_on_size = 0
        self.flush_on_deadline = 0
        self.dispatch_errors = 0
        self.cached_replies = 0
        self.autoscale_ticks = 0
        self.autoscale_errors = 0

        self._batcher = threading.Thread(
            target=self._batch_loop, name="frontdoor-batcher", daemon=True
        )
        self._batcher.start()

    # ------------------------------------------------------------------
    # Intake (any thread)
    # ------------------------------------------------------------------

    def submit(
        self,
        features: np.ndarray,
        op: str = "forward",
        *,
        k: Optional[int] = None,
        block_categories: Optional[int] = None,
        slo_s: Optional[float] = None,
    ) -> "Future[Reply]":
        """Queue one single-row request; returns a future of its reply.

        ``features`` is one example — shape ``(hidden_dim,)`` or
        ``(1, hidden_dim)``.  ``op`` selects the backend entry point;
        ``k`` is required for ``top_k`` and ``block_categories`` is
        optional for ``forward_streaming``.  ``slo_s`` is this
        request's end-to-end budget (seconds from now); expired
        requests are shed, never served late.
        """
        if op not in _VALID_OPS:
            raise ValueError(f"op must be one of {_VALID_OPS}, got {op!r}")
        row = np.asarray(features, dtype=np.float64)
        if row.ndim == 1:
            row = row[np.newaxis, :]
        if row.ndim != 2 or row.shape[0] != 1:
            raise ValueError(
                f"submit() takes one request row, got shape {np.shape(features)}"
            )
        hidden = getattr(self.backend, "hidden_dim", None)
        if hidden is not None and row.shape[1] != hidden:
            raise ValueError(
                f"request has {row.shape[1]} features, backend expects {hidden}"
            )
        kwargs: Dict[str, Any] = {}
        if op == "top_k":
            if k is None:
                raise ValueError("op='top_k' requires k")
            kwargs["k"] = int(k)
        elif op == "forward_streaming" and block_categories is not None:
            kwargs["block_categories"] = int(block_categories)

        now = time.monotonic()
        if self.cache is not None:
            hit = self.cache.get(op, kwargs, row[0])
            if hit is not None:
                future: "Future[Reply]" = Future()
                with self._work:
                    if self._closed:
                        raise FrontDoorClosedError("front door is closed")
                    self.submitted += 1
                    self.served += 1
                    self.cached_replies += 1
                self.recorder.increment("serving.requests")
                self.recorder.increment("serving.served")
                latency = time.monotonic() - now
                self.recorder.observe("serving.e2e_latency_s", latency)
                future.set_result(
                    Reply(
                        value=hit,
                        degraded=False,
                        failures=(),
                        latency_s=latency,
                        batch_id=-1,
                        batch_index=0,
                        batch_size=1,
                        cached=True,
                    )
                )
                return future

        budget = slo_s if slo_s is not None else self.default_slo_s
        pending = _Pending(
            op=op,
            features=row,
            kwargs=kwargs,
            future=Future(),
            enqueued=now,
            deadline=None if budget is None else now + float(budget),
        )
        with self._work:
            if self._closed:
                raise FrontDoorClosedError("front door is closed")
            self.submitted += 1
            self.recorder.increment("serving.requests")
            if len(self._queue) >= self.queue_limit:
                self.shed_queue_full += 1
                self.recorder.increment("serving.shed_queue_full")
                raise QueueFullError(
                    f"intake queue at high-water mark ({self.queue_limit} queued)"
                )
            self._queue.append(pending)
            self.recorder.add_gauge("serving.queue_depth", 1.0)
            self._work.notify()
        return pending.future

    def call(
        self,
        features: np.ndarray,
        op: str = "forward",
        *,
        k: Optional[int] = None,
        block_categories: Optional[int] = None,
        slo_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Reply:
        """Blocking convenience wrapper: ``submit`` then wait."""
        future = self.submit(
            features, op, k=k, block_categories=block_categories, slo_s=slo_s
        )
        return future.result(timeout=timeout)

    # ------------------------------------------------------------------
    # Batcher (single thread)
    # ------------------------------------------------------------------

    def _batch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            if batch:
                self._dispatch(batch)
            # The backend is quiescent between dispatches — the one
            # moment replica membership may change under it.
            self._maybe_autoscale()

    def _maybe_autoscale(self) -> None:
        """Drive the backend's elastic-scaling tick, rate-limited.

        Batcher thread only.  A failing tick is counted and swallowed:
        scaling is an optimization, serving must not die for it.
        """
        if not self._autoscaling:
            return
        now = time.monotonic()
        if now - self._last_autoscale < self.autoscale_interval_s:
            return
        self._last_autoscale = now
        self.autoscale_ticks += 1
        self.recorder.increment("serving.autoscale_ticks")
        try:
            self.backend.autoscale_tick()
        except Exception:  # noqa: BLE001 — scaling must never kill serving
            self.autoscale_errors += 1
            self.recorder.increment("serving.autoscale_errors")

    def _next_batch(self) -> Optional[List[_Pending]]:
        """Block until a micro-batch is due, then claim it.

        Returns ``None`` only at shutdown with an empty queue (a close
        with queued work drains those batches first), and the empty
        list as an idle heartbeat for autoscaling backends — the
        batcher wakes every ``autoscale_interval_s`` to tick the
        scaler even when no traffic arrives.
        """
        with self._work:
            while True:
                if not self._queue:
                    if self._closed:
                        return None
                    if self._autoscaling:
                        self._work.wait(timeout=self.autoscale_interval_s)
                        if not self._queue and not self._closed:
                            return []
                    else:
                        self._work.wait()
                    continue
                head = self._queue[0]
                key = head.batch_key()
                compatible = 1
                for pending in itertools.islice(self._queue, 1, self.max_batch):
                    if pending.batch_key() != key:
                        break
                    compatible += 1
                flush_at = head.enqueued + self.flush_window_s
                # The wake-up folds deadlines across the WHOLE queue,
                # not just the head-compatible prefix: a tight-SLO
                # request stuck behind an incompatible head must still
                # pull the batcher awake — flushing the head batch
                # early is what lets the queue advance to it before
                # (or the moment) its budget expires, instead of the
                # batcher sleeping a full flush window on an idle
                # backend and shedding it long after the fact.
                for pending in self._queue:
                    if pending.deadline is not None:
                        flush_at = min(flush_at, pending.deadline)
                now = time.monotonic()
                if compatible >= self.max_batch:
                    self.flush_on_size += 1
                    self.recorder.increment("serving.flush_on_size")
                elif now >= flush_at or self._closed:
                    self.flush_on_deadline += 1
                    self.recorder.increment("serving.flush_on_deadline")
                else:
                    self._work.wait(timeout=flush_at - now)
                    continue
                batch = [self._queue.popleft() for _ in range(compatible)]
                self.recorder.add_gauge("serving.queue_depth", -float(compatible))
                return batch

    def _dispatch(self, batch: List[_Pending]) -> None:
        batch_id = next(self._batch_ids)
        now = time.monotonic()

        live: List[_Pending] = []
        for pending in batch:
            if pending.deadline is not None and now >= pending.deadline:
                self.shed_deadline += 1
                self.recorder.increment("serving.shed_deadline")
                pending.future.set_exception(
                    DeadlineExceededError(
                        f"SLO budget exhausted {now - pending.deadline:.4f}s "
                        "before dispatch"
                    )
                )
            else:
                live.append(pending)
        if not live:
            return

        self.batches += 1
        self.recorder.observe("serving.batch_size", float(len(live)))
        features = (
            live[0].features
            if len(live) == 1
            else np.concatenate([pending.features for pending in live], axis=0)
        )
        op = live[0].op
        kwargs = live[0].kwargs

        narrowed = False
        if propagates_deadlines(self.backend):
            budgets = [
                pending.deadline - now
                for pending in live
                if pending.deadline is not None
            ]
            if budgets:
                tightest = min(budgets)
                if self._default_request_timeout is not None:
                    tightest = min(tightest, self._default_request_timeout)
                self.backend.request_timeout = tightest
                narrowed = True
        try:
            with self.recorder.span("serving.dispatch"):
                output = getattr(self.backend, op)(features, **kwargs)
        except Exception as exc:  # noqa: BLE001 — forwarded to every caller
            self.dispatch_errors += 1
            self.recorder.increment("serving.dispatch_errors")
            for pending in live:
                pending.future.set_exception(exc)
            return
        finally:
            if narrowed:
                self.backend.request_timeout = self._default_request_timeout

        degraded = isinstance(output, DegradedOutput)
        failures: Tuple[Any, ...] = output.failures if degraded else ()
        result = output.result if degraded else output
        try:
            rows = _split_rows(op, result, len(live))
        except Exception as exc:  # noqa: BLE001 — forwarded to every caller
            self.dispatch_errors += 1
            self.recorder.increment("serving.dispatch_errors")
            for pending in live:
                pending.future.set_exception(exc)
            return

        if self.cache is not None and not degraded:
            # Populate from the batcher thread only; per-row values are
            # already copies, so cached replies own their arrays.
            for pending, value in zip(live, rows):
                self.cache.put(op, kwargs, pending.features[0], value)

        done = time.monotonic()
        for index, (pending, value) in enumerate(zip(live, rows)):
            latency = done - pending.enqueued
            self.served += 1
            self.recorder.increment("serving.served")
            self.recorder.observe("serving.e2e_latency_s", latency)
            pending.future.set_result(
                Reply(
                    value=value,
                    degraded=degraded,
                    failures=failures,
                    latency_s=latency,
                    batch_id=batch_id,
                    batch_index=index,
                    batch_size=len(live),
                )
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, drain: bool = True) -> None:
        """Stop the batcher.  ``drain=True`` (default) serves everything
        already queued first; ``drain=False`` sheds queued requests with
        :class:`FrontDoorClosedError`.  Idempotent; the backend is NOT
        closed (the caller owns it)."""
        with self._work:
            if self._closed:
                return
            self._closed = True
            if not drain:
                while self._queue:
                    pending = self._queue.popleft()
                    self.recorder.add_gauge("serving.queue_depth", -1.0)
                    pending.future.set_exception(
                        FrontDoorClosedError("front door closed before dispatch")
                    )
            self._work.notify_all()
        self._batcher.join()

    def __enter__(self) -> "FrontDoor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> Dict[str, object]:
        """Plain-int serving counters (mirrors of the obs metrics),
        plus the result cache's own block when a cache is attached."""
        with self._lock:
            stats: Dict[str, object] = {
                "submitted": self.submitted,
                "served": self.served,
                "shed_queue_full": self.shed_queue_full,
                "shed_deadline": self.shed_deadline,
                "batches": self.batches,
                "flush_on_size": self.flush_on_size,
                "flush_on_deadline": self.flush_on_deadline,
                "dispatch_errors": self.dispatch_errors,
                "cached_replies": self.cached_replies,
                "autoscaling": self._autoscaling,
                "autoscale_ticks": self.autoscale_ticks,
                "autoscale_errors": self.autoscale_errors,
                "queue_depth": len(self._queue),
            }
        if self.cache is not None:
            stats["cache"] = self.cache.stats()
        return stats


# ----------------------------------------------------------------------
# Row splitting
# ----------------------------------------------------------------------


def _split_rows(op: str, result, batch_size: int) -> List[Any]:
    """Split one batched backend result into ``batch_size`` per-row values.

    Every value is a copy — replies must outlive the batch arrays the
    backend may reuse or that the next request overwrites.
    """
    if op == "forward":
        return _split_forward(result, batch_size)
    if op == "forward_streaming":
        return _split_streamed(result, batch_size)
    if op == "top_k":
        return _split_top_k(result, batch_size)
    if op == "predict":
        values = np.asarray(result)
        _check_rows(op, len(values), batch_size)
        return [values[i].copy() for i in range(batch_size)]
    raise ValueError(f"unknown op {op!r}")


def _split_forward(result: ScreenedOutput, batch_size: int) -> List[RowForward]:
    _check_rows("forward", result.logits.shape[0], batch_size)
    return [
        RowForward(
            logits=result.logits[i].copy(),
            candidates=np.asarray(result.candidates.indices[i]).copy(),
        )
        for i in range(batch_size)
    ]


def _split_streamed(result: StreamedOutput, batch_size: int) -> List[RowStreamed]:
    candidates = result.candidates
    _check_rows("forward_streaming", candidates.batch_size, batch_size)
    # exact/approximate values align with candidates.flat(): row-major,
    # so per-row slices are contiguous runs of length counts[i].
    offsets = np.concatenate(([0], np.cumsum(candidates.counts)))
    return [
        RowStreamed(
            candidates=np.asarray(candidates.indices[i]).copy(),
            exact_values=result.exact_values[offsets[i] : offsets[i + 1]].copy(),
            approximate_values=result.approximate_values[
                offsets[i] : offsets[i + 1]
            ].copy(),
        )
        for i in range(batch_size)
    ]


def _split_top_k(result, batch_size: int):
    if isinstance(result, tuple):  # sharded reduce: (indices, scores)
        indices, scores = result
        _check_rows("top_k", indices.shape[0], batch_size)
        return [
            (indices[i].copy(), scores[i].copy()) for i in range(batch_size)
        ]
    indices = np.asarray(result)  # single-node: bare indices
    _check_rows("top_k", indices.shape[0], batch_size)
    return [indices[i].copy() for i in range(batch_size)]


def _check_rows(op: str, got: int, expected: int) -> None:
    if got != expected:
        raise FrontDoorError(
            f"backend returned {got} rows for a {expected}-row {op} batch"
        )
