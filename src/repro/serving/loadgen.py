"""Load generation for the serving front door.

Two arrival models, matching how serving systems are actually measured:

* **Open loop** (:func:`run_open_loop`) — requests arrive on a Poisson
  process at a fixed offered rate, independent of how fast the system
  answers.  This is the honest model for latency percentiles: a slow
  system accumulates queueing delay instead of silently throttling the
  generator (the "coordinated omission" failure of naive closed loops).
* **Closed loop** (:func:`run_closed_loop`) — a fixed number of
  concurrent callers each issue a request, wait for the reply, and
  immediately issue the next.  This measures saturated throughput at a
  given concurrency.

Both draw requests from a **Zipfian mix** (:class:`ZipfianMix`): a pool
of distinct feature rows with rank–frequency weights ``rank^-s``, the
standard skew model for production query traffic (a few heads dominate,
a long tail keeps caches honest).

The generator never inspects engine internals — it only talks to the
:class:`~repro.serving.frontdoor.FrontDoor` public surface, and it
counts sheds (queue-full, deadline) separately from errors so the
benchmark can report loss honestly alongside latency.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.frontdoor import (
    DeadlineExceededError,
    FrontDoor,
    QueueFullError,
)

__all__ = [
    "ZipfianMix",
    "DriftingZipfianMix",
    "LoadReport",
    "run_open_loop",
    "run_closed_loop",
]


class ZipfianMix:
    """A Zipf-weighted pool of distinct request rows.

    ``pool`` holds ``pool_size`` feature rows drawn once; ``sample()``
    returns one row with probability proportional to ``rank^-s`` (rank
    1 is the hottest).  ``s = 0`` degenerates to uniform.
    """

    def __init__(
        self,
        hidden_dim: int,
        pool_size: int = 256,
        s: float = 1.1,
        seed: int = 0,
    ):
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if s < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {s}")
        self.rng = np.random.default_rng(seed)
        self.pool = self.rng.standard_normal((pool_size, hidden_dim))
        weights = np.arange(1, pool_size + 1, dtype=np.float64) ** -float(s)
        self.probabilities = weights / weights.sum()

    def sample(self) -> np.ndarray:
        index = self.rng.choice(self.pool.shape[0], p=self.probabilities)
        return self.pool[index]


class DriftingZipfianMix(ZipfianMix):
    """A Zipfian mix whose hot head moves — the non-stationary model.

    Production extreme-classification traffic shifts continuously (the
    Amazon case study in PAPERS.md): the categories that are hot this
    hour are not the ones the shard plan was sized on.  This mix models
    that deterministically: every ``shift_every`` samples the
    rank-to-row assignment rotates by ``shift`` positions
    (``np.roll`` of the probability vector), so probability mass —
    and with it the per-shard serving load — marches across the pool
    while the marginal skew stays exactly Zipf(``s``).  Determinism
    matters: the autoscaler differential tests replay the identical
    request sequence with scaling on and off.
    """

    def __init__(
        self,
        hidden_dim: int,
        pool_size: int = 256,
        s: float = 1.1,
        seed: int = 0,
        *,
        shift_every: int = 64,
        shift: Optional[int] = None,
    ):
        super().__init__(hidden_dim, pool_size=pool_size, s=s, seed=seed)
        if shift_every < 1:
            raise ValueError(f"shift_every must be >= 1, got {shift_every}")
        self.shift_every = int(shift_every)
        # Default drift step: a quarter-pool jump, large enough that a
        # couple of shifts move the head into a different shard stripe.
        self.shift = (
            max(1, pool_size // 4) if shift is None else int(shift) % pool_size
        )
        self.samples_drawn = 0
        self.shifts_applied = 0

    def sample(self) -> np.ndarray:
        if self.samples_drawn and self.samples_drawn % self.shift_every == 0:
            self.probabilities = np.roll(self.probabilities, self.shift)
            self.shifts_applied += 1
        self.samples_drawn += 1
        return super().sample()


@dataclass
class LoadReport:
    """What one load-generation run observed, end to end."""

    offered: int = 0
    served: int = 0
    shed_queue_full: int = 0
    shed_deadline: int = 0
    errors: int = 0
    duration_s: float = 0.0
    latencies_s: List[float] = field(default_factory=list)
    batch_sizes: List[int] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.served / self.duration_s if self.duration_s > 0 else 0.0

    def latency_percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0–100), seconds; NaN when empty."""
        if not self.latencies_s:
            return float("nan")
        return float(np.percentile(np.asarray(self.latencies_s), q))

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return float("nan")
        return float(np.mean(self.batch_sizes))

    def summary(self) -> Dict[str, float]:
        return {
            "offered": self.offered,
            "served": self.served,
            "shed_queue_full": self.shed_queue_full,
            "shed_deadline": self.shed_deadline,
            "errors": self.errors,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "mean_batch_size": self.mean_batch_size,
            "p50_ms": self.latency_percentile(50) * 1e3,
            "p90_ms": self.latency_percentile(90) * 1e3,
            "p99_ms": self.latency_percentile(99) * 1e3,
        }


def _account(report: LoadReport, future: Future, lock: threading.Lock) -> None:
    """Fold one settled future into the report (thread-safe)."""
    try:
        reply = future.result()
    except QueueFullError:
        with lock:
            report.shed_queue_full += 1
        return
    except DeadlineExceededError:
        with lock:
            report.shed_deadline += 1
        return
    except Exception:  # noqa: BLE001 — load gen keeps going, counts it
        with lock:
            report.errors += 1
        return
    with lock:
        report.served += 1
        report.latencies_s.append(reply.latency_s)
        report.batch_sizes.append(reply.batch_size)


def run_open_loop(
    door: FrontDoor,
    mix: ZipfianMix,
    *,
    rate_rps: float,
    duration_s: float,
    op: str = "forward",
    k: Optional[int] = None,
    slo_s: Optional[float] = None,
    seed: int = 0,
) -> LoadReport:
    """Offer Poisson arrivals at ``rate_rps`` for ``duration_s`` seconds.

    Arrival times are drawn up front from an exponential inter-arrival
    distribution and held to with ``sleep`` — the generator does not
    slow down when the system does, so queueing delay lands in the
    latency numbers where it belongs.
    """
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    rng = np.random.default_rng(seed)
    report = LoadReport()
    lock = threading.Lock()
    futures: List[Future] = []

    start = time.monotonic()
    next_arrival = start
    while True:
        next_arrival += rng.exponential(1.0 / rate_rps)
        if next_arrival - start > duration_s:
            break
        delay = next_arrival - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        report.offered += 1
        try:
            future = door.submit(mix.sample(), op, k=k, slo_s=slo_s)
        except QueueFullError:
            with lock:
                report.shed_queue_full += 1
            continue
        future.add_done_callback(lambda f: _account(report, f, lock))
        futures.append(future)
    for future in futures:
        try:
            future.exception()  # waits for settlement; accounting is in the callback
        except Exception:  # noqa: BLE001
            pass
    report.duration_s = time.monotonic() - start
    return report


def run_closed_loop(
    door: FrontDoor,
    mix: ZipfianMix,
    *,
    concurrency: int,
    requests_per_worker: int,
    op: str = "forward",
    k: Optional[int] = None,
    slo_s: Optional[float] = None,
) -> LoadReport:
    """``concurrency`` workers each issue ``requests_per_worker`` calls
    back to back (issue → wait → issue)."""
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    report = LoadReport()
    lock = threading.Lock()

    def worker() -> None:
        for _ in range(requests_per_worker):
            with lock:
                report.offered += 1
            try:
                future = door.submit(mix.sample(), op, k=k, slo_s=slo_s)
            except QueueFullError:
                with lock:
                    report.shed_queue_full += 1
                continue
            _account(report, _settled(future), lock)

    start = time.monotonic()
    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.monotonic() - start
    return report


def _settled(future: Future) -> Future:
    """Wait for ``future`` to settle without raising, then return it."""
    try:
        future.exception()
    except Exception:  # noqa: BLE001
        pass
    return future
