"""Bounded LRU result cache keyed on the INT4-quantized hidden vector.

Production extreme-classification traffic repeats itself: a Zipfian
query mix re-submits the hot pool's embeddings over and over, and a
deterministic front-end model re-embeds identical inputs to identical
vectors.  The screening pipeline already quantizes everything it
touches to INT4 (:mod:`repro.linalg.quantize`), which hands the cache a
canonical, compact key for free: the symmetric INT4 code array of the
hidden vector plus its scale.  Two queries share a key exactly when
they quantize identically — byte-identical repeats always do, and
near-duplicates within quantization noise of a cached query do whenever
the perturbation neither moves any coordinate across a code boundary
nor changes the max-abs coordinate (which fixes the scale).

Soundness
---------
A shared key does **not** imply identical pipeline outputs: the exact
phase consumes the *raw* float vector, so two byte-different vectors
with equal INT4 codes generally score differently.  The cache is
therefore honest by default (``verify=True``): each entry stores the
original float row, and a key hit only counts as a cache hit when the
incoming row is ``np.array_equal`` to the stored one.  A key hit that
fails verification is counted in ``collisions`` and served as a miss —
so cache-on serving is **bit-identical** to cache-off serving
unconditionally (property-tested in ``tests/test_result_cache.py``).
``verify=False`` opts into approximate serving: any key hit returns the
cached reply, trading bounded quantization error for hit rate; outputs
are then only guaranteed identical for byte-identical repeats.

Thread-safety: all operations take one lock, so the cache may sit in
front of any number of submitter threads (the front door calls ``get``
from callers' threads and ``put`` from the batcher thread).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.linalg.quantize import _qrange
from repro.obs.recorder import NULL_RECORDER
from repro.utils.validation import check_positive

__all__ = ["ResultCache", "quantized_key"]


def quantized_key(row: np.ndarray, bits: int = 4) -> Tuple[bytes, float, int]:
    """The canonical quantized key of one feature row.

    Symmetric max-abs quantization, exactly as
    :func:`repro.linalg.quantize.quantize_symmetric` computes it for a
    1-D tensor: ``scale = max|x| / qmax``, ``codes = clip(round(x /
    scale))``.  The key is ``(codes bytes, scale, length)`` — the scale
    is part of the key because the INT4 representation *is* (codes,
    scale); dropping it would alias every pair of proportional vectors
    (``x`` and ``2x`` share codes) onto one entry.

    Non-finite rows have no quantized representation: a NaN coordinate
    makes ``max_abs`` NaN (which fails the ``> 0`` check, silently
    selecting ``scale = 1.0``) and ``np.round(nan).astype(np.int8)``
    is undefined behaviour whose result varies by platform — two runs
    could key the same row differently, or two different rows
    identically.  Such rows raise :class:`ValueError`; cache users
    should bypass caching for them (:class:`ResultCache` does).
    """
    array = np.ascontiguousarray(row, dtype=np.float64).reshape(-1)
    if array.size and not np.isfinite(array).all():
        raise ValueError(
            "quantized_key requires finite values; row contains NaN/inf"
        )
    qmin, qmax = _qrange(bits)
    max_abs = float(np.max(np.abs(array))) if array.size else 0.0
    scale = max_abs / qmax if max_abs > 0 else 1.0
    codes = np.clip(np.round(array / scale), qmin, qmax).astype(np.int8)
    return codes.tobytes(), scale, array.size


class ResultCache:
    """Bounded, thread-safe LRU cache of per-row serving replies.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least-recently-used entry is
        evicted past it.
    bits:
        Quantization width of the key (INT4 by default, matching the
        screener's datapath).
    verify:
        ``True`` (default): exact mode — a key hit must also match the
        stored float row byte-for-byte, so cached serving is
        bit-identical to uncached serving.  ``False``: approximate mode
        — any key hit is served (near-duplicates included).
    recorder:
        ``repro.obs`` recorder; hit/miss/eviction/collision counters
        are mirrored there under ``serving.cache.*``.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        bits: int = 4,
        verify: bool = True,
        recorder=None,
    ):
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self.bits = int(bits)
        self.verify = bool(verify)
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self._lock = threading.Lock()
        #: key -> (original float row, cached per-row value)
        self._entries: "OrderedDict[tuple, Tuple[np.ndarray, Any]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Key hits rejected by row verification — distinct vectors
        #: whose INT4 codes (and scale) coincide.
        self.collisions = 0
        #: Lookups/inserts bypassed because the row held NaN/inf (no
        #: well-defined quantized key exists for it).
        self.non_finite = 0

    # ------------------------------------------------------------------
    def _key(self, op: str, kwargs: Dict[str, Any], row: np.ndarray) -> tuple:
        return (
            op,
            tuple(sorted(kwargs.items())),
            quantized_key(row, self.bits),
        )

    def _bypass_non_finite(self, flat: np.ndarray) -> bool:
        """``True`` when ``flat`` has no quantized key (NaN/inf row):
        the row is served uncached rather than keyed undefined."""
        if flat.size and not np.isfinite(flat).all():
            with self._lock:
                self.non_finite += 1
            self.recorder.increment("serving.cache.non_finite")
            return True
        return False

    def get(
        self, op: str, kwargs: Dict[str, Any], row: np.ndarray
    ) -> Optional[Any]:
        """The cached value for ``(op, kwargs, row)``, or ``None``.

        A hit refreshes the entry's LRU position.  ``row`` is one
        feature vector (any shape that flattens to ``hidden_dim``).
        Non-finite rows always miss (and are never inserted): they have
        no well-defined quantized key.
        """
        flat = np.asarray(row, dtype=np.float64).reshape(-1)
        if self._bypass_non_finite(flat):
            return None
        key = self._key(op, kwargs, row)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_row, value = entry
                if not self.verify or np.array_equal(stored_row, flat):
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.recorder.increment("serving.cache.hits")
                    return value
                self.collisions += 1
                self.recorder.increment("serving.cache.collisions")
            self.misses += 1
            self.recorder.increment("serving.cache.misses")
            return None

    def put(
        self, op: str, kwargs: Dict[str, Any], row: np.ndarray, value: Any
    ) -> None:
        """Insert (or refresh) one entry, evicting LRU entries past
        capacity.  ``value`` must be immutable from the caller's point
        of view — a hit hands the same object to every future caller.
        """
        flat = np.array(row, dtype=np.float64, copy=True).reshape(-1)
        if self._bypass_non_finite(flat):
            return
        key = self._key(op, kwargs, row)
        with self._lock:
            self._entries[key] = (flat, value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                self.recorder.increment("serving.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list:
        """Current keys in LRU order (oldest first) — test hook for the
        eviction-order invariants."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, object]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "bits": self.bits,
                "verify": self.verify,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "collisions": self.collisions,
                "non_finite": self.non_finite,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"ResultCache(capacity={self.capacity}, bits={self.bits}, "
            f"verify={self.verify}, size={len(self)})"
        )
