"""A GPU host model (paper Section 2.2 / Fig. 3).

The paper motivates ENMC partly by GPUs' limited device memory: XC
weights exceed HBM capacity, forcing host↔device transfers over PCIe.
This roofline-plus-transfer model quantifies that: classification runs
at HBM bandwidth only for the resident slice of ``W``; the overflow
streams over the interconnect every batch.

Used by the ``examples``/analysis layer; ENMC's headline comparisons
(Fig. 13) use the CPU baseline as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ClassificationCost
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class GPUModel:
    """A V100-class accelerator (the paper's era)."""

    name: str = "V100"
    peak_flops: float = 14e12  # FP32
    hbm_bandwidth: float = 900e9
    device_memory_bytes: float = 32e9
    interconnect_bandwidth: float = 16e9  # PCIe 3 x16
    interconnect_latency_s: float = 10e-6
    kernel_launch_s: float = 5e-6

    def __post_init__(self) -> None:
        check_positive("peak_flops", self.peak_flops)
        check_positive("hbm_bandwidth", self.hbm_bandwidth)

    # ------------------------------------------------------------------
    def classification_seconds(
        self,
        num_categories: int,
        hidden_dim: int,
        batch_size: int = 1,
        resident_fraction: float = None,
    ) -> float:
        """Exact classification with capacity-driven weight spill.

        ``resident_fraction`` defaults to whatever share of ``W`` fits
        in device memory (leaving 20% headroom for activations).
        """
        check_positive("num_categories", num_categories)
        check_positive("hidden_dim", hidden_dim)
        weight_bytes = 4.0 * num_categories * hidden_dim
        if resident_fraction is None:
            budget = 0.8 * self.device_memory_bytes
            resident_fraction = min(1.0, budget / weight_bytes)
        if not 0.0 <= resident_fraction <= 1.0:
            raise ValueError(
                f"resident_fraction must be in [0, 1], got {resident_fraction}"
            )

        flops = 2.0 * num_categories * hidden_dim * batch_size
        compute = flops / self.peak_flops
        hbm_time = weight_bytes * resident_fraction / self.hbm_bandwidth
        spill_bytes = weight_bytes * (1.0 - resident_fraction)
        transfer = 0.0
        if spill_bytes > 0:
            transfer = (
                self.interconnect_latency_s
                + spill_bytes / self.interconnect_bandwidth
            )
        return max(compute, hbm_time) + transfer + self.kernel_launch_s

    def screened_classification_seconds(
        self, cost: ClassificationCost, resident: bool = True
    ) -> float:
        """Screened classification; the screener fits on-device."""
        compute = cost.flops / self.peak_flops
        bandwidth = self.hbm_bandwidth if resident else self.interconnect_bandwidth
        memory = cost.bytes / bandwidth
        return max(compute, memory) + self.kernel_launch_s

    def capacity_exceeded(self, num_categories: int, hidden_dim: int) -> bool:
        """Does the classifier overflow device memory (Fig. 3's case)?"""
        return 4.0 * num_categories * hidden_dim > 0.8 * self.device_memory_bytes


V100 = GPUModel()
