"""A roofline model of the CPU baseline (Intel Xeon Platinum 8280).

Section 6.2: "The CPU baseline is Intel Xeon Platinum 8280 @ 2.7GHz,
28 physical cores, 6 DDR4-2666 channels, 512 GB, 128 GB/s ideal
bandwidth."  Execution time of a kernel is the max of its compute time
at (de-rated) peak FLOPs and its memory time at (de-rated) stream
bandwidth — the roofline the paper plots in Fig. 5(b).

Efficiency de-ratings are explicit fields:

* ``stream_efficiency`` — fraction of ideal bandwidth achieved by a
  sequential FP32 weight stream (STREAM-like, ~0.75);
* ``quantized_stream_efficiency`` — sub-word INT4 tiles read through a
  CPU cache hierarchy waste bus width on unpacking (~0.5);
* ``gather_latency_s`` — per-row random access latency for candidate
  gathers;
* ``invocation_overhead_s`` — per-layer framework/launch overhead (the
  paper's measured screening overhead of 3.1% of full classification
  on CPU includes this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import ClassificationCost
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class CPUModel:
    """Roofline CPU with explicit efficiency de-ratings."""

    name: str = "Xeon-Platinum-8280"
    cores: int = 28
    frequency_hz: float = 2.7e9
    flops_per_cycle_per_core: int = 64  # 2×AVX-512 FMA, FP32
    ideal_bandwidth: float = 128e9  # 6 × DDR4-2666
    stream_efficiency: float = 0.75
    quantized_stream_efficiency: float = 0.5
    gather_latency_s: float = 100e-9
    #: Outstanding-miss parallelism across cores: large gathers become
    #: bandwidth-bound rather than latency-serial.
    memory_level_parallelism: int = 64
    invocation_overhead_s: float = 40e-6
    #: CPUs lack INT4 datapaths; quantized screening compute runs at a
    #: fraction of FP32 peak (unpack + convert overhead).
    int_compute_efficiency: float = 0.5

    def __post_init__(self) -> None:
        check_positive("cores", self.cores)
        check_positive("frequency_hz", self.frequency_hz)

    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_cycle_per_core

    @property
    def stream_bandwidth(self) -> float:
        return self.ideal_bandwidth * self.stream_efficiency

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point in FLOPs/byte."""
        return self.peak_flops / self.stream_bandwidth

    # ------------------------------------------------------------------
    def kernel_seconds(
        self,
        flops: float,
        stream_bytes: float,
        quantized_bytes: float = 0.0,
        gathers: int = 0,
        gather_bytes: float = 0.0,
        int_flops: float = 0.0,
    ) -> float:
        """Roofline time for one kernel invocation."""
        compute = flops / self.peak_flops
        compute += int_flops / (self.peak_flops * self.int_compute_efficiency)
        memory = stream_bytes / self.stream_bandwidth
        memory += quantized_bytes / (
            self.ideal_bandwidth * self.quantized_stream_efficiency
        )
        if gathers:
            latency_bound = gathers * self.gather_latency_s / self.memory_level_parallelism
            bandwidth_bound = gather_bytes / self.stream_bandwidth
            memory += max(latency_bound, bandwidth_bound)
        return max(compute, memory) + self.invocation_overhead_s

    # ------------------------------------------------------------------
    def full_classification_seconds(
        self, num_categories: int, hidden_dim: int, batch_size: int = 1
    ) -> float:
        """Exact ``z = W h + b`` on the CPU (the Fig. 13 '1×' baseline)."""
        from repro.core.metrics import cost_of_full_classification

        cost = cost_of_full_classification(num_categories, hidden_dim, batch_size)
        return self.kernel_seconds(flops=cost.fp_flops, stream_bytes=cost.fp_bytes)

    def screened_classification_seconds(self, cost: ClassificationCost,
                                        gathers: int = 0) -> float:
        """Approximate-screening classification on the CPU.

        ``cost`` comes from :func:`cost_of_screened_classification`;
        integer traffic streams at the quantized de-rating, candidate
        rows pay per-gather latency.
        """
        return self.kernel_seconds(
            flops=cost.fp_flops,
            stream_bytes=0.0,
            quantized_bytes=cost.int_bytes,
            gathers=gathers,
            gather_bytes=cost.fp_bytes,
            int_flops=cost.int_flops,
        )

    def roofline_point(self, cost: ClassificationCost) -> tuple:
        """(operational intensity, attained GFLOP/s) for Fig. 5(b)."""
        seconds = self.kernel_seconds(
            flops=cost.fp_flops, stream_bytes=cost.bytes, int_flops=cost.int_flops
        )
        intensity = cost.operational_intensity
        attained = cost.flops / seconds
        return intensity, attained


#: The paper's CPU baseline.
XEON_8280 = CPUModel()
