"""End-to-end system compositions (paper Fig. 10).

``HostOnlySystem`` runs both the front-end feature extraction and the
classification on the CPU; ``ENMCSystem`` keeps the front-end on the
host and offloads classification to the ENMC DIMMs, with the two phases
decoupled as the paper's workflow describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.metrics import cost_of_screened_classification
from repro.data.registry import Workload
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.simulator import ENMCSimulator
from repro.host.cpu import CPUModel, XEON_8280
from repro.models.base import FrontEndReport
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class SystemResult:
    """End-to-end timing of one batched inference."""

    front_end_seconds: float
    classification_seconds: float
    batch_size: int

    @property
    def seconds(self) -> float:
        return self.front_end_seconds + self.classification_seconds

    @property
    def classification_fraction(self) -> float:
        if self.seconds == 0:
            return 0.0
        return self.classification_seconds / self.seconds


def _front_end_seconds(
    cpu: CPUModel, report: FrontEndReport, workload: Workload, batch_size: int
) -> float:
    """Front-end time on the host: compute-bound roofline with weight
    streaming, repeated for the workload's decode steps."""
    flops = report.flops * batch_size * workload.decode_steps
    stream_bytes = report.parameter_bytes  # weights stream once per batch
    return cpu.kernel_seconds(flops=flops, stream_bytes=stream_bytes)


class HostOnlySystem:
    """CPU front-end + CPU classification (full or screened)."""

    def __init__(self, cpu: CPUModel = XEON_8280):
        self.cpu = cpu

    def run(
        self,
        workload: Workload,
        front_end: FrontEndReport,
        batch_size: int = 1,
        screened: bool = False,
        projection_dim: Optional[int] = None,
        candidates_per_row: int = 32,
    ) -> SystemResult:
        check_positive("batch_size", batch_size)
        front = _front_end_seconds(self.cpu, front_end, workload, batch_size)
        steps = workload.decode_steps
        if screened:
            d = workload.hidden_dim
            cost = cost_of_screened_classification(
                num_categories=workload.num_categories,
                hidden_dim=d,
                projection_dim=projection_dim or max(1, d // 4),
                candidates_per_row=candidates_per_row,
                batch_size=batch_size,
            )
            classify = self.cpu.screened_classification_seconds(
                cost, gathers=batch_size * candidates_per_row
            ) * steps
        else:
            classify = self.cpu.full_classification_seconds(
                workload.num_categories, workload.hidden_dim, batch_size
            ) * steps
        return SystemResult(front, classify, batch_size)


class ENMCSystem:
    """CPU front-end + ENMC-offloaded screened classification."""

    def __init__(
        self,
        cpu: CPUModel = XEON_8280,
        config: ENMCConfig = DEFAULT_CONFIG,
    ):
        self.cpu = cpu
        self.config = config
        self.simulator = ENMCSimulator(config)

    def run(
        self,
        workload: Workload,
        front_end: FrontEndReport,
        batch_size: int = 1,
        projection_dim: Optional[int] = None,
        candidates_per_row: int = 32,
    ) -> SystemResult:
        check_positive("batch_size", batch_size)
        front = _front_end_seconds(self.cpu, front_end, workload, batch_size)
        result = self.simulator.simulate(
            workload,
            projection_dim=projection_dim,
            candidates_per_row=candidates_per_row,
            batch_size=batch_size,
        )
        # Instruction delivery is a handful of C/A slots per tile —
        # folded into a 1% envelope, negligible against data movement.
        classify = result.seconds * 1.01 * workload.decode_steps
        return SystemResult(front, classify, batch_size)
