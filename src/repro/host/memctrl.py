"""The host memory controller: delivers ENMC instructions over DDR4.

Section 5.3: ENMC instructions are issued "from the memory controller
with PRECHARGE command combining special addresses and data".  This
module models the delivery path: programs become packets of PRECHARGE
slots (+ DQ bursts for data-carrying instructions), charged against the
channel's command/data bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dram.timing import DDR4Timing, DDR4_2400
from repro.isa.encoding import EncodedCommand
from repro.isa.program import Program


@dataclass(frozen=True)
class InstructionPacket:
    """One program rendered as a stream of DDR4 command-bus events."""

    commands: List[EncodedCommand]
    channel: int
    rank: int

    @property
    def command_slots(self) -> int:
        """C/A bus slots (one per PRECHARGE-encoded instruction)."""
        return len(self.commands)

    @property
    def dq_bursts(self) -> int:
        """Data-bus bursts carrying immediates/addresses."""
        return sum(1 for command in self.commands if command.data is not None)


class HostMemoryController:
    """Packs programs into packets and accounts delivery time."""

    def __init__(self, timing: DDR4Timing = DDR4_2400, channels: int = 8):
        self.timing = timing
        self.channels = channels
        self.packets_sent = 0

    def pack(self, program: Program, channel: int = 0, rank: int = 0) -> InstructionPacket:
        if not 0 <= channel < self.channels:
            raise ValueError(f"channel {channel} out of range (0..{self.channels - 1})")
        return InstructionPacket(
            commands=program.encoded(), channel=channel, rank=rank
        )

    def delivery_cycles(self, packet: InstructionPacket) -> int:
        """DRAM-clock cycles to deliver a packet to the DIMM.

        Each command occupies one C/A slot (1 cycle); each DQ payload
        occupies one burst on the data bus.  Command and data phases
        interleave, so the total is their sum (the C/A bus is the
        bottleneck for instruction-dense streams).
        """
        self.packets_sent += 1
        return packet.command_slots + packet.dq_bursts * self.timing.burst_cycles

    def delivery_seconds(self, packet: InstructionPacket) -> float:
        return self.delivery_cycles(packet) / self.timing.clock_hz
