"""Host-side models: the CPU baseline, the host memory controller, and
end-to-end system compositions (host-only vs. ENMC-offloaded)."""

from repro.host.cpu import CPUModel, XEON_8280
from repro.host.gpu import GPUModel, V100
from repro.host.memctrl import HostMemoryController
from repro.host.system import ENMCSystem, HostOnlySystem, SystemResult

__all__ = [
    "CPUModel",
    "XEON_8280",
    "GPUModel",
    "V100",
    "HostMemoryController",
    "HostOnlySystem",
    "ENMCSystem",
    "SystemResult",
]
