"""Batched lowering: one weight-tile load serves the whole batch.

The per-row path (:mod:`repro.compiler.lowering`) streams every W̃ tile
once per batch row; for batch size ``b`` that multiplies the dominant
screening traffic by ``b``.  The batched program instead loads each
tile once and iterates the batch's (small) projected features against
it, using the FILTER_BASE / BATCH_ID registers so the on-DIMM
instruction generator receives the paper's ``(batch_id, candidate_id)``
pairs:

    for tile in tiles:
        LDR weight_int4, tile
        for row in batch:
            LDR feature_int4, feature[row]        # ~k/2 bytes
            INIT batch_id, row
            INIT feature_base, fp32_feature[row]
            MUL_ADD_INT4 feature_int4, weight_int4
            MOVE output, psum_int4
            RETURN
            INIT filter_base, tile.start
            FILTER psum_int4

Per-tile traffic drops from ``b × tile_bytes`` to
``tile_bytes + b × feature_bytes`` — the weight-reuse win the paper's
batch-size sweep (Fig. 13, batches 1/2/4) exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.compiler.lowering import (
    _FEATURE_BASE,
    _FULL_WEIGHT_BASE,
    _SCREEN_WEIGHT_BASE,
)
from repro.compiler.tiling import TilePlan, plan_screening_tiles
from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningModule
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import ENMCController, MemoryImage
from repro.isa.instruction import (
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Return,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId
from repro.isa.program import Program
from repro.linalg.quantize import Quantizer


@dataclass
class BatchedKernel:
    """A lowered batched screened classification."""

    program: Program
    memory: MemoryImage
    plan: TilePlan
    threshold: float
    num_categories: int
    batch_size: int

    @property
    def instruction_count(self) -> int:
        return len(self.program)


def compile_batched_screening(
    classifier: FullClassifier,
    screener: ScreeningModule,
    features: np.ndarray,
    threshold: float,
    config: ENMCConfig = DEFAULT_CONFIG,
) -> BatchedKernel:
    """Lower a feature batch into one weight-reusing program."""
    batch = np.asarray(features, dtype=np.float64)
    if batch.ndim == 1:
        batch = batch[None, :]
    if batch.ndim != 2 or batch.shape[1] != classifier.hidden_dim:
        raise ValueError(
            f"features must be (batch, {classifier.hidden_dim}), got "
            f"{batch.shape}"
        )
    batch_size = batch.shape[0]
    bits = screener.quantization_bits or 32
    quantizer = Quantizer(bits=bits) if screener.quantization_bits else None

    memory = MemoryImage()

    # Per-row projected INT4 features (bias-augmented) + FP32 features.
    int_feature_addrs: List[int] = []
    fp_feature_addrs: List[int] = []
    for row in range(batch_size):
        projected = screener.project(batch[row])[0]
        if quantizer is not None:
            projected = quantizer.fake_quantize(projected)
        int_addr = _FEATURE_BASE + row * 0x100
        memory.bind(int_addr, np.append(projected, 1.0), bits)
        int_feature_addrs.append(int_addr)
        fp_addr = _FEATURE_BASE + 0x8000 + row * 0x1000
        memory.bind(fp_addr, np.append(batch[row], 1.0), 32)
        fp_feature_addrs.append(fp_addr)

    # Screening weight tiles (bias column folded in), bound once.
    augmented = np.hstack([screener._weight_deq, screener.bias[:, None]])
    plan = plan_screening_tiles(
        screener.num_categories, screener.projection_dim + 1, config
    )
    tile_bytes = plan.rows_per_tile * (screener.projection_dim + 1) * bits / 8.0
    tile_addrs: List[int] = []
    tile_starts: List[int] = []
    address = _SCREEN_WEIGHT_BASE
    for rows in plan:
        memory.bind(address, augmented[rows.start : rows.stop], bits)
        tile_addrs.append(address)
        tile_starts.append(rows.start)
        address += int(tile_bytes) + 64
        address -= address % 64

    # Full-classifier rows for the instruction generator.
    row_elements = classifier.hidden_dim + 1
    for index in range(classifier.num_categories):
        row = np.append(classifier.weight[index], classifier.bias[index])
        memory.bind(_FULL_WEIGHT_BASE + index * row_elements * 4, row, 32)

    instructions: List[Instruction] = [
        Clear(),
        Init(RegisterId.VOCAB_SIZE, classifier.num_categories),
        Init(RegisterId.HIDDEN_DIM, row_elements),
        Init(RegisterId.PROJECTION_DIM, screener.projection_dim),
        Init(RegisterId.BATCH_SIZE, batch_size),
        Init(RegisterId.TILE_ROWS, plan.rows_per_tile),
        Init(RegisterId.WEIGHT_BASE, _FULL_WEIGHT_BASE),
        Init(RegisterId.THRESHOLD, ENMCController.encode_threshold(threshold)),
    ]
    for tile_addr, tile_start in zip(tile_addrs, tile_starts):
        instructions.append(Load(BufferId.WEIGHT_INT4, tile_addr))
        for row in range(batch_size):
            instructions.append(Load(BufferId.FEATURE_INT4, int_feature_addrs[row]))
            instructions.append(Init(RegisterId.BATCH_ID, row))
            instructions.append(
                Init(RegisterId.FEATURE_BASE, fp_feature_addrs[row])
            )
            instructions.append(
                Compute(
                    Opcode.MUL_ADD_INT4,
                    BufferId.FEATURE_INT4,
                    BufferId.WEIGHT_INT4,
                )
            )
            instructions.append(Move(BufferId.OUTPUT, BufferId.PSUM_INT4))
            instructions.append(Return())
            instructions.append(Init(RegisterId.FILTER_BASE, tile_start))
            instructions.append(Filter(BufferId.PSUM_INT4))
    instructions.append(Return())

    program = Program(instructions)
    program.validate()
    return BatchedKernel(
        program=program,
        memory=memory,
        plan=plan,
        threshold=threshold,
        num_categories=classifier.num_categories,
        batch_size=batch_size,
    )
