"""The ENMC compiler: high-level classifier calls → instruction streams.

Section 5.4: "when translating the applications into ENMC instructions,
the compiler tiles the operation with initialized parameters and
hardware configurations and executes the instruction in a loop."

:func:`compile_screened_classification` lowers one feature vector's
screened inference into a :class:`~repro.isa.program.Program` plus the
:class:`~repro.enmc.controller.MemoryImage` binding its tiles;
:class:`ENMCOffload` wraps the whole path (compile → execute on the
functional DIMM → reassemble the mixed output) behind the same API as
the numpy pipeline.
"""

from repro.compiler.tiling import TilePlan, plan_screening_tiles
from repro.compiler.lowering import CompiledKernel, compile_screened_classification
from repro.compiler.batching import BatchedKernel, compile_batched_screening
from repro.compiler.offload import ENMCOffload

__all__ = [
    "TilePlan",
    "plan_screening_tiles",
    "CompiledKernel",
    "compile_screened_classification",
    "BatchedKernel",
    "compile_batched_screening",
    "ENMCOffload",
]
