"""Host-side wrapper: run screened classification *on the DIMM*.

``ENMCOffload`` mirrors the numpy
:class:`~repro.core.pipeline.ApproximateScreeningClassifier` API but
executes through the full hardware path — compile to ENMC instructions,
deliver via the host memory controller, execute on the functional DIMM,
and reassemble the mixed (approximate + exact) output from the RETURNed
buffers.  ``tests/test_offload_equivalence.py`` asserts the two paths
agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.compiler.lowering import CompiledKernel, compile_screened_classification
from repro.core.candidates import CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import ScreenedOutput
from repro.core.screener import ScreeningModule
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import ExecutionTrace
from repro.enmc.dimm import ENMCDimm
from repro.host.memctrl import HostMemoryController
from repro.utils.validation import check_batch_features


@dataclass
class OffloadResult:
    """One batch's hardware execution: outputs plus per-row traces."""

    output: ScreenedOutput
    traces: List[ExecutionTrace]
    kernels: List[CompiledKernel]

    @property
    def total_dram_bytes(self) -> float:
        return sum(trace.dram_bytes for trace in self.traces)

    @property
    def total_instructions(self) -> int:
        return sum(
            trace.instructions_executed + trace.generated_instructions
            for trace in self.traces
        )


class ENMCOffload:
    """Screened classification executed on the functional ENMC DIMM."""

    def __init__(
        self,
        classifier: FullClassifier,
        screener: ScreeningModule,
        threshold: float,
        config: ENMCConfig = DEFAULT_CONFIG,
    ):
        if screener.num_categories != classifier.num_categories:
            raise ValueError(
                f"screener covers {screener.num_categories} categories, "
                f"classifier has {classifier.num_categories}"
            )
        self.classifier = classifier
        self.screener = screener
        self.threshold = threshold
        self.config = config
        self.memctrl = HostMemoryController(config.timing, config.channels)

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> OffloadResult:
        """Run a feature batch through the hardware path."""
        batch = check_batch_features(features, self.classifier.hidden_dim)
        mixed = np.empty((batch.shape[0], self.classifier.num_categories))
        approx = np.empty_like(mixed)
        indices: List[np.ndarray] = []
        traces: List[ExecutionTrace] = []
        kernels: List[CompiledKernel] = []

        for row, feature in enumerate(batch):
            kernel = compile_screened_classification(
                self.classifier, self.screener, feature, self.threshold, self.config
            )
            dimm = ENMCDimm(self.config, memory=kernel.memory)
            packet = self.memctrl.pack(kernel.program)
            self.memctrl.delivery_cycles(packet)  # accounted, not blocking
            trace = dimm.execute(kernel.program)

            # Approximate scores: the per-tile RETURNed output buffers.
            tile_scores = np.concatenate(trace.outputs)
            if tile_scores.shape[0] != self.classifier.num_categories:
                raise RuntimeError(
                    f"DIMM returned {tile_scores.shape[0]} scores, expected "
                    f"{self.classifier.num_categories}"
                )
            approx[row] = tile_scores
            mixed[row] = tile_scores
            # Exact candidate results override the approximate entries.
            for index, value in trace.exact_results:
                mixed[row, index] = value
            indices.append(np.asarray(trace.candidate_indices, dtype=np.intp))
            traces.append(trace)
            kernels.append(kernel)

        output = ScreenedOutput(
            logits=mixed,
            approximate_logits=approx,
            candidates=CandidateSet(indices=indices),
        )
        return OffloadResult(output=output, traces=traces, kernels=kernels)

    __call__ = forward

    def forward_batched(self, features: np.ndarray) -> OffloadResult:
        """Batched execution: one program, weight tiles loaded once.

        Functionally identical to :meth:`forward` (tested) but the
        screening-weight traffic is paid once per batch instead of once
        per row — the hardware's actual batched dataflow.
        """
        from repro.compiler.batching import compile_batched_screening

        batch = check_batch_features(features, self.classifier.hidden_dim)
        kernel = compile_batched_screening(
            self.classifier, self.screener, batch, self.threshold, self.config
        )
        dimm = ENMCDimm(self.config, memory=kernel.memory)
        packet = self.memctrl.pack(kernel.program)
        self.memctrl.delivery_cycles(packet)
        trace = dimm.execute(kernel.program)

        batch_size = batch.shape[0]
        l = self.classifier.num_categories
        approx = np.empty((batch_size, l))
        # Outputs arrive per (tile, row): index = tile*batch + row.
        tile_slices = list(kernel.plan)
        expected = len(tile_slices) * batch_size
        if len(trace.outputs) != expected:
            raise RuntimeError(
                f"DIMM returned {len(trace.outputs)} tiles, expected {expected}"
            )
        for tile_index, rows in enumerate(tile_slices):
            for row in range(batch_size):
                scores = trace.outputs[tile_index * batch_size + row]
                approx[row, rows.start : rows.stop] = scores

        mixed = approx.copy()
        for batch_id, index, value in trace.tagged_results:
            mixed[batch_id, index] = value
        per_row: List[np.ndarray] = [
            np.array(sorted(
                idx for b, idx in trace.tagged_candidates if b == row
            ), dtype=np.intp)
            for row in range(batch_size)
        ]
        output = ScreenedOutput(
            logits=mixed,
            approximate_logits=approx,
            candidates=CandidateSet(indices=per_row),
        )
        return OffloadResult(output=output, traces=[trace], kernels=[kernel])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).output.logits, axis=-1)
