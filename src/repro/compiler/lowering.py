"""Lowering a screened classification to an ENMC program + memory image.

The generated program follows the paper's dataflow (Fig. 6 / Fig. 7):

1. INIT the controller status registers (sizes, bases, threshold);
2. load the quantized projected feature into the Screener;
3. per weight tile: LDR the INT4 tile, MUL_ADD_INT4, MOVE the
   approximate tile scores to the output buffer, RETURN them to the
   host, FILTER the tile (which triggers the on-DIMM instruction
   generator to compute exact scores for the kept candidates);
4. final RETURN/CLR.

Numerical fidelity: the memory image stores *fake-quantized* values
(floats exactly representable on the INT4 grid) while traffic is
charged at the true bit width, so the functional DIMM reproduces the
numpy pipeline bit-for-bit and the trace still reflects INT4 traffic.
The ``d → k`` projection of the feature happens host-side here (the
hardware Screener can also stream it; the performance model charges it
either way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.classifier import FullClassifier
from repro.core.screener import ScreeningModule
from repro.compiler.tiling import TilePlan, plan_screening_tiles
from repro.enmc.config import ENMCConfig, DEFAULT_CONFIG
from repro.enmc.controller import ENMCController, MemoryImage
from repro.isa.instruction import (
    Clear,
    Compute,
    Filter,
    Init,
    Instruction,
    Load,
    Move,
    Return,
)
from repro.isa.opcodes import BufferId, Opcode, RegisterId
from repro.isa.program import Program
from repro.linalg.quantize import Quantizer

#: Memory layout bases (byte addresses inside the DIMM's image).
_SCREEN_WEIGHT_BASE = 0x0100_0000
_FULL_WEIGHT_BASE = 0x4000_0000
_FEATURE_BASE = 0x0001_0000


@dataclass
class CompiledKernel:
    """A lowered screened classification for one feature vector."""

    program: Program
    memory: MemoryImage
    plan: TilePlan
    threshold: float
    num_categories: int

    @property
    def instruction_count(self) -> int:
        return len(self.program)


def compile_screened_classification(
    classifier: FullClassifier,
    screener: ScreeningModule,
    feature: np.ndarray,
    threshold: float,
    config: ENMCConfig = DEFAULT_CONFIG,
) -> CompiledKernel:
    """Lower one screened inference to a program + bound memory image."""
    feature = np.asarray(feature, dtype=np.float64).reshape(-1)
    if feature.shape[0] != classifier.hidden_dim:
        raise ValueError(
            f"feature dim {feature.shape[0]} != classifier hidden dim "
            f"{classifier.hidden_dim}"
        )

    bits = screener.quantization_bits or 32
    quantizer = Quantizer(bits=bits) if screener.quantization_bits else None

    # The screener bias b̃ is folded into each weight tile as one extra
    # column, matched by a trailing 1 in the projected feature — this
    # keeps the whole tile computation a single MUL_ADD (the hardware
    # alternative, a PSUM preload, costs the same traffic).
    memory = MemoryImage()

    # --- bind the projected, quantized, bias-augmented feature -------
    projected = screener.project(feature)[0]
    if quantizer is not None:
        projected = quantizer.fake_quantize(projected)
    projected_aug = np.append(projected, 1.0)
    feature_int_addr = _FEATURE_BASE
    memory.bind(feature_int_addr, projected_aug, bits)

    # --- bind the bias-augmented FP32 feature (Executor input) -------
    feature_fp_addr = _FEATURE_BASE + 0x8000
    memory.bind(feature_fp_addr, np.append(feature, 1.0), 32)

    # --- bind screening weight tiles (INT4-grid values + b̃ column) ---
    augmented = np.hstack([screener._weight_deq, screener.bias[:, None]])
    plan = plan_screening_tiles(
        screener.num_categories, screener.projection_dim + 1, config
    )
    tile_bytes = plan.rows_per_tile * (screener.projection_dim + 1) * bits / 8.0
    tile_addrs: List[int] = []
    address = _SCREEN_WEIGHT_BASE
    for rows in plan:
        memory.bind(address, augmented[rows.start : rows.stop], bits)
        tile_addrs.append(address)
        address += int(tile_bytes) + 64
        address -= address % 64

    # --- bind full-classifier rows (bias-augmented) -------------------
    row_elements = classifier.hidden_dim + 1
    for index in range(classifier.num_categories):
        row = np.append(classifier.weight[index], classifier.bias[index])
        memory.bind(_FULL_WEIGHT_BASE + index * row_elements * 4, row, 32)

    # --- emit the instruction stream ----------------------------------
    instructions: List[Instruction] = [
        Clear(),
        Init(RegisterId.VOCAB_SIZE, classifier.num_categories),
        Init(RegisterId.HIDDEN_DIM, row_elements),
        Init(RegisterId.PROJECTION_DIM, screener.projection_dim),
        Init(RegisterId.TILE_ROWS, plan.rows_per_tile),
        Init(RegisterId.FEATURE_BASE, feature_fp_addr),
        Init(RegisterId.WEIGHT_BASE, _FULL_WEIGHT_BASE),
        Init(RegisterId.THRESHOLD, ENMCController.encode_threshold(threshold)),
        Load(BufferId.FEATURE_INT4, feature_int_addr),
    ]
    for tile_addr in tile_addrs:
        instructions.append(Load(BufferId.WEIGHT_INT4, tile_addr))
        instructions.append(
            Compute(Opcode.MUL_ADD_INT4, BufferId.FEATURE_INT4, BufferId.WEIGHT_INT4)
        )
        instructions.append(Move(BufferId.OUTPUT, BufferId.PSUM_INT4))
        instructions.append(Return())
        instructions.append(Filter(BufferId.PSUM_INT4))
    instructions.append(Return())

    program = Program(instructions)
    program.validate()
    return CompiledKernel(
        program=program,
        memory=memory,
        plan=plan,
        threshold=threshold,
        num_categories=classifier.num_categories,
    )
