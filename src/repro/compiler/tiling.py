"""Tiling of the screening matvec onto the 256 B on-DIMM buffers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.enmc.config import ENMCConfig
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class TilePlan:
    """How the ``(l, k)`` screening weight splits into row tiles."""

    num_categories: int
    projection_dim: int
    rows_per_tile: int

    @property
    def num_tiles(self) -> int:
        return -(-self.num_categories // self.rows_per_tile)

    def tile_rows(self, tile_index: int) -> range:
        """Row indices covered by ``tile_index``."""
        if not 0 <= tile_index < self.num_tiles:
            raise IndexError(f"tile {tile_index} out of range (0..{self.num_tiles - 1})")
        start = tile_index * self.rows_per_tile
        stop = min(start + self.rows_per_tile, self.num_categories)
        return range(start, stop)

    def __iter__(self):
        return (self.tile_rows(i) for i in range(self.num_tiles))


def plan_screening_tiles(
    num_categories: int,
    projection_dim: int,
    config: ENMCConfig,
) -> TilePlan:
    """Choose the row-tile height from the Screener buffer capacities.

    The weight buffer (256 B at INT4 = 512 elements) holds one
    ``rows × k`` tile; the projected feature (``k`` INT4 values) must
    fit the feature buffer; the PSUM buffer (32-bit accumulators) caps
    rows per tile as well.
    """
    check_positive("num_categories", num_categories)
    check_positive("projection_dim", projection_dim)

    feature_capacity = config.screener_buffer_bytes * 8 // config.screener_bits
    if projection_dim > feature_capacity:
        raise ValueError(
            f"projection dim {projection_dim} exceeds the feature buffer "
            f"({feature_capacity} INT{config.screener_bits} elements); "
            "tile the projection dimension or enlarge the buffer"
        )
    weight_capacity = config.screener_buffer_bytes * 8 // config.screener_bits
    rows_by_weight = max(1, weight_capacity // projection_dim)
    rows_by_psum = max(1, config.psum_buffer_bytes // 4)
    rows_per_tile = min(rows_by_weight, rows_by_psum, num_categories)
    return TilePlan(
        num_categories=num_categories,
        projection_dim=projection_dim,
        rows_per_tile=rows_per_tile,
    )


def tile_addresses(base: int, plan: TilePlan, bytes_per_tile_row: float) -> List[int]:
    """DRAM addresses of each weight tile under a row-major layout."""
    addresses = []
    offset = base
    for rows in plan:
        addresses.append(offset)
        offset += int(len(rows) * bytes_per_tile_row) + 63
        offset -= offset % 64  # next tile starts burst-aligned
    return addresses
