"""Distributed scale-out of screened classification (paper Section 8).

"In the context of distributed inference, our design can scale-out from
single-node to distributed nodes, where each node keeps an approximate
screener."  This package implements that extension: the category space
is sharded across nodes, every node runs screening + candidates-only
classification over its shard, and a reducer merges the per-shard
top-k/mixed outputs.

Two serving backends share one shard-plan/reduce code path:

* :class:`ShardedClassifier` — sequential, in-process (also the
  training entry point);
* :class:`ParallelShardedEngine` — one persistent worker process per
  shard with zero-copy shared-memory parameters, bit-identical to the
  sequential backend (differentially tested).

:class:`ClusterModel` is the analytic multi-node performance model.
"""

from repro.distributed.sharding import (
    ShardPlan,
    ShardedClassifier,
    load_drift,
    merge_candidates,
    merge_candidates_per_row,
    merge_partial_shard_outputs,
    merge_partial_streamed_outputs,
    merge_shard_outputs,
    merge_streamed_outputs,
    normalize_loads,
    observed_category_frequencies,
    placeholder_screened_output,
    placeholder_streamed_output,
    reduce_top_k,
    shard_ranges,
    shard_top_k,
    suggest_replicas_for_loads,
)
from repro.distributed.autoscale import AutoScaler, ScaleDecision, ShardSignal
from repro.distributed.cluster import ClusterModel, DistributedResult
from repro.distributed.parallel import (
    DegradedOutput,
    ParallelShardedEngine,
    ShardFailure,
    WorkerDied,
    WorkerError,
)

__all__ = [
    "ShardPlan",
    "ShardedClassifier",
    "ParallelShardedEngine",
    "AutoScaler",
    "ScaleDecision",
    "ShardSignal",
    "observed_category_frequencies",
    "load_drift",
    "normalize_loads",
    "suggest_replicas_for_loads",
    "WorkerDied",
    "WorkerError",
    "DegradedOutput",
    "ShardFailure",
    "shard_ranges",
    "merge_candidates",
    "merge_candidates_per_row",
    "merge_shard_outputs",
    "merge_streamed_outputs",
    "merge_partial_shard_outputs",
    "merge_partial_streamed_outputs",
    "placeholder_screened_output",
    "placeholder_streamed_output",
    "shard_top_k",
    "reduce_top_k",
    "ClusterModel",
    "DistributedResult",
]
