"""Distributed scale-out of screened classification (paper Section 8).

"In the context of distributed inference, our design can scale-out from
single-node to distributed nodes, where each node keeps an approximate
screener."  This package implements that extension: the category space
is sharded across nodes, every node runs screening + candidates-only
classification over its shard, and a reducer merges the per-shard
top-k/mixed outputs.
"""

from repro.distributed.sharding import ShardedClassifier, shard_ranges
from repro.distributed.cluster import ClusterModel, DistributedResult

__all__ = [
    "ShardedClassifier",
    "shard_ranges",
    "ClusterModel",
    "DistributedResult",
]
