"""Process-parallel sharded serving engine with fleet supervision.

:class:`ParallelShardedEngine` turns a trained
:class:`~repro.distributed.sharding.ShardedClassifier` into a fleet of
persistent worker processes — one per category shard, mirroring the
paper's Section 8 deployment where every node keeps an approximate
screener for its shard.  The data plane is built for zero-copy:

* **parameters** — each shard's ``(W, b)`` and screener planes live in
  one shared-memory segment (:class:`~repro.utils.shm.SharedArrayPack`);
  workers attach numpy views and rebuild the pipeline with
  :meth:`ApproximateScreeningClassifier.from_arrays`, so model weights
  are mapped, not pickled, and exist once in physical memory no matter
  how many workers serve them;
* **scatter** — the host writes the feature batch into a shared input
  segment once; every worker reads the same pages;
* **gather** — each worker writes its shard's mixed logits plane into
  its slot of a shared output segment and ships only the tiny candidate
  record (counts, columns, pre-mix approximate values) over the pipe;
* **reduce** — the host reconstructs per-shard
  :class:`~repro.core.pipeline.ScreenedOutput` objects and merges them
  through the *same* :func:`~repro.distributed.sharding.merge_shard_outputs`
  / :func:`~repro.distributed.sharding.reduce_top_k` code path the
  sequential backend uses.

Because workers execute the identical numpy pipeline on the identical
bytes, the engine is bit-identical to the sequential
``ShardedClassifier`` — the differential harness in
``tests/test_distributed_parallel.py`` asserts exactly that, across
selectors, compute dtypes and shard counts.

Fault tolerance (the supervision layer)
---------------------------------------
Every pipe message carries a request id (see
:mod:`repro.utils.workers`), so a request the host gave up on can never
poison the next one — late replies are discarded by id.  On that
protocol the engine builds serving-grade supervision:

* **respawn** — a worker that dies is replaced from the *same* shared
  parameter segments (nothing is re-exported or re-pickled), with
  exponential backoff and a bounded per-worker restart budget
  (``max_restarts``); a respawned fleet keeps answering bit-identically
  to the sequential backend.
* **deadlines + retries** — ``request_timeout`` bounds every reply
  wait; ``request_retries`` re-issues the request to the same live
  worker (safe, because its late first answer is discarded by id)
  before the worker is declared wedged, killed, and replaced.
* **graceful degradation** — with ``degraded=True`` an irrecoverable
  shard no longer takes down the engine: ``forward`` /
  ``forward_streaming`` / ``top_k`` return a
  :class:`~repro.core.pipeline.DegradedOutput` wrapping the merge of
  the surviving shards plus :class:`~repro.core.pipeline.ShardFailure`
  records naming the missing category ranges.  With ``degraded=False``
  (default) the engine preserves the fail-fast contract: it closes
  itself and raises.

Every failure path is exercised deterministically through
:mod:`repro.utils.faults` (kill / delay / wedge / raise on the nth
request), wired through the worker entry point.

Replica groups (Zipfian-aware serving)
--------------------------------------
Under a skewed request mix some shards are hotter than others even
after frequency-balanced planning (:class:`~repro.distributed.sharding.ShardPlan`
equalizes *estimated* load; a single ultra-hot category still pins its
whole shard).  The ``replicas`` parameter therefore runs *groups* of
interchangeable workers per shard.  Replicas attach the **same** shared
parameter segments — the model exists once in physical memory no matter
how many processes serve it — and each request is dispatched to the
least-loaded live replica (fewest dispatch attempts, ties to the lowest
index — attempts, not answers, so a replica that keeps timing out does
not keep attracting traffic).  Supervision extends naturally: a dead or wedged replica is
respawned against the shard's shared ``max_restarts`` budget, and when
its budget share is spent the request *fails over* to a live sibling;
only a shard whose replicas are all dead degrades or fails fast.
Failover is race-safe on the shared output planes because the
incumbent is always stopped (SIGTERM→SIGKILL) before a sibling serves
the same plane.

Replica groups are *elastic*: with an
:class:`~repro.distributed.autoscale.AutoScaler` attached,
:meth:`ParallelShardedEngine.autoscale_tick` (driven between
micro-batches by the serving front door) evaluates the observed
per-shard work distribution and latency, spawns additional replicas
for overloaded shards against the existing shared segments
(:meth:`~ParallelShardedEngine.scale_up`), retires idle or tombstoned
ones (:meth:`~ParallelShardedEngine.scale_down`), and re-plans the
whole allocation when the observed load drifts away from the plan that
sized the fleet.  Scaling moves placement only — outputs stay
bit-identical with the autoscaler on or off.

The engine satisfies the :class:`~repro.serving.backend.EngineBackend`
protocol (as do the sequential backends), so it slots behind the
micro-batching serving front door (:mod:`repro.serving`) unchanged;
its mutable ``request_timeout`` is the deadline-propagation hook the
front door narrows per micro-batch.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.candidates import CandidateSet
from repro.distributed.autoscale import AutoScaler, ScaleDecision, ShardSignal
from repro.core.pipeline import (
    ApproximateScreeningClassifier,
    DegradedOutput,
    ScreenedOutput,
    ShardFailure,
    StreamedOutput,
)
from repro.distributed.sharding import (
    ShardedClassifier,
    merge_partial_shard_outputs,
    merge_partial_streamed_outputs,
    merge_shard_outputs,
    merge_streamed_outputs,
    reduce_top_k,
    shard_top_k,
)
from repro.obs.metrics import latency_buckets
from repro.obs.recorder import NULL_RECORDER, Recorder
from repro.obs.trace import Tracer
from repro.utils.faults import FaultInjector, FaultSpec, surviving_specs
from repro.utils.shm import PackLayout, SharedArrayPack
from repro.utils.validation import check_batch_features, check_positive
from repro.utils.workers import (
    WorkerDied,
    WorkerHandle,
    WorkerTimeout,
    default_context,
)

import multiprocessing

__all__ = [
    "ParallelShardedEngine",
    "WorkerDied",
    "WorkerError",
    "DegradedOutput",
    "ShardFailure",
]

#: Ops that do real inference work; only these advance the fault
#: injector's request counter (control traffic stays deterministic).
_SERVING_OPS = ("forward", "top_k", "forward_streaming")


class WorkerError(RuntimeError):
    """A worker hit an exception while serving a request.

    The worker survives (its state is untouched by a failed request);
    the remote traceback is carried in the message.
    """


class _ReplicaGroup:
    """One shard's replica set: interchangeable workers over the same
    shared parameter segments.

    The engine serves one request at a time, so "least loaded" reduces
    to the replica with the fewest *dispatch attempts* — posts, not
    successful answers.  Counting answers alone has a failure mode: a
    replica that keeps timing out never advances its count, stays at
    the minimum, and keeps attracting every new request while its
    healthy siblings idle.  Dispatch attempts charge the replica for
    the work it was handed whether or not it delivered, so a slow or
    flaky replica drains traffic toward its siblings instead of
    monopolizing it.  The balance a round-robin over live replicas
    converges to is unchanged for healthy groups, and the signal stays
    robust to replicas joining late (a respawn or scale-up) or leaving
    early (death or scale-down).

    Group size is dynamic: :meth:`add` grows the set (autoscaler
    scale-up) and :meth:`remove` retires a slot (scale-down), folding
    the retiree's answer count into ``retired_served`` so the shard's
    lifetime ``answered()`` reconciliation survives membership churn.
    """

    __slots__ = ("shard_id", "handles", "dead", "served", "dispatched",
                 "retired_served")

    def __init__(self, shard_id: int, handles: Sequence[WorkerHandle]):
        self.shard_id = shard_id
        self.handles: List[WorkerHandle] = list(handles)
        #: Per-replica "restart budget share spent" flags; the shard is
        #: only dead when every entry is True.
        self.dead: List[bool] = [False] * len(self.handles)
        #: Requests answered per replica (the reconciliation signal).
        self.served: List[int] = [0] * len(self.handles)
        #: Dispatch attempts per replica (the load signal for pick()).
        self.dispatched: List[int] = [0] * len(self.handles)
        #: Answers delivered by replicas since removed via scale-down.
        self.retired_served: int = 0

    @property
    def num_replicas(self) -> int:
        return len(self.handles)

    def live_indices(self) -> List[int]:
        return [idx for idx, dead in enumerate(self.dead) if not dead]

    def pick(self) -> Optional[int]:
        """Least-loaded live replica; ``None`` when all are dead."""
        live = self.live_indices()
        if not live:
            return None
        return min(live, key=lambda idx: (self.dispatched[idx], idx))

    def add(self, handle: WorkerHandle) -> int:
        """Grow the group by one live replica; returns its index."""
        self.handles.append(handle)
        self.dead.append(False)
        self.served.append(0)
        self.dispatched.append(0)
        return len(self.handles) - 1

    def remove(self, replica_idx: int) -> WorkerHandle:
        """Retire one replica slot, preserving ``answered()`` history.

        The caller owns stopping the returned handle; later replicas
        shift down one index (their counters travel with them).
        """
        self.retired_served += self.served[replica_idx]
        handle = self.handles.pop(replica_idx)
        del self.dead[replica_idx]
        del self.served[replica_idx]
        del self.dispatched[replica_idx]
        return handle

    def answered(self) -> int:
        """Requests this shard has answered over its lifetime, summed
        over current replicas plus slots retired by scale-down."""
        return sum(self.served) + self.retired_served


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(
    connection,
    shard_id: int,
    param_layout: PackLayout,
    meta: Dict[str, object],
    shard_start: int,
    fault_specs: Optional[Sequence[FaultSpec]] = None,
) -> None:
    """Entry point of one shard worker (module-level for spawn).

    Protocol: receives ``(request_id, op, payload)``, replies
    ``(request_id, kind, payload)`` echoing the id; the startup
    handshake is the only unsolicited message (id 0).
    """
    from repro.utils.workers import HANDSHAKE_ID

    params: Optional[SharedArrayPack] = None
    io_packs: Dict[str, SharedArrayPack] = {}
    injector = FaultInjector(fault_specs)
    try:
        try:
            params = SharedArrayPack.attach(param_layout)
            engine = ApproximateScreeningClassifier.from_arrays(
                params.arrays, meta
            )
            shard_range = range(
                shard_start, shard_start + engine.num_categories
            )
        except Exception:
            connection.send((HANDSHAKE_ID, "fatal", traceback.format_exc()))
            return
        connection.send((HANDSHAKE_ID, "ready", shard_id))

        while True:
            try:
                request_id, op, payload = connection.recv()
            except (EOFError, OSError):
                break
            if op == "shutdown":
                break
            if op == "detach-io":
                for pack in io_packs.values():
                    pack.close()
                io_packs.clear()
                connection.send((request_id, "ok", None))
                continue
            if op == "die":  # test hook: crash without replying
                os._exit(int(payload or 1))
            try:
                if op in _SERVING_OPS:
                    # Faults fire before the handler, so a kill never
                    # replies and a delay delays the reply — the
                    # externally observable failure shapes.
                    injector.on_request()
                    reply = _serve_request(
                        engine, shard_id, shard_range, io_packs, op, payload
                    )
                else:
                    raise ValueError(f"unknown op {op!r}")
                connection.send((request_id, "ok", reply))
            except Exception:
                connection.send((request_id, "error", traceback.format_exc()))
    finally:
        for pack in io_packs.values():
            pack.close()
        if params is not None:
            params.close()
        try:
            connection.close()
        except OSError:
            pass


def _attach_cached(
    io_packs: Dict[str, SharedArrayPack], layout: PackLayout
) -> SharedArrayPack:
    pack = io_packs.get(layout.segment)
    if pack is None:
        pack = SharedArrayPack.attach(layout)
        io_packs[layout.segment] = pack
    return pack


def _serve_request(
    engine: ApproximateScreeningClassifier,
    shard_id: int,
    shard_range: range,
    io_packs: Dict[str, SharedArrayPack],
    op: str,
    payload: Dict[str, object],
):
    input_pack = _attach_cached(io_packs, payload["input"])
    rows = int(payload["rows"])
    batch = input_pack["features"][:rows]

    if op == "forward_streaming":
        # Candidates-only: no shared output plane is touched — the
        # whole shard result is the small flat record on the pipe.
        # The worker's pipeline-owned workspace persists across
        # requests, so steady-state serving allocates no new scratch.
        streamed = engine.forward_streaming(
            batch, block_categories=payload["block"]
        )
        flat_rows, flat_cols = streamed.candidates.flat()
        return {
            "counts": streamed.candidates.counts,
            "cols": flat_cols,
            "rows": flat_rows,
            "exact": streamed.exact_values,
            "approx": streamed.approximate_values,
        }

    output = engine.forward(batch)
    if op == "top_k":
        indices, scores = shard_top_k(output, shard_range, int(payload["k"]))
        return {"indices": indices, "scores": scores}

    output_pack = _attach_cached(io_packs, payload["output"])
    np.copyto(output_pack[f"logits{shard_id}"][:rows], output.logits)
    restore_rows, restore_cols, saved = output.candidate_restore()
    return {
        "counts": output.candidates.counts,
        "cols": restore_cols,
        "rows": restore_rows,
        "saved": saved,
    }


# ----------------------------------------------------------------------
# host side
# ----------------------------------------------------------------------
class ParallelShardedEngine:
    """Serve a trained :class:`ShardedClassifier` with one supervised
    process per shard.

    Parameters
    ----------
    sharded:
        A trained sequential sharded classifier; its shard plan and
        parameters define the fleet.
    start_method:
        ``"fork"`` (default where available; millisecond startup) or
        ``"spawn"`` (fresh interpreters, required on Windows).
    max_batch:
        Initial capacity of the shared input/output planes in batch
        rows.  Larger batches are accepted — the engine reallocates the
        I/O segments transparently.
    request_timeout:
        Seconds to wait for a *live* worker's reply before the retry /
        respawn policy kicks in; ``None`` waits indefinitely (worker
        death is always detected regardless).  This attribute is
        mutable and re-read on every collect: the serving front door
        (:mod:`repro.serving`) narrows it to the tightest remaining
        per-request SLO budget in each micro-batch, so a request
        arriving with little budget left propagates that budget all the
        way down to the worker-pipe deadline (whose ``recv_tagged``
        honors even a zero budget without over-waiting).
    request_retries:
        How many times a timed-out request is re-issued to the same
        live worker before it is declared wedged.  Safe at any value:
        the request-id protocol discards the late replies of abandoned
        attempts.
    max_restarts:
        Per-worker respawn budget.  A dead (or wedged-and-killed)
        worker is replaced from the existing shared parameter segments
        up to this many times; ``0`` disables supervision and restores
        pure fail-fast behaviour.
    restart_backoff / restart_backoff_cap:
        Exponential backoff before respawn attempt *n*:
        ``min(cap, backoff * 2**n)`` seconds.
    degraded:
        ``False`` (default): an irrecoverable shard closes the engine
        and raises (a fleet with a missing shard cannot answer
        *exactly*).  ``True``: serving calls return a
        :class:`~repro.core.pipeline.DegradedOutput` — the merge of the
        surviving shards plus a structured report of the missing
        category ranges — and the fleet keeps serving what it has.
    replicas:
        Replica workers per shard: an int applies fleet-wide, a
        ``{shard_id: count}`` mapping sets hot shards individually
        (missing shards default to 1) —
        :meth:`~repro.distributed.sharding.ShardPlan.suggest_replicas`
        produces exactly this shape.  Replicas attach the same shared
        parameter segments, so extra replicas cost processes, not
        model memory.  Requests dispatch to the least-loaded live
        replica; a replica whose share of the shard's restart budget is
        spent fails its in-flight request over to a live sibling, and
        only a fully-dead group degrades the shard.
    faults:
        Optional fault mapping injected into the workers (tests /
        ``bench_parallel.py --faults`` only).  Keys are ``shard_id``
        ints (replica 0 of that shard) or ``(shard_id, replica_idx)``
        tuples; values are ``[FaultSpec, ...]``.  Respawned workers
        inherit only ``persistent`` specs.
    recorder:
        Optional :class:`repro.obs.Recorder`.  Default: the no-op
        recorder — zero observability overhead, outputs bit-identical.
        With a live recorder the engine records per-shard request
        latency histograms, retry/respawn/stale/degraded/overrun
        counters and (if the recorder has a tracer) request spans;
        everything is readable through :meth:`stats`.
    trace:
        ``True`` attaches a span tracer: creates a live recorder if
        ``recorder`` was not given, or adds a
        :class:`~repro.obs.Tracer` to the given one.  Export with
        :meth:`write_trace`.
    autoscaler:
        Optional :class:`~repro.distributed.autoscale.AutoScaler`.
        When set, the engine accumulates per-shard observation windows
        (exact-phase work from served candidate records, collect
        latency) and :meth:`autoscale_tick` — called between requests,
        e.g. from the serving front door's batcher thread — evaluates
        the policy and applies its decision by spawning replicas
        against the existing shared parameter segments
        (:meth:`scale_up`) or retiring them (:meth:`scale_down`).
        Scaling changes placement only, never outputs: replicas of a
        shard run the identical pipeline on the identical shared bytes,
        so the engine stays bit-identical to the sequential backend
        with the autoscaler on or off (differentially tested).

    The engine is a context manager; ``close()`` shuts workers down and
    unlinks every shared segment.
    """

    def __init__(
        self,
        sharded: ShardedClassifier,
        start_method: Optional[str] = None,
        max_batch: int = 64,
        request_timeout: Optional[float] = None,
        request_retries: int = 1,
        max_restarts: int = 2,
        restart_backoff: float = 0.05,
        restart_backoff_cap: float = 2.0,
        degraded: bool = False,
        replicas: Optional[Union[int, Dict[int, int]]] = None,
        faults: Optional[Dict[object, Sequence[FaultSpec]]] = None,
        spawn_timeout: float = 60.0,
        recorder=None,
        trace: bool = False,
        autoscaler: Optional[AutoScaler] = None,
    ):
        if not sharded.trained:
            raise RuntimeError("train the ShardedClassifier before serving it")
        check_positive("max_batch", max_batch)
        if request_retries < 0:
            raise ValueError(f"request_retries must be >= 0, got {request_retries}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.ranges = list(sharded.ranges)
        self.plan = getattr(sharded, "plan", None)
        self.hidden_dim = sharded.classifier.hidden_dim
        self.num_categories = sharded.classifier.num_categories
        self.request_timeout = request_timeout
        self.request_retries = int(request_retries)
        self.max_restarts = int(max_restarts)
        self.restart_backoff = float(restart_backoff)
        self.restart_backoff_cap = float(restart_backoff_cap)
        self.degraded = bool(degraded)
        self.spawn_timeout = float(spawn_timeout)
        if recorder is None:
            recorder = Recorder(trace=True) if trace else NULL_RECORDER
        elif trace and recorder.enabled and recorder.tracer is None:
            recorder.tracer = Tracer()
        self.recorder = recorder
        # Supervision counters kept as plain ints so they are readable
        # through stats() even with the no-op recorder installed.
        self.requests_served = 0
        self.degraded_requests = 0
        self.retries = 0
        self.failovers = 0
        self.deadline_overruns = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replans = 0
        self.closed = False
        self._max_batch = int(max_batch)
        self._io_input: Optional[SharedArrayPack] = None
        self._io_output: Optional[SharedArrayPack] = None
        self._segment_names: List[str] = []

        self._context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else default_context()
        )

        self._compute_dtypes: List[np.dtype] = [
            shard.screener.compute_dtype for shard in sharded.shards
        ]
        self._param_packs: List[SharedArrayPack] = []
        self._worker_args: List[tuple] = []
        num_shards = len(self.ranges)
        self.replica_counts = self._normalize_replicas(replicas, num_shards)
        self._fault_specs: List[List[List[FaultSpec]]] = [
            [[] for _ in range(count)] for count in self.replica_counts
        ]
        for key, specs in (faults or {}).items():
            shard_id, replica_idx = key if isinstance(key, tuple) else (key, 0)
            if not 0 <= shard_id < num_shards:
                raise ValueError(f"fault key names unknown shard {shard_id}")
            if not 0 <= replica_idx < self.replica_counts[shard_id]:
                raise ValueError(
                    f"fault key names replica {replica_idx} but shard "
                    f"{shard_id} runs {self.replica_counts[shard_id]}"
                )
            self._fault_specs[shard_id][replica_idx] = list(specs)
        #: Respawns performed so far, per shard (observable supervision
        #: state; the budget is shared across a shard's replica group).
        self.restarts: List[int] = [0] * num_shards
        self._dead: List[bool] = [False] * num_shards
        self._groups: List[_ReplicaGroup] = []
        # --- elastic scaling state -----------------------------------
        self.autoscaler = autoscaler
        #: The per-shard load distribution the current replica
        #: allocation was sized from — the drift reference a re-plan
        #: resets to the freshly observed loads.
        self._sizing_loads: Tuple[float, ...] = (
            tuple(self.plan.loads)
            if self.plan is not None
            else tuple([1.0 / num_shards] * num_shards)
        )
        # Observation-window accumulators (lifetime totals; each tick
        # diffs against the baseline captured at the last evaluation).
        self._work_totals: List[float] = [0.0] * num_shards
        self._lat_totals: List[float] = [0.0] * num_shards
        self._lat_counts: List[int] = [0] * num_shards
        self._work_baseline: List[float] = [0.0] * num_shards
        self._lat_total_baseline: List[float] = [0.0] * num_shards
        self._lat_count_baseline: List[int] = [0] * num_shards
        self._answered_baseline: List[int] = [0] * num_shards
        self._tick_requests_baseline = 0
        try:
            for shard_id, (shard, shard_range) in enumerate(
                zip(sharded.shards, self.ranges)
            ):
                arrays, meta = shard.export_arrays()
                pack = SharedArrayPack.create(arrays)
                self._param_packs.append(pack)
                self._segment_names.append(pack.name)
                self._worker_args.append(
                    (shard_id, pack.layout, meta, shard_range.start)
                )
                handles = [
                    self._spawn_worker(
                        shard_id,
                        replica_idx,
                        self._fault_specs[shard_id][replica_idx],
                    )
                    for replica_idx in range(self.replica_counts[shard_id])
                ]
                self._groups.append(_ReplicaGroup(shard_id, handles))
            for group in self._groups:
                for worker in group.handles:
                    kind, payload = worker.handshake(timeout=self.spawn_timeout)
                    if kind == "fatal":
                        raise RuntimeError(
                            f"worker {worker.name} failed to start:\n{payload}"
                        )
        except BaseException:
            self.close()
            raise

    @staticmethod
    def _normalize_replicas(
        replicas: Optional[Union[int, Dict[int, int]]], num_shards: int
    ) -> List[int]:
        if replicas is None:
            counts = [1] * num_shards
        elif isinstance(replicas, dict):
            unknown = [sid for sid in replicas if not 0 <= sid < num_shards]
            if unknown:
                raise ValueError(
                    f"replicas name unknown shards {unknown} "
                    f"(fleet has {num_shards})"
                )
            counts = [int(replicas.get(sid, 1)) for sid in range(num_shards)]
        else:
            counts = [int(replicas)] * num_shards
        if any(count < 1 for count in counts):
            raise ValueError(f"every shard needs >= 1 replica, got {counts}")
        return counts

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def workers(self) -> List[WorkerHandle]:
        """The primary (replica-0 slot) worker handle of every shard.

        Kept for the pre-replica surface: with the default single
        replica per shard this *is* the fleet, and per-shard test
        hooks (``engine.workers[i].process.kill()``) keep working.
        """
        return [group.handles[0] for group in self._groups]

    @property
    def replica_groups(self) -> List["_ReplicaGroup"]:
        return list(self._groups)

    @property
    def dead_shards(self) -> List[int]:
        """Shards whose restart budget is exhausted (degraded mode)."""
        return [sid for sid, dead in enumerate(self._dead) if dead]

    def segment_names(self) -> List[str]:
        """Names of every shared-memory segment this engine created."""
        return list(self._segment_names)

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _spawn_worker(
        self, shard_id: int, replica_idx: int, fault_specs: Sequence[FaultSpec]
    ) -> WorkerHandle:
        suffix = "" if replica_idx == 0 else f".r{replica_idx}"
        return WorkerHandle(
            self._context,
            _worker_main,
            args=(*self._worker_args[shard_id], list(fault_specs)),
            name=f"enmc-shard-{shard_id}{suffix}",
            recorder=self.recorder,
        )

    def _respawn_replica(self, shard_id: int, replica_idx: int) -> bool:
        """Replace one replica of shard ``shard_id`` from the shared
        segments.

        Bounded by the shard's *shared* ``max_restarts`` budget with
        exponential backoff; returns ``True`` once a replacement worker
        completes its handshake.  On a spent budget the replica is
        marked dead (the shard only dies with its last replica) and
        ``False`` returns.  The dead or wedged incumbent is terminated
        first either way — the invariant that makes failing over to a
        sibling replica safe: no stopped process can later write the
        shard's shared output plane under a sibling's answer.
        """
        group = self._groups[shard_id]
        group.handles[replica_idx].stop(timeout=0.1)
        if not SharedArrayPack.exists(self._worker_args[shard_id][1]):
            # The parameter segment is gone — the engine was torn down
            # concurrently; no replacement worker could ever attach.
            return self._replica_spent(group, replica_idx)
        specs = surviving_specs(self._fault_specs[shard_id][replica_idx])
        # Backoff escalates within THIS incident only and resets on a
        # successful handshake: a worker that crashes again after a
        # long healthy stretch starts over at the base backoff instead
        # of inheriting the capped maximum from old incidents.  The
        # shard-lifetime ``restarts`` count still enforces the shared
        # ``max_restarts`` budget.
        attempt = 0
        while self.restarts[shard_id] < self.max_restarts:
            self.restarts[shard_id] += 1
            self.recorder.increment("parallel.respawns")
            self.recorder.increment(f"parallel.shard.{shard_id}.respawns")
            delay = min(
                self.restart_backoff_cap, self.restart_backoff * (2 ** attempt)
            )
            attempt += 1
            self.recorder.observe("parallel.respawn_backoff_s", delay)
            time.sleep(delay)
            worker = self._spawn_worker(shard_id, replica_idx, specs)
            try:
                kind, _ = worker.handshake(timeout=self.spawn_timeout)
            except (WorkerDied, WorkerTimeout):
                worker.stop(timeout=0.1)
                continue
            if kind != "ready":
                worker.stop(timeout=0.1)
                continue
            group.handles[replica_idx] = worker
            return True
        return self._replica_spent(group, replica_idx)

    def _replica_spent(self, group: _ReplicaGroup, replica_idx: int) -> bool:
        group.dead[replica_idx] = True
        if not group.live_indices():
            self._dead[group.shard_id] = True
        return False

    def _failover(self, shard_id: int, to_replica: int) -> None:
        self.failovers += 1
        self.recorder.increment("parallel.failovers")
        self.recorder.increment(f"parallel.shard.{shard_id}.failovers")

    # ------------------------------------------------------------------
    # elastic scaling
    # ------------------------------------------------------------------
    def scale_up(self, shard_id: int) -> int:
        """Spawn one additional replica for ``shard_id`` at runtime.

        The replica attaches the shard's *existing* shared parameter
        segments — no re-export, no new model memory — and joins the
        group with zero dispatch load, so the least-loaded pick routes
        new traffic to it immediately.  Returns the new replica index.
        Must be called between requests (the engine serves one request
        at a time; the front door's batcher thread satisfies this).
        """
        if self.closed:
            raise RuntimeError("engine is closed")
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"unknown shard {shard_id}")
        if self._dead[shard_id]:
            raise RuntimeError(
                f"shard {shard_id} is dead (restart budget exhausted); "
                "scaling cannot revive it"
            )
        group = self._groups[shard_id]
        replica_idx = group.num_replicas
        worker = self._spawn_worker(shard_id, replica_idx, [])
        kind, payload = worker.handshake(timeout=self.spawn_timeout)
        if kind != "ready":
            worker.stop(timeout=0.1)
            raise RuntimeError(
                f"scale-up replica for shard {shard_id} failed to start:"
                f"\n{payload}"
            )
        self._fault_specs[shard_id].append([])
        group.add(worker)
        self.replica_counts[shard_id] += 1
        self.scale_ups += 1
        self.recorder.increment("parallel.scale_up")
        self.recorder.increment(f"parallel.shard.{shard_id}.scale_up")
        return replica_idx

    def scale_down(self, shard_id: int) -> bool:
        """Retire one replica of ``shard_id``; ``False`` if impossible.

        Victim choice: the highest-index dead tombstone if the group
        carries one (reclaiming a spent slot costs nothing), else the
        highest-index live replica — but never the last live one, and
        never anything on a dead shard.  The retiree's answer count is
        folded into the group's ``retired_served`` so the per-shard
        ``answered == requests`` reconciliation survives the removal.
        """
        if self.closed:
            raise RuntimeError("engine is closed")
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"unknown shard {shard_id}")
        if self._dead[shard_id]:
            return False
        group = self._groups[shard_id]
        tombstones = [idx for idx, dead in enumerate(group.dead) if dead]
        if tombstones:
            victim = tombstones[-1]
        else:
            live = group.live_indices()
            if len(live) <= 1:
                return False
            victim = live[-1]
        handle = group.remove(victim)
        handle.stop(goodbye="shutdown")
        del self._fault_specs[shard_id][victim]
        self.replica_counts[shard_id] -= 1
        self.scale_downs += 1
        self.recorder.increment("parallel.scale_down")
        self.recorder.increment(f"parallel.shard.{shard_id}.scale_down")
        return True

    def autoscale_tick(self) -> Optional[ScaleDecision]:
        """One autoscaler evaluation over the window since the last one.

        No-op (returns ``None``) without an autoscaler, on a closed
        engine, or while the window is below the policy's
        ``interval_requests``.  Otherwise builds one
        :class:`~repro.distributed.autoscale.ShardSignal` per shard
        from the window accumulators, applies the decision — retires
        first, then spawns, so the worker budget is never transiently
        exceeded — and returns it.  A re-plan decision re-baselines the
        drift reference to the observed loads it was sized from.

        Call between requests only: the engine is not concurrency-safe,
        and membership must not change under an in-flight scatter.  The
        serving front door calls this from its batcher thread between
        micro-batches.
        """
        if self.autoscaler is None or self.closed:
            return None
        window = self.requests_served - self._tick_requests_baseline
        signals = []
        for shard_id in range(self.num_shards):
            group = self._groups[shard_id]
            lat_count = (
                self._lat_counts[shard_id] - self._lat_count_baseline[shard_id]
            )
            lat_total = (
                self._lat_totals[shard_id] - self._lat_total_baseline[shard_id]
            )
            signals.append(
                ShardSignal(
                    shard_id=shard_id,
                    replicas=len(group.live_indices()),
                    observed_work=(
                        self._work_totals[shard_id]
                        - self._work_baseline[shard_id]
                    ),
                    answered=(
                        group.answered() - self._answered_baseline[shard_id]
                    ),
                    mean_latency_s=(
                        lat_total / lat_count if lat_count else float("nan")
                    ),
                    dead=self._dead[shard_id],
                )
            )
        decision = self.autoscaler.evaluate(
            signals,
            sizing_loads=self._sizing_loads,
            window_requests=window,
        )
        if decision is None:
            return None
        # The window was consumed by an evaluation — re-baseline so the
        # next decision sees fresh observations only.
        self._tick_requests_baseline = self.requests_served
        self._work_baseline = list(self._work_totals)
        self._lat_total_baseline = list(self._lat_totals)
        self._lat_count_baseline = list(self._lat_counts)
        self._answered_baseline = [
            group.answered() for group in self._groups
        ]
        for shard_id in decision.scale_down:
            self.scale_down(shard_id)
        for shard_id in decision.scale_up:
            self.scale_up(shard_id)
        if decision.replan:
            self.replans += 1
            self.recorder.increment("parallel.replans")
            if decision.sizing_loads is not None:
                self._sizing_loads = tuple(decision.sizing_loads)
        return decision

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _scatter_gather(
        self, op: str, request
    ) -> Tuple[List[Optional[dict]], Dict[int, ShardFailure]]:
        """Send one request to every live worker, collect every reply.

        Returns per-shard payloads (``None`` where a shard failed) plus
        the failure records.  Recovery — retry on timeout, respawn on
        death — happens per shard during collection.  In fail-fast mode
        (``degraded=False``) an irrecoverable shard closes the engine
        and re-raises the original ``WorkerDied``/``WorkerTimeout``.
        """
        pending: List[Optional[Tuple[int, Optional[int]]]] = []
        failures: Dict[int, ShardFailure] = {}
        for shard_id, group in enumerate(self._groups):
            if self._dead[shard_id]:
                failures[shard_id] = ShardFailure(
                    shard_id,
                    self.ranges[shard_id],
                    "died",
                    "restart budget exhausted on an earlier request",
                )
                pending.append(None)
                continue
            replica_idx = group.pick()
            # Dispatch attempts are charged up front (not on answer):
            # pick() must see the load a slow replica is sitting on.
            group.dispatched[replica_idx] += 1
            try:
                pending.append(
                    (replica_idx, group.handles[replica_idx].post(op, request))
                )
            except WorkerDied:
                # Send failed; the collect phase respawns (or fails
                # over) and re-issues.
                pending.append((replica_idx, None))
        replies: List[Optional[dict]] = []
        for shard_id in range(self.num_shards):
            if shard_id in failures:
                replies.append(None)
                continue
            replica_idx, request_id = pending[shard_id]
            replies.append(
                self._collect_shard(
                    shard_id, replica_idx, request_id, op, request, failures
                )
            )
        error_failures = [f for f in failures.values() if f.kind == "error"]
        if error_failures and not self.degraded:
            raise WorkerError(
                f"request failed on {len(error_failures)}/{self.num_shards} "
                "workers:\n"
                + "\n".join(
                    f"shard {f.shard_id}: {f.detail}" for f in error_failures
                )
            )
        return replies, failures

    def _collect_shard(
        self,
        shard_id: int,
        replica_idx: int,
        request_id: Optional[int],
        op: str,
        request,
        failures: Dict[int, ShardFailure],
    ) -> Optional[dict]:
        """Await one shard's reply, applying the recovery policy.

        ``request_id is None`` means the request still needs (re)issuing
        on ``replica_idx`` — the initial send failed, a replacement
        worker came up, or the request failed over to a sibling replica.

        The per-shard latency histogram covers the whole collect —
        retries, respawns and failovers included — because that is the
        latency the merge actually waits on.
        """
        group = self._groups[shard_id]
        recording = self.recorder.enabled
        timing = recording or self.autoscaler is not None
        started = time.perf_counter() if timing else 0.0
        retries_left = self.request_retries
        while True:
            worker = group.handles[replica_idx]
            try:
                if request_id is None:
                    group.dispatched[replica_idx] += 1
                    request_id = worker.post(op, request)
                kind, payload = worker.recv_tagged(
                    request_id, timeout=self.request_timeout
                )
            except WorkerTimeout as error:
                self.deadline_overruns += 1
                self.recorder.increment("parallel.deadline_overruns")
                if retries_left > 0:
                    # Re-issue to the same live worker; its late answer
                    # to the abandoned id is discarded on arrival.
                    retries_left -= 1
                    self.retries += 1
                    self.recorder.increment("parallel.retries")
                    try:
                        group.dispatched[replica_idx] += 1
                        request_id = worker.post(op, request)
                    except WorkerDied:
                        request_id = None
                    continue
                # Live but unresponsive past every retry: wedged.
                # Replace it (heals future requests); this request can
                # still complete on the replacement if the budget
                # allows, or on a live sibling replica otherwise (the
                # wedged incumbent is already stopped, so the sibling
                # owns the shared output plane alone).
                if self._respawn_replica(shard_id, replica_idx):
                    request_id = None
                    continue
                failover = group.pick()
                if failover is not None:
                    self._failover(shard_id, failover)
                    replica_idx = failover
                    request_id = None
                    continue
                return self._shard_failed(shard_id, "timeout", str(error), error, failures)
            except WorkerDied as error:
                if self._respawn_replica(shard_id, replica_idx):
                    request_id = None
                    continue
                failover = group.pick()
                if failover is not None:
                    self._failover(shard_id, failover)
                    replica_idx = failover
                    request_id = None
                    continue
                return self._shard_failed(shard_id, "died", str(error), error, failures)
            group.served[replica_idx] += 1
            elapsed = (time.perf_counter() - started) if timing else 0.0
            if self.autoscaler is not None and kind == "ok":
                # Exact-phase work actually served: candidate hits for
                # forward paths, result cells for top-k — the same
                # signal observed_category_frequencies aggregates, and
                # the load distribution the autoscaler re-plans from.
                if op == "top_k":
                    work = float(payload["indices"].size)
                else:
                    work = float(np.asarray(payload["counts"]).sum())
                self._work_totals[shard_id] += work
                self._lat_totals[shard_id] += elapsed
                self._lat_counts[shard_id] += 1
            if recording:
                self.recorder.increment(f"parallel.shard.{shard_id}.requests")
                self.recorder.increment(
                    f"parallel.shard.{shard_id}.replica.{replica_idx}.requests"
                )
                self.recorder.observe(
                    f"parallel.shard.{shard_id}.latency_s",
                    elapsed,
                    bounds=latency_buckets(),
                )
            if kind == "ok":
                return payload
            # Remote exception: the worker survives; record and move on
            # (fail-fast mode raises an aggregated WorkerError after
            # every shard is collected).
            failures[shard_id] = ShardFailure(
                shard_id, self.ranges[shard_id], "error", str(payload)
            )
            return None

    def _shard_failed(
        self,
        shard_id: int,
        kind: str,
        detail: str,
        error: Exception,
        failures: Dict[int, ShardFailure],
    ) -> None:
        """Record an irrecoverable shard; fail-fast mode closes + raises."""
        if not self.degraded:
            self.close()
            raise error
        failures[shard_id] = ShardFailure(
            shard_id, self.ranges[shard_id], kind, detail
        )
        return None

    def _broadcast_all(self, op: str) -> None:
        """Post a control op to *every* live replica and await replies.

        Unlike :meth:`_scatter_gather` (one replica per shard), control
        traffic like ``detach-io`` must reach each process individually
        — every replica caches its own mapping of the I/O planes.
        Failures are tolerated without recovery: a dead replica's
        mappings die with its process (the next serving request runs
        the regular respawn/failover policy), and a worker that never
        detaches only pins the unlinked segment's memory until it
        attaches the replacement layout on its next request.
        """
        posted: List[Tuple[WorkerHandle, int]] = []
        for group in self._groups:
            for replica_idx in group.live_indices():
                handle = group.handles[replica_idx]
                try:
                    posted.append((handle, handle.post(op, None)))
                except WorkerDied:
                    continue
        for handle, request_id in posted:
            try:
                handle.recv_tagged(request_id, timeout=self.request_timeout)
            except (WorkerDied, WorkerTimeout):
                continue

    # ------------------------------------------------------------------
    # shared I/O planes
    # ------------------------------------------------------------------
    def _ensure_io(self, rows: int, need_output: bool = True) -> None:
        """Size the shared I/O planes for a ``rows``-row batch.

        The output planes (per-shard dense logits) are only allocated
        when a dense ``forward`` asks for them — streaming and top-k
        requests ship candidates-only records over the pipe, so a
        streaming-only engine never materializes ``batch × l`` shared
        memory at all.
        """
        input_capacity = (
            self._io_input["features"].shape[0]
            if self._io_input is not None
            else 0
        )
        if rows > input_capacity:
            input_capacity = max(self._max_batch, rows)
            if self._io_input is not None:
                # Workers hold mappings of the old planes; have every
                # live replica detach before the segments are unlinked
                # and replaced.  Failures are tolerable here: a dead
                # worker's mapping dies with its process, and the
                # replacement attaches the new layout lazily on its
                # next request.
                self._broadcast_all("detach-io")
                self._release_io()
            self._io_input = SharedArrayPack.zeros(
                {"features": ((input_capacity, self.hidden_dim), np.float64)}
            )
            self._segment_names.append(self._io_input.name)
        if need_output and self._io_output is None:
            self._io_output = SharedArrayPack.zeros(
                {
                    f"logits{shard_id}": (
                        (input_capacity, len(shard_range)),
                        dtype,
                    )
                    for shard_id, (shard_range, dtype) in enumerate(
                        zip(self.ranges, self._compute_dtypes)
                    )
                }
            )
            self._segment_names.append(self._io_output.name)

    def _release_io(self) -> None:
        for pack in (self._io_input, self._io_output):
            if pack is not None:
                pack.destroy()
        self._io_input = None
        self._io_output = None

    def _prepare(
        self, features: np.ndarray, need_output: bool = True
    ) -> Tuple[np.ndarray, int]:
        if self.closed:
            raise RuntimeError("engine is closed")
        batch = check_batch_features(features, self.hidden_dim)
        rows = batch.shape[0]
        self._ensure_io(rows, need_output=need_output)
        np.copyto(self._io_input["features"][:rows], batch)
        return batch, rows

    # ------------------------------------------------------------------
    # serving API — mirrors the sequential backend
    # ------------------------------------------------------------------
    def forward(
        self, features: np.ndarray
    ) -> Union[ScreenedOutput, DegradedOutput]:
        """All-shard screened inference, merged to global order.

        Bit-identical to ``ShardedClassifier.forward`` on the same
        shards (differentially tested) — including across worker
        respawns, because replacement workers rebuild from the same
        shared parameter bytes.  In degraded mode a request with failed
        shards returns a :class:`DegradedOutput` whose missing columns
        are NaN.
        """
        with self.recorder.span("engine.forward"):
            self.requests_served += 1
            self.recorder.increment("parallel.requests")
            _, rows = self._prepare(features)
            request = {
                "rows": rows,
                "input": self._io_input.layout,
                "output": self._io_output.layout,
            }
            with self.recorder.span("engine.scatter_gather"):
                replies, failures = self._scatter_gather("forward", request)
            with self.recorder.span("engine.merge"):
                outputs: List[Optional[ScreenedOutput]] = []
                for shard_id, reply in enumerate(replies):
                    if reply is None:
                        outputs.append(None)
                        continue
                    logits = self._io_output[f"logits{shard_id}"][:rows]
                    candidates = CandidateSet.from_flat(
                        reply["counts"], reply["cols"]
                    )
                    outputs.append(
                        ScreenedOutput(
                            logits=logits,
                            candidates=candidates,
                            restore=(reply["rows"], reply["cols"], reply["saved"]),
                        )
                    )
                # merge_shard_outputs concatenates the logits planes, so
                # the merged output owns its memory and survives buffer
                # reuse.
                if failures:
                    self.degraded_requests += 1
                    self.recorder.increment("parallel.degraded_requests")
                    merged = merge_partial_shard_outputs(
                        outputs, self.ranges, rows, self._compute_dtypes
                    )
                    return DegradedOutput(
                        merged, failures.values(), self.num_categories
                    )
                return merge_shard_outputs(outputs, self.ranges)

    __call__ = forward

    def forward_streaming(
        self,
        features: np.ndarray,
        block_categories: Optional[int] = None,
    ) -> Union[StreamedOutput, DegradedOutput]:
        """All-shard blocked streaming inference, merged to global order.

        Every worker streams its category stripe block by block and
        ships back only its candidate record — no shared output plane
        exists, so the engine's shared memory stays O(batch × d)
        regardless of ``l``.  Candidates and values are bit-identical
        to ``ShardedClassifier.forward_streaming`` on the same shards.
        In degraded mode a request with failed shards returns a
        :class:`DegradedOutput` whose result simply has no candidates
        from the missing ranges.
        """
        with self.recorder.span("engine.forward_streaming"):
            self.requests_served += 1
            self.recorder.increment("parallel.requests")
            _, rows = self._prepare(features, need_output=False)
            request = {
                "rows": rows,
                "input": self._io_input.layout,
                "block": block_categories,
            }
            with self.recorder.span("engine.scatter_gather"):
                replies, failures = self._scatter_gather(
                    "forward_streaming", request
                )
            with self.recorder.span("engine.merge"):
                outputs: List[Optional[StreamedOutput]] = []
                for reply, shard_range in zip(replies, self.ranges):
                    if reply is None:
                        outputs.append(None)
                        continue
                    outputs.append(
                        StreamedOutput(
                            candidates=CandidateSet.from_flat(
                                reply["counts"], reply["cols"]
                            ),
                            exact_values=reply["exact"],
                            approximate_values=reply["approx"],
                            num_categories=len(shard_range),
                        )
                    )
                if failures:
                    self.degraded_requests += 1
                    self.recorder.increment("parallel.degraded_requests")
                    merged = merge_partial_streamed_outputs(
                        outputs, self.ranges, rows, self._compute_dtypes
                    )
                    return DegradedOutput(
                        merged, failures.values(), self.num_categories
                    )
                return merge_streamed_outputs(outputs, self.ranges)

    def top_k(
        self, features: np.ndarray, k: int
    ) -> Union[Tuple[np.ndarray, np.ndarray], DegradedOutput]:
        """Global top-k via per-shard top-k + host reduce.

        In degraded mode a request with failed shards reduces over the
        surviving shards only and wraps the ``(indices, scores)`` pair
        in a :class:`DegradedOutput`.
        """
        check_positive("k", k)
        with self.recorder.span("engine.top_k"):
            self.requests_served += 1
            self.recorder.increment("parallel.requests")
            _, rows = self._prepare(features, need_output=False)
            request = {
                "rows": rows,
                "input": self._io_input.layout,
                "k": int(k),
            }
            with self.recorder.span("engine.scatter_gather"):
                replies, failures = self._scatter_gather("top_k", request)
            with self.recorder.span("engine.merge"):
                surviving = [reply for reply in replies if reply is not None]
                if surviving:
                    reduced = reduce_top_k(
                        [reply["indices"] for reply in surviving],
                        [reply["scores"] for reply in surviving],
                        k,
                    )
                else:
                    reduced = (
                        np.empty((rows, 0), dtype=np.intp),
                        np.empty((rows, 0), dtype=np.float64),
                    )
                if failures:
                    self.degraded_requests += 1
                    self.recorder.increment("parallel.degraded_requests")
                    return DegradedOutput(
                        reduced, failures.values(), self.num_categories
                    )
                return reduced

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Argmax category per row; ``-1`` for rows with no surviving
        scores under degraded operation."""
        output = self.forward(features)
        if isinstance(output, DegradedOutput):
            logits = output.result.logits
            best = np.full(logits.shape[0], -1, dtype=np.intp)
            valid = ~np.all(np.isnan(logits), axis=1)
            if np.any(valid):
                best[valid] = np.nanargmax(logits[valid], axis=1)
            return best
        return np.argmax(output.logits, axis=-1)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Supervision and latency statistics for the whole fleet.

        Always available: the plain supervision counters (requests,
        retries, respawns, deadline overruns, degraded requests, stale
        replies, dead shards).  With a live recorder installed the
        per-shard blocks additionally carry a latency summary
        (count/mean/p50/p95/p99 seconds) from the recorder's
        histograms, and the full metrics snapshot rides along under
        ``"metrics"``.
        """
        recording = self.recorder.enabled
        snapshot = self.recorder.snapshot() if recording else {}
        histograms = snapshot.get("histograms", {})
        counters = snapshot.get("counters", {})
        shards = []
        for shard_id in range(self.num_shards):
            group = self._groups[shard_id]
            shard = {
                "shard_id": shard_id,
                "categories": [
                    self.ranges[shard_id].start,
                    self.ranges[shard_id].stop,
                ],
                "replicas": group.num_replicas,
                # Reconciliation invariant for a healthy shard: the
                # replies its replicas delivered sum to the engine's
                # request count (each request is answered by exactly
                # one replica of each shard).
                "answered": group.answered(),
                "respawns": self.restarts[shard_id],
                "stale_replies": sum(h.stale_replies for h in group.handles),
                "dead": self._dead[shard_id],
                "retired_served": group.retired_served,
                "replica_workers": [
                    {
                        "replica": replica_idx,
                        "name": handle.name,
                        "served": group.served[replica_idx],
                        "dispatched": group.dispatched[replica_idx],
                        "stale_replies": handle.stale_replies,
                        "dead": group.dead[replica_idx],
                    }
                    for replica_idx, handle in enumerate(group.handles)
                ],
            }
            if self.plan is not None:
                shard["planned_load"] = self.plan.loads[shard_id]
            if recording:
                shard["requests"] = counters.get(
                    f"parallel.shard.{shard_id}.requests", 0
                )
                shard["latency_s"] = histograms.get(
                    f"parallel.shard.{shard_id}.latency_s", {"count": 0}
                )
            shards.append(shard)
        stats: Dict[str, object] = {
            "requests": self.requests_served,
            "degraded_requests": self.degraded_requests,
            "retries": self.retries,
            "failovers": self.failovers,
            "deadline_overruns": self.deadline_overruns,
            "respawns": sum(self.restarts),
            "stale_replies": sum(
                handle.stale_replies
                for group in self._groups
                for handle in group.handles
            ),
            "dead_shards": self.dead_shards,
            "replica_counts": list(self.replica_counts),
            "autoscaling": self.autoscaler is not None,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "replans": self.replans,
            "plan_source": self.plan.source if self.plan is not None else None,
            "recording": recording,
            "shards": shards,
        }
        if recording:
            stats["metrics"] = snapshot
        return stats

    def trace_events(self) -> List[Dict[str, object]]:
        """Chrome trace events recorded so far (empty without a tracer)."""
        tracer = self.recorder.tracer
        return tracer.chrome_events() if tracer is not None else []

    def write_trace(self, path) -> int:
        """Write the recorded trace as Chrome trace-event JSON.

        Returns the number of events written; raises if the engine has
        no tracer (construct with ``trace=True``).
        """
        tracer = self.recorder.tracer
        if tracer is None:
            raise RuntimeError(
                "engine has no tracer; construct with trace=True or pass "
                "a recorder whose tracer is set"
            )
        return tracer.write(path)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all workers and unlink every shared segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for group in self._groups:
            for worker in group.handles:
                worker.stop(goodbye="shutdown")
        self._release_io()
        for pack in self._param_packs:
            pack.destroy()
        self._param_packs = []

    def __enter__(self) -> "ParallelShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.num_shards} workers"
        return (
            f"ParallelShardedEngine(l={self.num_categories}, "
            f"d={self.hidden_dim}, {state})"
        )
