"""Process-parallel sharded serving engine.

:class:`ParallelShardedEngine` turns a trained
:class:`~repro.distributed.sharding.ShardedClassifier` into a fleet of
persistent worker processes — one per category shard, mirroring the
paper's Section 8 deployment where every node keeps an approximate
screener for its shard.  The data plane is built for zero-copy:

* **parameters** — each shard's ``(W, b)`` and screener planes live in
  one shared-memory segment (:class:`~repro.utils.shm.SharedArrayPack`);
  workers attach numpy views and rebuild the pipeline with
  :meth:`ApproximateScreeningClassifier.from_arrays`, so model weights
  are mapped, not pickled, and exist once in physical memory no matter
  how many workers serve them;
* **scatter** — the host writes the feature batch into a shared input
  segment once; every worker reads the same pages;
* **gather** — each worker writes its shard's mixed logits plane into
  its slot of a shared output segment and ships only the tiny candidate
  record (counts, columns, pre-mix approximate values) over the pipe;
* **reduce** — the host reconstructs per-shard
  :class:`~repro.core.pipeline.ScreenedOutput` objects and merges them
  through the *same* :func:`~repro.distributed.sharding.merge_shard_outputs`
  / :func:`~repro.distributed.sharding.reduce_top_k` code path the
  sequential backend uses.

Because workers execute the identical numpy pipeline on the identical
bytes, the engine is bit-identical to the sequential
``ShardedClassifier`` — the differential harness in
``tests/test_distributed_parallel.py`` asserts exactly that, across
selectors, compute dtypes and shard counts.

Failure handling: a worker that dies mid-request surfaces as
:class:`~repro.utils.workers.WorkerDied` (never a hang — see
:meth:`WorkerHandle.recv`), after which the engine shuts the remaining
fleet down and unlinks every shared segment.
"""

from __future__ import annotations

import os
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.pipeline import (
    ApproximateScreeningClassifier,
    ScreenedOutput,
    StreamedOutput,
)
from repro.distributed.sharding import (
    ShardedClassifier,
    merge_shard_outputs,
    merge_streamed_outputs,
    reduce_top_k,
    shard_top_k,
)
from repro.utils.shm import PackLayout, SharedArrayPack
from repro.utils.validation import check_batch_features, check_positive
from repro.utils.workers import (
    WorkerDied,
    WorkerHandle,
    WorkerTimeout,
    default_context,
)

import multiprocessing

__all__ = ["ParallelShardedEngine", "WorkerDied", "WorkerError"]


class WorkerError(RuntimeError):
    """A worker hit an exception while serving a request.

    The worker survives (its state is untouched by a failed request);
    the remote traceback is carried in the message.
    """


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_main(
    connection,
    shard_id: int,
    param_layout: PackLayout,
    meta: Dict[str, object],
    shard_start: int,
) -> None:
    """Entry point of one shard worker (module-level for spawn)."""
    params: Optional[SharedArrayPack] = None
    io_packs: Dict[str, SharedArrayPack] = {}
    try:
        try:
            params = SharedArrayPack.attach(param_layout)
            engine = ApproximateScreeningClassifier.from_arrays(
                params.arrays, meta
            )
            shard_range = range(
                shard_start, shard_start + engine.num_categories
            )
        except Exception:
            connection.send(("fatal", traceback.format_exc()))
            return
        connection.send(("ready", shard_id))

        while True:
            try:
                op, payload = connection.recv()
            except (EOFError, OSError):
                break
            if op == "shutdown":
                break
            if op == "detach-io":
                for pack in io_packs.values():
                    pack.close()
                io_packs.clear()
                connection.send(("ok", None))
                continue
            if op == "die":  # test hook: crash without replying
                os._exit(int(payload or 1))
            try:
                if op in ("forward", "top_k", "forward_streaming"):
                    reply = _serve_request(
                        engine, shard_id, shard_range, io_packs, op, payload
                    )
                else:
                    raise ValueError(f"unknown op {op!r}")
                connection.send(("ok", reply))
            except Exception:
                connection.send(("error", traceback.format_exc()))
    finally:
        for pack in io_packs.values():
            pack.close()
        if params is not None:
            params.close()
        try:
            connection.close()
        except OSError:
            pass


def _attach_cached(
    io_packs: Dict[str, SharedArrayPack], layout: PackLayout
) -> SharedArrayPack:
    pack = io_packs.get(layout.segment)
    if pack is None:
        pack = SharedArrayPack.attach(layout)
        io_packs[layout.segment] = pack
    return pack


def _serve_request(
    engine: ApproximateScreeningClassifier,
    shard_id: int,
    shard_range: range,
    io_packs: Dict[str, SharedArrayPack],
    op: str,
    payload: Dict[str, object],
):
    input_pack = _attach_cached(io_packs, payload["input"])
    rows = int(payload["rows"])
    batch = input_pack["features"][:rows]

    if op == "forward_streaming":
        # Candidates-only: no shared output plane is touched — the
        # whole shard result is the small flat record on the pipe.
        # The worker's pipeline-owned workspace persists across
        # requests, so steady-state serving allocates no new scratch.
        streamed = engine.forward_streaming(
            batch, block_categories=payload["block"]
        )
        flat_rows, flat_cols = streamed.candidates.flat()
        return {
            "counts": streamed.candidates.counts,
            "cols": flat_cols,
            "rows": flat_rows,
            "exact": streamed.exact_values,
            "approx": streamed.approximate_values,
        }

    output = engine.forward(batch)
    if op == "top_k":
        indices, scores = shard_top_k(output, shard_range, int(payload["k"]))
        return {"indices": indices, "scores": scores}

    output_pack = _attach_cached(io_packs, payload["output"])
    np.copyto(output_pack[f"logits{shard_id}"][:rows], output.logits)
    restore_rows, restore_cols, saved = output.candidate_restore()
    return {
        "counts": output.candidates.counts,
        "cols": restore_cols,
        "rows": restore_rows,
        "saved": saved,
    }


# ----------------------------------------------------------------------
# host side
# ----------------------------------------------------------------------
class ParallelShardedEngine:
    """Serve a trained :class:`ShardedClassifier` with one process per shard.

    Parameters
    ----------
    sharded:
        A trained sequential sharded classifier; its shard plan and
        parameters define the fleet.
    start_method:
        ``"fork"`` (default where available; millisecond startup) or
        ``"spawn"`` (fresh interpreters, required on Windows).
    max_batch:
        Initial capacity of the shared input/output planes in batch
        rows.  Larger batches are accepted — the engine reallocates the
        I/O segments transparently.
    request_timeout:
        Seconds to wait for a *live* worker's reply before raising
        ``WorkerTimeout``; ``None`` waits indefinitely (worker death is
        always detected regardless).

    The engine is a context manager; ``close()`` shuts workers down and
    unlinks every shared segment.  After a :class:`WorkerDied` the
    engine closes itself — a serving fleet with a missing shard cannot
    answer correctly, so it fails fast and releases its memory.
    """

    def __init__(
        self,
        sharded: ShardedClassifier,
        start_method: Optional[str] = None,
        max_batch: int = 64,
        request_timeout: Optional[float] = None,
    ):
        if not sharded.trained:
            raise RuntimeError("train the ShardedClassifier before serving it")
        check_positive("max_batch", max_batch)
        self.ranges = list(sharded.ranges)
        self.hidden_dim = sharded.classifier.hidden_dim
        self.num_categories = sharded.classifier.num_categories
        self.request_timeout = request_timeout
        self.closed = False
        self._max_batch = int(max_batch)
        self._io_input: Optional[SharedArrayPack] = None
        self._io_output: Optional[SharedArrayPack] = None
        self._segment_names: List[str] = []

        context = (
            multiprocessing.get_context(start_method)
            if start_method is not None
            else default_context()
        )

        self._compute_dtypes: List[np.dtype] = [
            shard.screener.compute_dtype for shard in sharded.shards
        ]
        self._param_packs: List[SharedArrayPack] = []
        self.workers: List[WorkerHandle] = []
        try:
            for shard_id, (shard, shard_range) in enumerate(
                zip(sharded.shards, self.ranges)
            ):
                arrays, meta = shard.export_arrays()
                pack = SharedArrayPack.create(arrays)
                self._param_packs.append(pack)
                self._segment_names.append(pack.name)
                self.workers.append(
                    WorkerHandle(
                        context,
                        _worker_main,
                        args=(shard_id, pack.layout, meta, shard_range.start),
                        name=f"enmc-shard-{shard_id}",
                    )
                )
            for worker in self.workers:
                kind, payload = worker.recv(timeout=60.0)
                if kind == "fatal":
                    raise RuntimeError(
                        f"worker {worker.name} failed to start:\n{payload}"
                    )
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    def segment_names(self) -> List[str]:
        """Names of every shared-memory segment this engine created."""
        return list(self._segment_names)

    # ------------------------------------------------------------------
    # shared I/O planes
    # ------------------------------------------------------------------
    def _ensure_io(self, rows: int, need_output: bool = True) -> None:
        """Size the shared I/O planes for a ``rows``-row batch.

        The output planes (per-shard dense logits) are only allocated
        when a dense ``forward`` asks for them — streaming and top-k
        requests ship candidates-only records over the pipe, so a
        streaming-only engine never materializes ``batch × l`` shared
        memory at all.
        """
        input_capacity = (
            self._io_input["features"].shape[0]
            if self._io_input is not None
            else 0
        )
        if rows > input_capacity:
            input_capacity = max(self._max_batch, rows)
            if self._io_input is not None:
                # Workers hold mappings of the old planes; have them
                # detach before the segments are unlinked and replaced.
                self._scatter_gather("detach-io", None)
                self._release_io()
            self._io_input = SharedArrayPack.zeros(
                {"features": ((input_capacity, self.hidden_dim), np.float64)}
            )
            self._segment_names.append(self._io_input.name)
        if need_output and self._io_output is None:
            self._io_output = SharedArrayPack.zeros(
                {
                    f"logits{shard_id}": (
                        (input_capacity, len(shard_range)),
                        dtype,
                    )
                    for shard_id, (shard_range, dtype) in enumerate(
                        zip(self.ranges, self._compute_dtypes)
                    )
                }
            )
            self._segment_names.append(self._io_output.name)

    def _release_io(self) -> None:
        for pack in (self._io_input, self._io_output):
            if pack is not None:
                pack.destroy()
        self._io_input = None
        self._io_output = None

    # ------------------------------------------------------------------
    # request plumbing
    # ------------------------------------------------------------------
    def _scatter_gather(self, op: str, request) -> List[dict]:
        """Send one request to every worker, then collect every reply.

        Every worker's reply is drained even when one of them reports
        an error, so the pipes stay request/reply aligned; a dead or
        unresponsive worker instead shuts the whole engine down (a
        fleet with a missing shard cannot answer correctly).
        """
        try:
            for worker in self.workers:
                worker.send((op, request))
            replies: List[dict] = []
            errors: List[str] = []
            for worker in self.workers:
                kind, payload = worker.recv(timeout=self.request_timeout)
                if kind == "ok":
                    replies.append(payload)
                else:
                    errors.append(f"worker {worker.name}: {kind}\n{payload}")
            if errors:
                raise WorkerError(
                    "request failed on "
                    f"{len(errors)}/{self.num_shards} workers:\n"
                    + "\n".join(errors)
                )
            return replies
        except (WorkerDied, WorkerTimeout):
            # A shard is gone or wedged; release every process and
            # segment before surfacing the failure.
            self.close()
            raise

    def _prepare(
        self, features: np.ndarray, need_output: bool = True
    ) -> Tuple[np.ndarray, int]:
        if self.closed:
            raise RuntimeError("engine is closed")
        batch = check_batch_features(features, self.hidden_dim)
        rows = batch.shape[0]
        self._ensure_io(rows, need_output=need_output)
        np.copyto(self._io_input["features"][:rows], batch)
        return batch, rows

    # ------------------------------------------------------------------
    # serving API — mirrors the sequential backend
    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """All-shard screened inference, merged to global order.

        Bit-identical to ``ShardedClassifier.forward`` on the same
        shards (differentially tested).
        """
        _, rows = self._prepare(features)
        request = {
            "rows": rows,
            "input": self._io_input.layout,
            "output": self._io_output.layout,
        }
        replies = self._scatter_gather("forward", request)
        outputs = []
        for shard_id, reply in enumerate(replies):
            logits = self._io_output[f"logits{shard_id}"][:rows]
            candidates = CandidateSet.from_flat(reply["counts"], reply["cols"])
            outputs.append(
                ScreenedOutput(
                    logits=logits,
                    candidates=candidates,
                    restore=(reply["rows"], reply["cols"], reply["saved"]),
                )
            )
        # merge_shard_outputs concatenates the logits planes, so the
        # merged output owns its memory and survives buffer reuse.
        return merge_shard_outputs(outputs, self.ranges)

    __call__ = forward

    def forward_streaming(
        self,
        features: np.ndarray,
        block_categories: Optional[int] = None,
    ) -> StreamedOutput:
        """All-shard blocked streaming inference, merged to global order.

        Every worker streams its category stripe block by block and
        ships back only its candidate record — no shared output plane
        exists, so the engine's shared memory stays O(batch × d)
        regardless of ``l``.  Candidates and values are bit-identical
        to ``ShardedClassifier.forward_streaming`` on the same shards.
        """
        _, rows = self._prepare(features, need_output=False)
        request = {
            "rows": rows,
            "input": self._io_input.layout,
            "block": block_categories,
        }
        replies = self._scatter_gather("forward_streaming", request)
        outputs = [
            StreamedOutput(
                candidates=CandidateSet.from_flat(reply["counts"], reply["cols"]),
                exact_values=reply["exact"],
                approximate_values=reply["approx"],
                num_categories=len(shard_range),
            )
            for reply, shard_range in zip(replies, self.ranges)
        ]
        return merge_streamed_outputs(outputs, self.ranges)

    def top_k(self, features: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global top-k via per-shard top-k + host reduce."""
        check_positive("k", k)
        _, rows = self._prepare(features, need_output=False)
        request = {
            "rows": rows,
            "input": self._io_input.layout,
            "k": int(k),
        }
        replies = self._scatter_gather("top_k", request)
        return reduce_top_k(
            [reply["indices"] for reply in replies],
            [reply["scores"] for reply in replies],
            k,
        )

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop all workers and unlink every shared segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for worker in self.workers:
            worker.stop(goodbye=("shutdown", None))
        self._release_io()
        for pack in self._param_packs:
            pack.destroy()
        self._param_packs = []

    def __enter__(self) -> "ParallelShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{self.num_shards} workers"
        return (
            f"ParallelShardedEngine(l={self.num_categories}, "
            f"d={self.hidden_dim}, {state})"
        )
