"""Category-space sharding for multi-node screened classification."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.candidates import CandidateSet
from repro.core.classifier import FullClassifier
from repro.core.pipeline import ApproximateScreeningClassifier, ScreenedOutput
from repro.core.screener import ScreeningConfig
from repro.core.training import train_screener
from repro.utils.rng import RngLike, spawn_rngs
from repro.utils.validation import check_batch_features, check_positive


def shard_ranges(num_categories: int, num_shards: int) -> List[range]:
    """Contiguous, balanced category ranges (sizes differ by ≤1)."""
    check_positive("num_categories", num_categories)
    check_positive("num_shards", num_shards)
    if num_shards > num_categories:
        raise ValueError(
            f"{num_shards} shards exceed {num_categories} categories"
        )
    base, remainder = divmod(num_categories, num_shards)
    ranges = []
    start = 0
    for shard in range(num_shards):
        size = base + (1 if shard < remainder else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


class ShardedClassifier:
    """A full classifier split across nodes, each with its own screener.

    Functionally equivalent to the single-node pipeline: per-node mixed
    outputs concatenate back into the global category order (tested).
    The difference is deployment — each node trains a screener for its
    shard only, so no node materializes global state.
    """

    def __init__(
        self,
        classifier: FullClassifier,
        num_shards: int,
        config: Optional[ScreeningConfig] = None,
    ):
        self.classifier = classifier
        self.ranges = shard_ranges(classifier.num_categories, num_shards)
        self.config = config or ScreeningConfig.from_scale(
            classifier.hidden_dim, scale=0.25
        )
        self.shards: List[ApproximateScreeningClassifier] = []

    @property
    def num_shards(self) -> int:
        return len(self.ranges)

    @property
    def trained(self) -> bool:
        return bool(self.shards)

    # ------------------------------------------------------------------
    def train(
        self,
        features: np.ndarray,
        candidates_per_shard: int = 16,
        solver: str = "lstsq",
        rng: RngLike = None,
    ) -> None:
        """Distill one screener per shard (independently, as separate
        nodes would)."""
        check_positive("candidates_per_shard", candidates_per_shard)
        rngs = spawn_rngs(rng, self.num_shards)
        self.shards = []
        for shard_range, shard_rng in zip(self.ranges, rngs):
            shard_classifier = FullClassifier(
                self.classifier.weight[shard_range.start : shard_range.stop],
                self.classifier.bias[shard_range.start : shard_range.stop],
                normalization=self.classifier.normalization,
            )
            screener = train_screener(
                shard_classifier, features, config=self.config,
                solver=solver, rng=shard_rng,
            )
            self.shards.append(
                ApproximateScreeningClassifier(
                    shard_classifier, screener,
                    num_candidates=candidates_per_shard,
                )
            )

    # ------------------------------------------------------------------
    def forward(self, features: np.ndarray) -> ScreenedOutput:
        """All-shard screened inference, merged to global order."""
        if not self.trained:
            raise RuntimeError("call train() before forward()")
        batch = check_batch_features(features, self.classifier.hidden_dim)
        outputs = [shard.forward(batch) for shard in self.shards]

        logits = np.concatenate([o.logits for o in outputs], axis=1)
        approx = np.concatenate([o.approximate_logits for o in outputs], axis=1)
        merged: List[np.ndarray] = []
        for row in range(batch.shape[0]):
            parts = [
                output.candidates.indices[row] + shard_range.start
                for output, shard_range in zip(outputs, self.ranges)
            ]
            merged.append(np.concatenate(parts))
        return ScreenedOutput(
            logits=logits,
            approximate_logits=approx,
            candidates=CandidateSet(indices=merged),
        )

    __call__ = forward

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(features).logits, axis=-1)

    def top_k(self, features: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global top-k via per-shard top-k + reduce (the scale-out
        communication pattern): each node ships only ``k`` (index,
        score) pairs, not its whole shard."""
        check_positive("k", k)
        batch = check_batch_features(features, self.classifier.hidden_dim)
        shard_indices = []
        shard_scores = []
        from repro.linalg.topk import top_k_indices

        for shard, shard_range in zip(self.shards, self.ranges):
            local_k = min(k, shard.num_categories)
            output = shard.forward(batch)
            local = top_k_indices(output.logits, local_k, sort=True)
            rows = np.arange(batch.shape[0])[:, None]
            shard_indices.append(local + shard_range.start)
            shard_scores.append(output.logits[rows, local])
        all_indices = np.concatenate(shard_indices, axis=1)
        all_scores = np.concatenate(shard_scores, axis=1)
        order = np.argsort(-all_scores, axis=1)[:, :k]
        rows = np.arange(batch.shape[0])[:, None]
        return all_indices[rows, order], all_scores[rows, order]
